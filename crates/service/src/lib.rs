//! # `clb-service` — the analysis pipeline as a long-running HTTP service
//!
//! Every other entry point in this workspace pays full process startup and
//! a cold tiling-search memo cache per query. This crate wraps the
//! plan → simulate → bound → energy pipeline in a persistent,
//! multi-threaded HTTP/JSON server, so repeated and concurrent queries hit
//! warm caches instead: the way HPC sites wrap batch analysis pipelines
//! behind resident services rather than re-launching per request.
//!
//! Built entirely on `std::net` and the workspace's offline `serde` shims —
//! no external dependencies, consistent with the hermetic build.
//!
//! ## Architecture
//!
//! ```text
//! accept loop ──► register + socket timeouts (≤ max_connections; at the
//!     │           cap the oldest idle connection is evicted, all-busy
//!     │           sheds 503), then park on the event tier
//!     ▼
//! epoll poller thread ([`poll::Poller`]): parks idle keep-alive sockets
//!     │  (an open connection costs an fd + a buffer, not a thread),
//!     │  reaps idle timeouts, hands readable sockets to the I/O workers
//!     ▼
//! I/O worker pool (`io_workers` threads): serves requests on one socket
//!     │  until Connection: close, the per-connection request bound, or
//!     │  drain — then re-parks it on the poller
//!     ▼
//! parse HTTP/1.1 + JSON (4xx on bad input; stalls/slow-drips → 408)
//!     │
//! Gate: ≤ threads concurrent analyses + bounded wait room holding
//!     │ parsed-but-unadmitted requests — workers never block here;
//!     │ (full? shed 503 + Retry-After — body already read, socket reusable)
//!     ▼
//! canonicalize body, form request key
//!     │
//! bounded LRU response cache ── hit ──► reply
//!     │ miss
//! FlightMap (in-flight coalescing): concurrent identical queries share
//! ONE computation
//!     │
//! api::dispatch ──► clb pipeline (engine's own LRU-bounded, coalescing
//! search cache underneath)
//! ```
//!
//! Connections are persistent by default (HTTP/1.1 keep-alive per
//! RFC 7230, honored for 1.0 peers too); graceful shutdown drains
//! in-flight requests under a hard deadline. See `docs/OPERATIONS.md` for
//! the lifecycle knobs and counters, and [`chaos`] for the fault-injection
//! toolkit that proves the lifecycle under hostile peers.
//!
//! Responses are **bit-identical** to single-threaded library output: the
//! handlers serialize the same report structures `clb --json` prints, with
//! the same deterministic field order, and the search engine guarantees
//! thread-count-independent results. The integration tests pin this.
//!
//! ## Quickstart
//!
//! Start the server (any free port; `--threads 0` sizes workers to CPUs):
//!
//! ```text
//! clb serve --port 8080 --threads 0
//! ```
//!
//! Probe it:
//!
//! ```text
//! curl http://127.0.0.1:8080/healthz
//! {"status": "ok"}
//! ```
//!
//! Ask for the communication lower bound of VGG-16 conv4_1 at 66.5 KiB:
//!
//! ```text
//! curl -s -X POST http://127.0.0.1:8080/v1/bound \
//!      -d '{"co":512,"size":28,"ci":256,"mem_kib":66.5}'
//! ```
//!
//! Sweep all eight dataflows, plan a layer on Table I implementation 1,
//! and analyze a full network:
//!
//! ```text
//! curl -s -X POST http://127.0.0.1:8080/v1/sweep \
//!      -d '{"co":512,"size":28,"ci":256}'
//! curl -s -X POST http://127.0.0.1:8080/v1/plan \
//!      -d '{"co":512,"size":28,"ci":256,"implem":1}'
//! curl -s -X POST http://127.0.0.1:8080/v1/network \
//!      -d '{"net":"vgg16","batch":3,"implem":1}'
//! ```
//!
//! Simulate *any* explicit tiling — not just the planner's choice — with
//! the block-class cycle simulator (what-if analysis of hand-rolled or
//! externally-planned blockings):
//!
//! ```text
//! curl -s -X POST http://127.0.0.1:8080/v1/simulate \
//!      -d '{"co":512,"size":28,"ci":256,"batch":1,"implem":1,
//!           "tiling":{"b":1,"z":16,"y":14,"x":14}}'
//! ```
//!
//! The `tiling` object is required; its four dimensions must be nonzero and
//! no larger than the layer's batch/channel/spatial extents (zero or
//! oversized dimensions are rejected with 422 before any simulation work —
//! a zero dimension would otherwise describe a block grid that never
//! advances). Structurally infeasible tilings (GBuf overflow, unmappable
//! blocks) also return 422 carrying the simulator's diagnosis. The response
//! echoes `implementation`, `layer` and `tiling` and carries the full
//! [`accel_sim::SimStats`] counter set plus `total_cycles` and `seconds`.
//!
//! ## Execution traces
//!
//! `/v1/simulate` and `/v1/plan` accept an optional
//! `"trace": {"format": "json"|"vcd", "expand": bool}` object; the
//! response then carries a trailing `trace` (structured
//! [`accel_sim::ExecutionTrace`]: per-class stall/compute timelines whose
//! interval sums are bit-identical to the `stats` in the same response) or
//! `vcd` (waveform text; `jq -r .vcd` extracts it for GTKWave) field.
//! Untraced responses keep their exact pre-trace bytes. Traces past the
//! [`accel_sim::trace::caps`] bounds are refused with a typed 422 naming
//! the cap. See `docs/API.md` § Tracing.
//!
//! ## Custom architectures and design-space sweeps
//!
//! Everywhere a Table I `implem` index is accepted, a full `arch` object
//! is accepted instead (fields optional, defaulting to implementation 1;
//! see [`arch_from_value`]) — the custom-design what-if path:
//!
//! ```text
//! curl -s -X POST http://127.0.0.1:8080/v1/plan \
//!      -d '{"co":512,"size":28,"ci":256,
//!           "arch":{"pe_rows":24,"pe_cols":24,"group_rows":4,"group_cols":4,
//!                   "igbuf_entries":3072}}'
//! ```
//!
//! Hostile configurations (zero, huge, overflowing or non-finite fields)
//! are rejected with a typed 422 naming the violated invariant — the caps
//! live in [`accel_sim::caps`] and are enforced by
//! `ArchConfig::validate` before any planning or simulation touches the
//! configuration.
//!
//! `POST /v1/dse` sweeps a capped set of candidate architectures (explicit
//! `candidates` list, a `grid` of axis values over a `base`, or the
//! deduplicated union of both) over one layer — or, with
//! `"target": {"network": ...}`, over a **full model**, producing one
//! `/v1/network`-identical report per candidate. Work fans across the
//! worker pool (`(candidate × layer)` units in network mode) with planning
//! amortized by the `(layer, arch)` plan cache; results are canonically
//! ordered (feasible first by cycles, traffic, then the architecture's
//! total order), so the response does not depend on candidate enumeration
//! order:
//!
//! ```text
//! curl -s -X POST http://127.0.0.1:8080/v1/dse \
//!      -d '{"co":512,"size":28,"ci":256,
//!           "grid":{"pe_rows":[16,24,32],"lreg_entries_per_pe":[64,128]}}'
//! curl -s -X POST http://127.0.0.1:8080/v1/dse \
//!      -d '{"target":{"network":"vgg16","batch":3},
//!           "grid":{"pe_rows":[16,24,32]}}'
//! ```
//!
//! ## Staged million-candidate sweeps
//!
//! Adding any of `objective`, `top_k`, `stream` to a `/v1/dse` body
//! switches it to the **staged** engine: every candidate first passes a
//! cheap admissible bound stage ([`comm_bound`]-derived floors on cycles,
//! DRAM words and energy), and only candidates whose floor could still
//! beat the current worst kept entry are planned and simulated. Pruning is
//! **lossless** — the kept frontier is bit-identical to ranking the full
//! unpruned sweep — and the candidate cap rises from 256 to 2²⁰
//! ([`api::limits::MAX_DSE_STAGED_CANDIDATES`]). `objective` ranks by
//! `cycles` (default), `traffic`, `energy` or `pareto` (the undominated
//! set over all three); `top_k` bounds the frontier (default 16, max
//! 1024). Delivery is synchronous by default, `"stream": true` (or
//! `"chunked"`) answers with `Transfer-Encoding: chunked` frontier
//! snapshots followed by the final body, and `"stream": "job"` returns a
//! deterministic job handle polled at `GET /v1/dse/jobs/{id}`:
//!
//! ```text
//! curl -s -X POST http://127.0.0.1:8080/v1/dse \
//!      -d '{"target":{"network":"vgg16","batch":3},"objective":"energy",
//!           "top_k":8,"grid":{"pe_rows":[8,16,24,32],
//!           "lreg_entries_per_pe":[32,64,128,256],
//!           "igbuf_entries":[512,1024,2048,3072]}}'
//! curl -sN -X POST http://127.0.0.1:8080/v1/dse \
//!      -d '{"co":512,"size":28,"ci":256,"stream":true,
//!           "grid":{"pe_rows":[8,16,24,32]}}'
//! curl -s -X POST http://127.0.0.1:8080/v1/dse \
//!      -d '{"co":512,"size":28,"ci":256,"stream":"job",
//!           "grid":{"pe_rows":[8,16,24,32]}}'   # → {"job": ..., "poll": ...}
//! ```
//!
//! Requests without the new fields keep the legacy evaluate-everything
//! path byte for byte. See `docs/API.md` § Design-space exploration and
//! `docs/OPERATIONS.md` § Sizing a large sweep.
//!
//! See `docs/API.md` for the full `arch` schema, the caps and the
//! request/response formats, and `docs/TESTING.md` for the golden
//! regression corpus that pins every endpoint's wire bytes.
//!
//! Watch the caches work (numbers are cumulative since server start):
//!
//! ```text
//! curl http://127.0.0.1:8080/v1/cache_stats
//! ```
//!
//! ## Endpoints
//!
//! | Endpoint | Method | Body | Mirrors |
//! |---|---|---|---|
//! | `/healthz` | GET | — | liveness probe |
//! | `/v1/cache_stats` | GET | — | `clb --cache-stats` |
//! | `/v1/bound` | POST | layer spec + `mem_kib`/`arch` | `clb bound` |
//! | `/v1/sweep` | POST | layer spec + `mem_kib`/`arch` | `clb sweep` |
//! | `/v1/plan` | POST | layer spec + `implem`/`arch` | `clb plan` |
//! | `/v1/simulate` | POST | layer spec + `implem`/`arch` + `tiling` | `clb simulate` |
//! | `/v1/network` | POST | `net` (preset name or custom object), `batch`, `implem`/`arch` | `clb network --json` |
//! | `/v1/dse` | POST | layer spec + `candidates`/`grid` | `clb dse` |
//!
//! Layer spec fields: `co`, `size`, `ci` (required); `k` (3), `stride`
//! (1), `batch` (3), `mem_kib` (66.5) optional with CLI-matching defaults.
//! Errors come back as `{"error": ..., "status": ...}` with a 4xx status:
//! malformed HTTP or JSON → 400, wrong method → 405, a request that stalls
//! or drips past its deadline → 408, oversized body → 413,
//! valid-but-impossible analysis → 422; a saturated server sheds with
//! 503 + `Retry-After` (the request body is still drained first, so the
//! client retries on the same connection). `POST /v1/shutdown` (enabled by
//! `--allow-shutdown`, 403 otherwise) triggers the same graceful drain as
//! stopping the process.
//!
//! ## Request logging
//!
//! `clb serve --log true` (or a [`ServiceConfig::log`] sink) emits one
//! structured line per completed request —
//! `method=POST path=/v1/plan status=200 micros=1234 cache=miss conn=7` —
//! with `cache` reporting how the response-cache layers answered
//! ([`CacheOutcome`]) and `conn` the connection id (lines sharing it were
//! served over one reused keep-alive socket). `/v1/simulate` and
//! `/v1/plan` lines carry a trailing `trace=on|off`; answered `/v1/dse`
//! sweeps append their funnel —
//! ` candidates=N pruned=N kept=N objective=cycles`. Independently of
//! logging, every request feeds a per-route log2 latency histogram;
//! `GET /v1/cache_stats` reports them as a `latency` section
//! ([`RouteLatencyStats`]: count, `p50`/`p99` bucket bounds and exact max
//! in µs per [`LATENCY_ROUTES`] route).
//!
//! ## Embedding
//!
//! ```no_run
//! use clb_service::{Server, ServiceConfig};
//!
//! let server = Server::spawn(ServiceConfig::default())?; // ephemeral port
//! println!("listening on http://{}", server.addr());
//! # let _ = server;
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod api;
pub mod chaos;
pub mod http;
pub mod poll;
pub mod pool;
mod server;

pub use api::{
    arch_from_value, dse_job_id, dse_network_results, dse_results, dse_staged_network_results,
    dse_staged_results, dse_stream_chunks, network_by_name, network_from_value,
    parse_staged_options, ApiError,
    ArchChoice, ArchPlanResponse, ArchSimulateResponse, BoundResponse, DseEntry, DseLogMeta,
    DseNetworkEntry, DseNetworkResponse, DseResponse, DseStagedNetworkResponse, DseStagedResponse,
    LayerSpec, PlanResponse, SimulateResponse, StagedOptions, StreamMode, SweepEntry,
    SweepResponse, TraceFormat, TraceRequest,
};
pub use chaos::{request_bytes, ChaosClient, WireResponse};
pub use http::{HttpError, Request, Response};
pub use pool::{BoundedQueue, Gate, WaitGroup, WorkerPool};
pub use server::{
    format_request_log, CacheOutcome, CacheStatsResponse, LogFlags, LogSink, MemoCacheStats,
    RouteLatencyStats, RunningServer, Server, ServiceConfig, ServiceStats, StatsHandle, StopHandle,
    LATENCY_ROUTES, RETRY_AFTER_SECS,
};
