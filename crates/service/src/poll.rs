//! A thin, std-only readiness poller over Linux `epoll`, in the same
//! no-crates.io discipline as the rest of the workspace: the three epoll
//! calls (`epoll_create1`, `epoll_ctl`, `epoll_wait`) plus a self-wake
//! pipe, declared directly against the libc symbols `std` already links —
//! no `libc` crate, no async runtime.
//!
//! The serving tier uses this to park *idle* keep-alive sockets: a parked
//! connection costs one registered fd and a small buffer instead of a
//! blocked OS thread. The poller is deliberately minimal:
//!
//! - **level-triggered** `EPOLLIN | EPOLLRDHUP` only — the server reads
//!   with blocking sockets once a fd is readable, so edge-triggered
//!   re-arm bookkeeping (and its lost-wakeup hazards) never applies;
//! - registrations carry the fd itself as the event payload, so the
//!   caller maps readiness back to its own connection table without a
//!   second allocation;
//! - a [`Waker`] (one byte down a non-blocking pipe) lets other threads
//!   interrupt a blocked [`Poller::wait`] — the park channel and shutdown
//!   path both use it.
//!
//! ## Why not `SO_RCVTIMEO` parking?
//!
//! The previous tier parked each idle connection on a blocking read with a
//! receive timeout: simple, but one OS thread per open connection. A
//! thread costs a stack and a scheduler slot; an epoll registration costs
//! on the order of a hundred bytes of kernel state. At thousands of mostly-idle
//! keep-alive peers the difference is the capacity of the box.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};
use std::sync::Arc;
use std::time::Duration;

// The libc symbols std already links on Linux. Declared here instead of
// through the libc crate, mirroring the workspace's offline-shim
// discipline (see the serde/rayon/proptest shims).
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn recv(sockfd: c_int, buf: *mut c_void, len: usize, flags: c_int) -> isize;
}

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLLIN: u32 = 0x001;
/// Peer shut down its write half — a parked keep-alive socket whose client
/// vanished must wake the poller (the read that follows sees EOF).
const EPOLLRDHUP: u32 = 0x2000;
/// `EPOLL_CLOEXEC` == `O_CLOEXEC` (octal 0o2000000 on Linux).
const EPOLL_CLOEXEC: c_int = 0o2_000_000;
const O_CLOEXEC: c_int = 0o2_000_000;
/// `O_NONBLOCK` on every Linux arch this workspace targets (x86-64,
/// aarch64, riscv64 — the historical exceptions are alpha/mips/sparc).
const O_NONBLOCK: c_int = 0o4_000;
const MSG_PEEK: c_int = 0x02;
const MSG_DONTWAIT: c_int = 0x40;

/// A non-blocking one-byte `MSG_PEEK` on a socket the poller reported
/// readable: `Ok(0)` is EOF (the peer hung up), `Ok(1)` means a byte is
/// readable, and `ErrorKind::WouldBlock` means the readiness evaporated
/// between the epoll report and this call — the caller re-parks instead
/// of risking a blocking read that would stall a worker for a full
/// socket timeout. Nothing is consumed; `EINTR` is retried internally.
///
/// # Errors
///
/// `WouldBlock` as above; other `recv` failures (`ECONNRESET`, ...) mean
/// the connection is dead.
pub fn peek_ready(fd: RawFd) -> io::Result<usize> {
    let mut byte = 0u8;
    loop {
        let n = unsafe {
            recv(
                fd,
                std::ptr::addr_of_mut!(byte).cast(),
                1,
                MSG_PEEK | MSG_DONTWAIT,
            )
        };
        if n >= 0 {
            return Ok(n as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

/// The kernel's `struct epoll_event`. On x86 the kernel declares it
/// packed (no padding between `events` and `data`); other architectures
/// use natural alignment. Getting this wrong corrupts the payload of
/// every second event, so the layout is arch-conditional exactly like the
/// kernel header.
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// The write end of the poller's self-wake pipe, sharable across threads.
/// Closed when the last clone (including the [`Poller`]'s own) drops.
#[derive(Debug)]
struct WakeFd(RawFd);

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { close(self.0) };
    }
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread.
/// Cheap to clone (an `Arc` around one fd); waking an already-woken
/// poller is harmless, and a full pipe (the poller is far behind) is
/// treated as "a wake is already pending" rather than an error.
#[derive(Debug, Clone)]
pub struct Waker {
    fd: Arc<WakeFd>,
}

impl Waker {
    /// Interrupts the poller's current (or next) wait.
    pub fn wake(&self) {
        let byte = 1u8;
        // EAGAIN (pipe full) means wakes are already pending — mission
        // accomplished either way, so the result is deliberately ignored.
        unsafe { write(self.fd.0, std::ptr::addr_of!(byte).cast(), 1) };
    }
}

/// How many events one `epoll_wait` call collects. Level-triggered
/// registrations re-report on the next call, so a burst beyond the batch
/// is delayed one loop iteration, never lost.
const WAIT_BATCH: usize = 64;

/// A readiness poller: register fds with [`add`](Poller::add), harvest
/// readable ones with [`wait`](Poller::wait), deregister with
/// [`del`](Poller::del). One `Poller` belongs to one polling thread;
/// [`Waker`]s are the cross-thread surface.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    wake_read: RawFd,
    wake_write: Arc<WakeFd>,
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.wake_read);
            close(self.epfd);
        }
    }
}

impl Poller {
    /// Creates the epoll instance and its self-wake pipe (both
    /// close-on-exec; the pipe non-blocking on both ends).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1`/`pipe2` failures (fd exhaustion, or a
    /// kernel too old to know epoll — nothing this workspace targets).
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let mut pipe_fds = [0 as c_int; 2];
        if let Err(e) = cvt(unsafe { pipe2(pipe_fds.as_mut_ptr(), O_CLOEXEC | O_NONBLOCK) }) {
            unsafe { close(epfd) };
            return Err(e);
        }
        let poller = Poller {
            epfd,
            wake_read: pipe_fds[0],
            wake_write: Arc::new(WakeFd(pipe_fds[1])),
        };
        poller.register(poller.wake_read)?;
        Ok(poller)
    }

    /// A handle other threads use to interrupt [`wait`](Poller::wait).
    #[must_use]
    pub fn waker(&self) -> Waker {
        Waker {
            fd: Arc::clone(&self.wake_write),
        }
    }

    fn register(&self, fd: RawFd) -> io::Result<()> {
        let mut event = EpollEvent {
            events: EPOLLIN | EPOLLRDHUP,
            data: fd as u64,
        };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut event) }).map(|_| ())
    }

    /// Starts watching `fd` for readability (level-triggered, including
    /// peer hang-up). The fd itself is the event payload.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (`EEXIST` for double registration,
    /// `ENOSPC` at the `max_user_watches` sysctl, ...). The caller treats
    /// a failed park as a connection to close, not a crash.
    pub fn add(&self, fd: RawFd) -> io::Result<()> {
        self.register(fd)
    }

    /// Stops watching `fd`. Always deregister *before* handing the fd's
    /// owner to another thread: a close on a still-registered fd would
    /// silently drop the registration at an arbitrary later point.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (`ENOENT` if never registered).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        // A dummy event for portability: kernels before 2.6.9 faulted on
        // NULL even for DEL, and the struct costs nothing.
        let mut event = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) }).map(|_| ())
    }

    /// Blocks until at least one registered fd is readable, the timeout
    /// elapses, or a [`Waker`] fires. Readable fds are appended to
    /// `ready` (cleared first; the wake pipe is drained internally and
    /// never reported). Returns `true` when a waker fired.
    ///
    /// `None` blocks indefinitely; `Some(d)` rounds up to the next
    /// millisecond so a sub-millisecond remainder cannot busy-spin.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failures. `EINTR` is retried internally.
    pub fn wait(&self, ready: &mut Vec<RawFd>, timeout: Option<Duration>) -> io::Result<bool> {
        ready.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
                c_int::try_from(ms).unwrap_or(c_int::MAX)
            }
        };
        let mut events = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
        let n = loop {
            let ret = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    WAIT_BATCH as c_int,
                    timeout_ms,
                )
            };
            match cvt(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        let mut woken = false;
        for event in &events[..n] {
            // Copy out of the (possibly packed) struct before use.
            let fd = { event.data } as RawFd;
            if fd == self.wake_read {
                woken = true;
                self.drain_wake_pipe();
            } else {
                ready.push(fd);
            }
        }
        Ok(woken)
    }

    /// Empties the self-wake pipe so a burst of wakes collapses into one
    /// reported wakeup instead of re-triggering the level-triggered fd.
    fn drain_wake_pipe(&self) {
        let mut buf = [0u8; 256];
        loop {
            let n = unsafe { read(self.wake_read, buf.as_mut_ptr().cast(), buf.len()) };
            if n < buf.len() as isize {
                break; // drained (or EAGAIN on the non-blocking read end)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    /// A connected (client, server-side) socket pair on localhost.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn readable_fd_is_reported_and_quiet_fd_is_not() {
        let poller = Poller::new().unwrap();
        let (mut client, server) = socket_pair();
        let (_quiet_client, quiet_server) = socket_pair();
        poller.add(server.as_raw_fd()).unwrap();
        poller.add(quiet_server.as_raw_fd()).unwrap();

        let mut ready = Vec::new();
        // Nothing sent yet: the wait times out empty.
        let woken = poller
            .wait(&mut ready, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(!woken);
        assert!(ready.is_empty(), "{ready:?}");

        client.write_all(b"x").unwrap();
        let woken = poller
            .wait(&mut ready, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!woken);
        assert_eq!(ready, vec![server.as_raw_fd()], "only the fed socket");

        // Level-triggered: unread bytes re-report on the next wait.
        let _ = poller.wait(&mut ready, Some(Duration::from_millis(20)));
        assert_eq!(ready, vec![server.as_raw_fd()]);
    }

    #[test]
    fn peer_close_wakes_a_parked_fd() {
        let poller = Poller::new().unwrap();
        let (client, server) = socket_pair();
        poller.add(server.as_raw_fd()).unwrap();
        drop(client);
        let mut ready = Vec::new();
        poller
            .wait(&mut ready, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(ready, vec![server.as_raw_fd()], "EOF must be readable");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_once_per_burst() {
        let poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // A burst of wakes must collapse into one wakeup, not echo.
            for _ in 0..10 {
                waker.wake();
            }
        });
        let mut ready = Vec::new();
        let woken = poller
            .wait(&mut ready, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(woken, "the waker must interrupt the wait");
        assert!(ready.is_empty());
        handle.join().unwrap();
        // The pipe was drained: the next wait times out quietly.
        let woken = poller
            .wait(&mut ready, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(!woken, "a drained wake pipe must not re-report");
    }

    #[test]
    fn peek_ready_reports_data_eof_and_quiet_without_consuming() {
        let (mut client, server) = socket_pair();
        let fd = server.as_raw_fd();
        // Quiet socket: WouldBlock, not a stall.
        let quiet = peek_ready(fd).expect_err("no data must not block");
        assert_eq!(quiet.kind(), io::ErrorKind::WouldBlock);
        client.write_all(b"xy").unwrap();
        // Give the loopback a moment to deliver.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(peek_ready(fd).unwrap(), 1);
        // Peeking consumed nothing: it reports again, and a real read
        // still sees both bytes.
        assert_eq!(peek_ready(fd).unwrap(), 1);
        let mut buf = [0u8; 4];
        let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
        assert_eq!(n, 2);
        drop(client);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(peek_ready(fd).unwrap(), 0, "EOF peeks as zero");
    }

    #[test]
    fn del_stops_reports_for_a_readable_fd() {
        let poller = Poller::new().unwrap();
        let (mut client, server) = socket_pair();
        poller.add(server.as_raw_fd()).unwrap();
        client.write_all(b"x").unwrap();
        let mut ready = Vec::new();
        poller
            .wait(&mut ready, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(ready, vec![server.as_raw_fd()]);
        poller.del(server.as_raw_fd()).unwrap();
        let woken = poller
            .wait(&mut ready, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(!woken);
        assert!(ready.is_empty(), "deregistered fds stay silent: {ready:?}");
        // Double-del surfaces as ENOENT, not a panic.
        assert!(poller.del(server.as_raw_fd()).is_err());
    }
}
