//! Fault-injection client toolkit: scripted TCP peers that misbehave in
//! precisely controlled ways, for proving the server's connection
//! lifecycle under hostility.
//!
//! Production clients are well-formed; the clients that take services down
//! are not. This module provides the misbehaving ones as reusable,
//! deterministic building blocks — the `connection_lifecycle.rs`
//! integration suite drives them against a live server and asserts exact
//! status codes and clean closes within configured deadlines:
//!
//! - [`ChaosClient::send_dripped`] — slow-drip a request a few bytes at a
//!   time (each write inside the per-read timeout, the whole request well
//!   past the request deadline: the classic slowloris probe);
//! - [`ChaosClient::stall`] — go silent mid-header or mid-body;
//! - [`ChaosClient::disconnect`] — vanish after the request line;
//! - pipelined garbage — valid request followed by trailing junk on the
//!   same socket ([`ChaosClient::send_all`] composes freely);
//! - [`ChaosClient::read_response_dribbled`] — accept the response one
//!   byte at a time, the stalled-*reader* counterpart to slow writers.
//!
//! Everything here is plain blocking `std::net` — no harness magic — so a
//! chaos scenario reads as the byte-level script it is. The toolkit lives
//! in the crate (not `#[cfg(test)]`) so integration tests, benches and
//! future load rigs can all drive it; nothing in the server path depends
//! on it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Renders a well-formed HTTP/1.1 request. `keep_alive` controls the
/// `Connection:` header; chaos scripts mangle the output as needed.
#[must_use]
pub fn request_bytes(method: &str, path: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// One parsed HTTP response as read off the wire — status, raw headers,
/// and a `Content-Length`-framed body (so it works on keep-alive
/// connections, where EOF never delimits anything).
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Raw `name: value` header lines, in wire order.
    pub headers: Vec<(String, String)>,
    /// The exact body bytes (as UTF-8; every server response is JSON).
    pub body: String,
}

impl WireResponse {
    /// The first header with this name (ASCII case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server will keep the connection open after this
    /// response (`Connection: keep-alive`).
    #[must_use]
    pub fn keeps_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }

    /// Reads one framed response. Errors on a closed or unparsable
    /// stream — callers asserting a clean close use [`ChaosClient::read_eof`]
    /// instead.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; malformed framing surfaces as
    /// [`std::io::ErrorKind::InvalidData`], a mid-response close as
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn read_from<R: BufRead>(reader: &mut R) -> std::io::Result<WireResponse> {
        let invalid = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a status line",
            ));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| invalid("malformed status line"))?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed inside the header block",
                ));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| invalid("header line without a colon"))?;
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| invalid("response without a Content-Length"))?;
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| invalid("non-UTF-8 body"))?;
        Ok(WireResponse {
            status,
            headers,
            body,
        })
    }
}

/// A scripted TCP peer. Each method is one step of a chaos scenario; a
/// scenario is just a sequence of calls.
#[derive(Debug)]
pub struct ChaosClient {
    reader: BufReader<TcpStream>,
}

impl ChaosClient {
    /// Connects with a client-side read timeout — a chaos test must never
    /// hang on its *own* socket when asserting the server's deadlines.
    ///
    /// # Panics
    ///
    /// Panics when the test server cannot be reached (test bug, not a
    /// scenario outcome).
    #[must_use]
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> ChaosClient {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream
            .set_read_timeout(Some(read_timeout))
            .expect("set client read timeout");
        let _ = stream.set_nodelay(true);
        ChaosClient {
            reader: BufReader::new(stream),
        }
    }

    fn stream(&self) -> &TcpStream {
        self.reader.get_ref()
    }

    /// A second, independently-owned handle to the same socket, so a
    /// scenario can keep writing from one thread while another reads —
    /// required when the server may respond and close *mid-send* (reading
    /// promptly is the only way to observe the response before the
    /// client's own next write triggers a reset that discards it).
    ///
    /// # Panics
    ///
    /// Panics when the socket cannot be duplicated (test bug).
    #[must_use]
    pub fn split_writer(&self) -> TcpStream {
        self.stream().try_clone().expect("duplicate chaos socket")
    }

    /// Sends bytes in one burst.
    ///
    /// # Errors
    ///
    /// Propagates socket errors — a scenario asserting the server hung up
    /// mid-script treats `Err` as that observation, not a failure.
    pub fn send_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut stream = self.stream();
        stream.write_all(bytes)?;
        stream.flush()
    }

    /// Slow-drips bytes `chunk` at a time with `gap` pauses — each write
    /// lands inside the server's per-read timeout while the whole transfer
    /// can be stretched past any deadline.
    ///
    /// # Errors
    ///
    /// Propagates the first socket error; a server that rightfully gave up
    /// on us mid-drip surfaces here as `Err` (often `BrokenPipe`).
    pub fn send_dripped(
        &mut self,
        bytes: &[u8],
        chunk: usize,
        gap: Duration,
    ) -> std::io::Result<()> {
        let mut stream = self.stream();
        for piece in bytes.chunks(chunk.max(1)) {
            stream.write_all(piece)?;
            stream.flush()?;
            std::thread::sleep(gap);
        }
        Ok(())
    }

    /// Goes silent for `dur` (mid-header, mid-body, wherever the script
    /// paused) — the stall the idle/read timeouts exist to bound.
    pub fn stall(&self, dur: Duration) {
        std::thread::sleep(dur);
    }

    /// Vanishes: shuts the socket down both ways and drops it. Anything
    /// the server had in flight for us is now orphaned.
    pub fn disconnect(self) {
        let _ = self.stream().shutdown(std::net::Shutdown::Both);
    }

    /// Reads one framed response (see [`WireResponse::read_from`]).
    ///
    /// # Errors
    ///
    /// Propagates socket/framing errors; a client-side timeout
    /// (`WouldBlock`) means the server outlived the deadline the scenario
    /// asserts.
    pub fn read_response(&mut self) -> std::io::Result<WireResponse> {
        WireResponse::read_from(&mut self.reader)
    }

    /// Reads one framed response one byte at a time — the slow-*reader*
    /// peer. The server must not care how fast we drain it.
    ///
    /// # Errors
    ///
    /// As [`ChaosClient::read_response`].
    pub fn read_response_dribbled(&mut self, gap: Duration) -> std::io::Result<WireResponse> {
        struct OneByte<'a> {
            inner: &'a mut BufReader<TcpStream>,
            gap: Duration,
        }
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                std::thread::sleep(self.gap);
                self.inner.read(&mut buf[..1])
            }
        }
        let mut dribble = BufReader::with_capacity(
            1,
            OneByte {
                inner: &mut self.reader,
                gap,
            },
        );
        WireResponse::read_from(&mut dribble)
    }

    /// Waits for the server to close the connection cleanly (EOF), within
    /// the client read timeout. Returns `true` on EOF, `false` when bytes
    /// arrived instead; a timeout means the server kept the socket open.
    ///
    /// # Errors
    ///
    /// Propagates the client-side read timeout (`WouldBlock`/`TimedOut`)
    /// and any socket error. A reset (`ConnectionReset`) also counts as
    /// the server ending the connection and is reported as `Ok(true)`.
    pub fn read_eof(&mut self) -> std::io::Result<bool> {
        let mut byte = [0u8; 1];
        loop {
            match self.reader.read(&mut byte) {
                Ok(0) => return Ok(true),
                Ok(_) => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => return Ok(true),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_bytes_are_well_formed() {
        let bytes = request_bytes("POST", "/v1/bound", "{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("POST /v1/bound HTTP/1.1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let close = String::from_utf8(request_bytes("GET", "/healthz", "", false)).unwrap();
        assert!(close.contains("Connection: close\r\n"));
    }

    #[test]
    fn wire_response_parses_framed_bytes() {
        let raw = "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
                   Retry-After: 1\r\nContent-Length: 5\r\nConnection: keep-alive\r\n\r\nhello";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let resp = WireResponse::read_from(&mut reader).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.body, "hello");
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.keeps_alive());
        // Nothing consumed past the frame: a pipelined next response stays.
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "");
    }

    #[test]
    fn wire_response_rejects_malformed_and_truncated_streams() {
        let mut empty = std::io::BufReader::new(&b""[..]);
        assert_eq!(
            WireResponse::read_from(&mut empty).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
        let mut garbage = std::io::BufReader::new(&b"BLURT\r\n\r\n"[..]);
        assert_eq!(
            WireResponse::read_from(&mut garbage).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        let truncated = "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        let mut reader = std::io::BufReader::new(truncated.as_bytes());
        assert_eq!(
            WireResponse::read_from(&mut reader).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }
}
