//! Concurrency primitives for the serving tier.
//!
//! * [`Gate`] — the request-admission primitive the keep-alive server uses:
//!   a bounded set of compute permits plus a bounded waiting room. A
//!   request that finds no permit and a full waiting room bounces straight
//!   back so the connection loop can answer `503 + Retry-After` (load
//!   shedding, not buffering) while the connection itself stays usable.
//! * [`WaitGroup`] — deadline-aware completion tracking for graceful
//!   drain: every connection thread holds a guard, shutdown waits for all
//!   guards with a hard deadline and aborts stragglers past it.
//! * [`BoundedQueue`] + [`WorkerPool`] — general-purpose building
//!   blocks: the server's event tier runs its I/O workers off a
//!   [`BoundedQueue`] of ready connections (idle ones are parked on the
//!   epoll poller, so a persistent connection never pins a worker), and
//!   [`WorkerPool`] remains for embedders.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct QueueState<T> {
    items: VecDeque<T>,
    open: bool,
}

/// A bounded multi-producer/multi-consumer queue on [`Mutex`] + [`Condvar`].
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for QueueState<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueState")
            .field("len", &self.items.len())
            .field("open", &self.open)
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// An open queue bounded to `capacity` items (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for stats only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().map(|s| s.items.len()).unwrap_or(0)
    }

    /// True when nothing is queued (racy by nature; for stats only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. Returns the item when the queue is full
    /// or closed, so the caller can shed the load.
    ///
    /// # Errors
    ///
    /// `Err(item)` hands the item back on a full or closed queue.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if !state.open || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (`Some`) or the queue is closed
    /// *and* drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if !state.open {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .expect("queue lock poisoned while waiting");
        }
    }

    /// Closes the queue: future pushes fail, and consumers drain the
    /// remaining items before [`pop`](Self::pop) returns `None`.
    pub fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.open = false;
        }
        self.not_empty.notify_all();
    }
}

struct GateState {
    /// Compute permits currently available.
    available: usize,
    /// Requests parked in the waiting room.
    waiting: usize,
}

/// A bounded semaphore with a bounded waiting room.
///
/// `permits` bounds how many requests compute concurrently; `max_waiting`
/// bounds how many more may block for a permit. Beyond both, [`acquire`]
/// returns `None` immediately — the caller sheds the request (the server
/// answers `503 + Retry-After`) instead of building an unbounded backlog.
/// This is the keep-alive replacement for the old per-*connection* queue
/// bound: admission control moves from accept time to request time, so a
/// persistent connection can carry thousands of requests while the server
/// still never runs more than `permits` computations at once.
///
/// [`acquire`]: Gate::acquire
#[derive(Debug)]
pub struct Gate {
    state: Mutex<GateState>,
    released: Condvar,
    permits: usize,
    max_waiting: usize,
}

impl std::fmt::Debug for GateState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateState")
            .field("available", &self.available)
            .field("waiting", &self.waiting)
            .finish()
    }
}

/// An acquired [`Gate`] permit; dropping it releases the slot and wakes one
/// waiter.
#[derive(Debug)]
pub struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("gate lock poisoned");
        state.available += 1;
        drop(state);
        self.gate.released.notify_one();
    }
}

impl Gate {
    /// A gate with `permits` concurrent slots (clamped to ≥ 1) and room
    /// for `max_waiting` blocked requests (0 means shed the instant every
    /// permit is busy).
    #[must_use]
    pub fn new(permits: usize, max_waiting: usize) -> Self {
        let permits = permits.max(1);
        Gate {
            state: Mutex::new(GateState {
                available: permits,
                waiting: 0,
            }),
            released: Condvar::new(),
            permits,
            max_waiting,
        }
    }

    /// The concurrent-compute bound.
    #[must_use]
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// The waiting-room bound.
    #[must_use]
    pub fn max_waiting(&self) -> usize {
        self.max_waiting
    }

    /// Takes a permit only if one is free right now — never enters the
    /// waiting room. The event tier's I/O workers admit requests through
    /// this: a worker blocked in the waiting room would be lost to the
    /// serving plane (starving ungated traffic under full compute load),
    /// so saturation is surfaced immediately and the caller shelves or
    /// sheds the request instead.
    #[must_use]
    pub fn try_acquire(&self) -> Option<GatePermit<'_>> {
        let mut state = self.state.lock().expect("gate lock poisoned");
        if state.available == 0 {
            return None;
        }
        state.available -= 1;
        Some(GatePermit { gate: self })
    }

    /// Takes a permit, blocking in the waiting room if every permit is
    /// busy. Returns `None` without blocking when the waiting room is full
    /// too — the caller sheds the load.
    #[must_use]
    pub fn acquire(&self) -> Option<GatePermit<'_>> {
        let mut state = self.state.lock().expect("gate lock poisoned");
        if state.available == 0 {
            if state.waiting >= self.max_waiting {
                return None;
            }
            state.waiting += 1;
            while state.available == 0 {
                state = self
                    .released
                    .wait(state)
                    .expect("gate lock poisoned while waiting");
            }
            state.waiting -= 1;
        }
        state.available -= 1;
        Some(GatePermit { gate: self })
    }
}

/// Counts outstanding work and lets a drainer wait for zero with a
/// deadline. Connection threads hold a [`WaitGuard`] for their lifetime
/// (panic-safe: the guard decrements on drop); [`WaitGroup::wait_timeout`]
/// is the graceful-drain barrier, returning `false` when stragglers remain
/// past the deadline so the caller can abort them.
#[derive(Debug, Default)]
pub struct WaitGroup {
    count: Mutex<usize>,
    zero: Condvar,
}

/// One unit of outstanding work in a [`WaitGroup`].
#[derive(Debug)]
pub struct WaitGuard {
    group: Arc<WaitGroup>,
}

impl Drop for WaitGuard {
    fn drop(&mut self) {
        let mut count = self.group.count.lock().expect("waitgroup lock poisoned");
        *count -= 1;
        if *count == 0 {
            drop(count);
            self.group.zero.notify_all();
        }
    }
}

impl WaitGroup {
    /// An empty group.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(WaitGroup::default())
    }

    /// Registers one unit of work; drop the guard to retire it.
    #[must_use]
    pub fn enter(self: &Arc<Self>) -> WaitGuard {
        let mut count = self.count.lock().expect("waitgroup lock poisoned");
        *count += 1;
        drop(count);
        WaitGuard {
            group: Arc::clone(self),
        }
    }

    /// Outstanding units (racy by nature; for stats and logging).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.count.lock().map(|c| *c).unwrap_or(0)
    }

    /// Blocks until every guard has dropped or `deadline` elapses; `true`
    /// means the group reached zero.
    #[must_use]
    pub fn wait_timeout(&self, deadline: std::time::Duration) -> bool {
        let end = std::time::Instant::now() + deadline;
        let mut count = self.count.lock().expect("waitgroup lock poisoned");
        while *count > 0 {
            let now = std::time::Instant::now();
            if now >= end {
                return false;
            }
            let (next, timeout) = self
                .zero
                .wait_timeout(count, end - now)
                .expect("waitgroup lock poisoned while waiting");
            count = next;
            if timeout.timed_out() && *count > 0 {
                return false;
            }
        }
        true
    }
}

/// A fixed pool of worker threads draining a [`BoundedQueue`] through one
/// shared handler.
pub struct WorkerPool<T: Send + 'static> {
    queue: Arc<BoundedQueue<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> std::fmt::Debug for WorkerPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `threads` workers (clamped to ≥ 1) over a queue bounded to
    /// `queue_capacity`, each running `handler` on every popped item.
    pub fn new<F>(threads: usize, queue_capacity: usize, handler: F) -> Self
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let queue = Arc::new(BoundedQueue::new(queue_capacity));
        let handler = Arc::new(handler);
        let workers = (0..threads.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("clb-worker-{i}"))
                    .spawn(move || {
                        while let Some(item) = queue.pop() {
                            // One bad request must not shrink the pool: a
                            // panicking handler drops its item (closing the
                            // connection) and the worker lives on.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handler(item)
                                }));
                            if outcome.is_err() {
                                eprintln!("clb-worker-{i}: handler panicked; item dropped");
                            }
                        }
                    })
                    .expect("spawning a worker thread failed")
            })
            .collect();
        WorkerPool { queue, workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Hands `item` to the pool without blocking.
    ///
    /// # Errors
    ///
    /// `Err(item)` hands the item back when the queue is full (or the pool
    /// is shutting down) — the caller sheds the load.
    pub fn try_dispatch(&self, item: T) -> Result<(), T> {
        self.queue.try_push(item)
    }

    /// Graceful shutdown: stops intake, drains the queue, joins every
    /// worker.
    pub fn shutdown(mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_rejects_when_full_and_after_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()));
        q.close();
        assert_eq!(q.try_push(5), Err(5));
        // Closed queues still drain.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_capacity_clamps_to_one() {
        let q: BoundedQueue<u32> = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(2));
    }

    #[test]
    fn pool_processes_all_dispatched_items() {
        let processed = Arc::new(AtomicUsize::new(0));
        let pool = {
            let processed = Arc::clone(&processed);
            WorkerPool::new(4, 64, move |n: usize| {
                processed.fetch_add(n, Ordering::Relaxed);
            })
        };
        let mut dispatched = 0;
        for i in 1..=50 {
            // Retry on transient fullness: the test wants totals, not
            // shedding behavior.
            let mut item = i;
            loop {
                match pool.try_dispatch(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            }
            dispatched += i;
        }
        pool.shutdown(); // drains before joining
        assert_eq!(processed.load(Ordering::Relaxed), dispatched);
    }

    #[test]
    fn pool_sheds_load_when_saturated() {
        let gate = Arc::new(std::sync::Barrier::new(2));
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new(1, 1, move |n: u32| {
                if n == 1 {
                    gate.wait(); // the first item parks the only worker…
                    gate.wait(); // …until the test releases it
                }
            })
        };
        pool.try_dispatch(1).unwrap(); // taken by the worker
        gate.wait(); // worker is now busy
        pool.try_dispatch(2).unwrap(); // fills the queue slot
        assert_eq!(pool.try_dispatch(3), Err(3)); // shed
        gate.wait(); // release the worker
        pool.shutdown();
    }

    #[test]
    fn panicking_handler_does_not_kill_workers() {
        let processed = Arc::new(AtomicUsize::new(0));
        let pool = {
            let processed = Arc::clone(&processed);
            WorkerPool::new(1, 8, move |n: u32| {
                assert_ne!(n, 0, "poison item"); // panics for n == 0
                processed.fetch_add(1, Ordering::Relaxed);
            })
        };
        pool.try_dispatch(0).unwrap(); // panics inside the only worker
        for i in 1..=3 {
            let mut item = i;
            while let Err(back) = pool.try_dispatch(item) {
                item = back;
                std::thread::yield_now();
            }
        }
        pool.shutdown();
        assert_eq!(
            processed.load(Ordering::Relaxed),
            3,
            "the worker must survive the panic and drain the rest"
        );
    }

    #[test]
    fn gate_sheds_beyond_permits_plus_waiting_room() {
        let gate = Gate::new(1, 0);
        let held = gate.acquire().expect("first permit");
        // Permit busy, waiting room of zero: instant shed.
        assert!(gate.acquire().is_none());
        drop(held);
        assert!(gate.acquire().is_some(), "released permits are reusable");
    }

    #[test]
    fn gate_waiting_room_blocks_then_admits() {
        let gate = Arc::new(Gate::new(1, 1));
        let held = gate.acquire().expect("permit");
        let entered = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let (gate, entered) = (Arc::clone(&gate), Arc::clone(&entered));
            std::thread::spawn(move || {
                let permit = gate.acquire();
                entered.fetch_add(1, Ordering::SeqCst);
                assert!(permit.is_some(), "a parked waiter must eventually enter");
            })
        };
        // Give the waiter time to park, then check the room is full.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "waiter must be parked");
        assert!(
            gate.acquire().is_none(),
            "second overflow must shed, not queue"
        );
        drop(held);
        waiter.join().unwrap();
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn try_acquire_never_waits_and_never_counts_as_waiting() {
        let gate = Arc::new(Gate::new(1, 1));
        let held = gate.try_acquire().expect("free permit");
        // Saturated: try_acquire bounces immediately without consuming
        // the waiting room...
        assert!(gate.try_acquire().is_none());
        // ...so a blocking waiter still fits in it afterwards.
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.acquire().is_some())
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(gate.try_acquire().is_none(), "still saturated");
        drop(held);
        assert!(waiter.join().unwrap(), "the parked waiter enters first");
    }

    #[test]
    fn gate_clamps_zero_permits_to_one() {
        let gate = Gate::new(0, 0);
        assert_eq!(gate.permits(), 1);
        assert!(gate.acquire().is_some());
    }

    #[test]
    fn waitgroup_times_out_on_stragglers_and_completes_on_drop() {
        let wg = WaitGroup::new();
        let guard = wg.enter();
        assert_eq!(wg.outstanding(), 1);
        assert!(
            !wg.wait_timeout(std::time::Duration::from_millis(30)),
            "a held guard must time the drain out"
        );
        let wg2 = Arc::clone(&wg);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(guard);
        });
        assert!(
            wg2.wait_timeout(std::time::Duration::from_secs(5)),
            "dropping the last guard must release the drain"
        );
        t.join().unwrap();
        assert_eq!(wg.outstanding(), 0);
        // An empty group drains instantly.
        assert!(wg.wait_timeout(std::time::Duration::from_millis(1)));
    }

    #[test]
    fn drop_joins_workers() {
        let processed = Arc::new(AtomicUsize::new(0));
        {
            let processed = Arc::clone(&processed);
            let pool = WorkerPool::new(2, 8, move |_: u32| {
                processed.fetch_add(1, Ordering::Relaxed);
            });
            for i in 0..5 {
                pool.try_dispatch(i).unwrap();
            }
        } // drop: close + drain + join
        assert_eq!(processed.load(Ordering::Relaxed), 5);
    }
}
