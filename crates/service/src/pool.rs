//! A fixed worker pool fed by a bounded MPMC queue.
//!
//! The accept loop pushes accepted connections with the non-blocking
//! [`BoundedQueue::try_push`]; when every worker is busy and the queue is
//! full the connection bounces straight back so the server can answer `503`
//! instead of building an unbounded backlog (load shedding, not buffering).
//! Shutdown is graceful: closing the queue wakes every idle worker, workers
//! drain what was already accepted, then exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct QueueState<T> {
    items: VecDeque<T>,
    open: bool,
}

/// A bounded multi-producer/multi-consumer queue on [`Mutex`] + [`Condvar`].
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for QueueState<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueState")
            .field("len", &self.items.len())
            .field("open", &self.open)
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// An open queue bounded to `capacity` items (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for stats only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().map(|s| s.items.len()).unwrap_or(0)
    }

    /// True when nothing is queued (racy by nature; for stats only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. Returns the item when the queue is full
    /// or closed, so the caller can shed the load.
    ///
    /// # Errors
    ///
    /// `Err(item)` hands the item back on a full or closed queue.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if !state.open || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (`Some`) or the queue is closed
    /// *and* drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if !state.open {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .expect("queue lock poisoned while waiting");
        }
    }

    /// Closes the queue: future pushes fail, and consumers drain the
    /// remaining items before [`pop`](Self::pop) returns `None`.
    pub fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.open = false;
        }
        self.not_empty.notify_all();
    }
}

/// A fixed pool of worker threads draining a [`BoundedQueue`] through one
/// shared handler.
pub struct WorkerPool<T: Send + 'static> {
    queue: Arc<BoundedQueue<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> std::fmt::Debug for WorkerPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `threads` workers (clamped to ≥ 1) over a queue bounded to
    /// `queue_capacity`, each running `handler` on every popped item.
    pub fn new<F>(threads: usize, queue_capacity: usize, handler: F) -> Self
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let queue = Arc::new(BoundedQueue::new(queue_capacity));
        let handler = Arc::new(handler);
        let workers = (0..threads.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("clb-worker-{i}"))
                    .spawn(move || {
                        while let Some(item) = queue.pop() {
                            // One bad request must not shrink the pool: a
                            // panicking handler drops its item (closing the
                            // connection) and the worker lives on.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handler(item)
                                }));
                            if outcome.is_err() {
                                eprintln!("clb-worker-{i}: handler panicked; item dropped");
                            }
                        }
                    })
                    .expect("spawning a worker thread failed")
            })
            .collect();
        WorkerPool { queue, workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Hands `item` to the pool without blocking.
    ///
    /// # Errors
    ///
    /// `Err(item)` hands the item back when the queue is full (or the pool
    /// is shutting down) — the caller sheds the load.
    pub fn try_dispatch(&self, item: T) -> Result<(), T> {
        self.queue.try_push(item)
    }

    /// Graceful shutdown: stops intake, drains the queue, joins every
    /// worker.
    pub fn shutdown(mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_rejects_when_full_and_after_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()));
        q.close();
        assert_eq!(q.try_push(5), Err(5));
        // Closed queues still drain.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_capacity_clamps_to_one() {
        let q: BoundedQueue<u32> = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(2));
    }

    #[test]
    fn pool_processes_all_dispatched_items() {
        let processed = Arc::new(AtomicUsize::new(0));
        let pool = {
            let processed = Arc::clone(&processed);
            WorkerPool::new(4, 64, move |n: usize| {
                processed.fetch_add(n, Ordering::Relaxed);
            })
        };
        let mut dispatched = 0;
        for i in 1..=50 {
            // Retry on transient fullness: the test wants totals, not
            // shedding behavior.
            let mut item = i;
            loop {
                match pool.try_dispatch(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            }
            dispatched += i;
        }
        pool.shutdown(); // drains before joining
        assert_eq!(processed.load(Ordering::Relaxed), dispatched);
    }

    #[test]
    fn pool_sheds_load_when_saturated() {
        let gate = Arc::new(std::sync::Barrier::new(2));
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new(1, 1, move |n: u32| {
                if n == 1 {
                    gate.wait(); // the first item parks the only worker…
                    gate.wait(); // …until the test releases it
                }
            })
        };
        pool.try_dispatch(1).unwrap(); // taken by the worker
        gate.wait(); // worker is now busy
        pool.try_dispatch(2).unwrap(); // fills the queue slot
        assert_eq!(pool.try_dispatch(3), Err(3)); // shed
        gate.wait(); // release the worker
        pool.shutdown();
    }

    #[test]
    fn panicking_handler_does_not_kill_workers() {
        let processed = Arc::new(AtomicUsize::new(0));
        let pool = {
            let processed = Arc::clone(&processed);
            WorkerPool::new(1, 8, move |n: u32| {
                assert_ne!(n, 0, "poison item"); // panics for n == 0
                processed.fetch_add(1, Ordering::Relaxed);
            })
        };
        pool.try_dispatch(0).unwrap(); // panics inside the only worker
        for i in 1..=3 {
            let mut item = i;
            while let Err(back) = pool.try_dispatch(item) {
                item = back;
                std::thread::yield_now();
            }
        }
        pool.shutdown();
        assert_eq!(
            processed.load(Ordering::Relaxed),
            3,
            "the worker must survive the panic and drain the rest"
        );
    }

    #[test]
    fn drop_joins_workers() {
        let processed = Arc::new(AtomicUsize::new(0));
        {
            let processed = Arc::clone(&processed);
            let pool = WorkerPool::new(2, 8, move |_: u32| {
                processed.fetch_add(1, Ordering::Relaxed);
            });
            for i in 0..5 {
                pool.try_dispatch(i).unwrap();
            }
        } // drop: close + drain + join
        assert_eq!(processed.load(Ordering::Relaxed), 5);
    }
}
