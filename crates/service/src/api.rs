//! The JSON API: request schemas, response schemas and the endpoint
//! handlers that map one parsed request body to one response.
//!
//! Handlers are pure functions of the request value — no sockets, no
//! threads — so the integration tests (and the throughput bench baseline)
//! call them directly and compare bytes against what the server returns.
//! Responses reuse the exact report structures `clb --json` prints
//! ([`LayerReport`], [`NetworkReport`], [`DataflowChoice`]), serialized by
//! the same `serde_json` pretty printer, so a service response is
//! bit-identical to the corresponding library/CLI output.

use accel_sim::{ArchConfig, DramConfig, ExecutionTrace, SimStats, TraceOptions};
use clb_core::{
    Accelerator, ArchSweepEntry, LayerReport, NetworkReport, Objective, OnChipMemory,
    StagedProgress, SweepCost,
};
use clb_core::network_caps;
use conv_model::workloads::Network;
use conv_model::{workloads, ConvLayer, Padding};
use dataflow::{found_minimum, search_dataflow, DataflowChoice, DataflowKind, Tiling};
use serde::{Deserialize, Serialize, Value};

use crate::http::Response;

/// Upper bounds on request dimensions, so a single hostile query cannot
/// park a worker on an astronomically large search. Generous: the largest
/// real layer in the workload suite (AlexNet conv1, 224×224) fits with
/// room to spare. Architecture fields have their own caps
/// ([`accel_sim::caps`]), enforced by [`ArchConfig::validate`] at every
/// boundary that accepts an `arch` object.
pub mod limits {
    /// Max output channels / input channels.
    pub const MAX_CHANNELS: usize = 4096;
    /// Max spatial output size.
    pub const MAX_SIZE: usize = 1024;
    /// Max kernel size.
    pub const MAX_KERNEL: usize = 32;
    /// Max stride.
    pub const MAX_STRIDE: usize = 16;
    /// Max batch.
    pub const MAX_BATCH: usize = 64;
    /// Max on-chip memory in KiB.
    pub const MAX_MEM_KIB: f64 = 1_048_576.0; // 1 GiB on chip is beyond generous
    /// Max candidate architectures one *legacy* `/v1/dse` sweep may
    /// evaluate (explicit list length, or grid cardinality — checked
    /// before the grid is expanded). Legacy sweeps evaluate every
    /// candidate, so the cap is small.
    pub const MAX_DSE_CANDIDATES: usize = 256;
    /// Max candidates a *staged* `/v1/dse` sweep (any of `objective`,
    /// `top_k`, `stream` present) may stage. The staged engine
    /// bound-prunes before planning, so the cap is ~4000× the legacy one;
    /// grid cardinality is still u128-checked before expansion.
    pub const MAX_DSE_STAGED_CANDIDATES: usize = 1 << 20;
    /// Max frontier size (`top_k`) a staged sweep may keep.
    pub const MAX_DSE_TOP_K: usize = 1024;
    /// Frontier size when a staged request omits `top_k`.
    pub const DEFAULT_DSE_TOP_K: usize = 16;
}

/// A handler-level failure, carrying the response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The request body is structurally wrong (400).
    BadRequest(String),
    /// The request parsed but names an impossible computation (422).
    Unprocessable(String),
    /// Serialization failed — should not happen (500).
    Internal(String),
}

impl ApiError {
    /// Renders the error as a JSON error response.
    #[must_use]
    pub fn into_response(self) -> Response {
        match self {
            ApiError::BadRequest(m) => Response::error(400, &m),
            ApiError::Unprocessable(m) => Response::error(422, &m),
            ApiError::Internal(m) => Response::error(500, &m),
        }
    }

    /// The same error with `prefix: ` prepended to its message (used to
    /// point at which DSE candidate or grid field was at fault).
    #[must_use]
    fn prefixed(self, prefix: &str) -> ApiError {
        match self {
            ApiError::BadRequest(m) => ApiError::BadRequest(format!("{prefix}: {m}")),
            ApiError::Unprocessable(m) => ApiError::Unprocessable(format!("{prefix}: {m}")),
            ApiError::Internal(m) => ApiError::Internal(format!("{prefix}: {m}")),
        }
    }
}

fn get_field<'a>(v: &'a Value, name: &str) -> Result<Option<&'a Value>, ApiError> {
    match v {
        Value::Object(fields) => Ok(fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, field)| field)),
        _ => Err(ApiError::BadRequest(
            "request body must be a JSON object".to_string(),
        )),
    }
}

fn require<T: Deserialize>(v: &Value, name: &str) -> Result<T, ApiError> {
    match get_field(v, name)? {
        Some(field) => {
            T::from_value(field).map_err(|e| ApiError::BadRequest(format!("field `{name}`: {e}")))
        }
        None => Err(ApiError::BadRequest(format!(
            "missing required field `{name}`"
        ))),
    }
}

fn optional<T: Deserialize>(v: &Value, name: &str, default: T) -> Result<T, ApiError> {
    match get_field(v, name)? {
        None | Some(Value::Null) => Ok(default),
        Some(field) => {
            T::from_value(field).map_err(|e| ApiError::BadRequest(format!("field `{name}`: {e}")))
        }
    }
}

/// The square-layer geometry shared by `/v1/bound`, `/v1/sweep` and
/// `/v1/plan` — the same flags the CLI verbs take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LayerSpec {
    /// Output channels (required).
    pub co: usize,
    /// Output spatial size (required).
    pub size: usize,
    /// Input channels (required).
    pub ci: usize,
    /// Kernel size (default 3).
    pub k: usize,
    /// Stride (default 1).
    pub stride: usize,
    /// Batch (default 3).
    pub batch: usize,
}

impl LayerSpec {
    /// Parses the spec from a request body, applying the CLI defaults.
    ///
    /// # Errors
    ///
    /// [`ApiError::BadRequest`] on missing/ill-typed fields.
    pub fn from_value(v: &Value) -> Result<Self, ApiError> {
        Ok(LayerSpec {
            co: require(v, "co")?,
            size: require(v, "size")?,
            ci: require(v, "ci")?,
            k: optional(v, "k", 3)?,
            stride: optional(v, "stride", 1)?,
            batch: optional(v, "batch", 3)?,
        })
    }

    /// Validates the limits and constructs the layer.
    ///
    /// # Errors
    ///
    /// [`ApiError::Unprocessable`] when a dimension exceeds [`limits`] or
    /// the geometry is invalid.
    pub fn to_layer(&self) -> Result<ConvLayer, ApiError> {
        let within = self.co <= limits::MAX_CHANNELS
            && self.ci <= limits::MAX_CHANNELS
            && self.size <= limits::MAX_SIZE
            && self.k <= limits::MAX_KERNEL
            && self.stride <= limits::MAX_STRIDE
            && self.batch <= limits::MAX_BATCH;
        if !within {
            return Err(ApiError::Unprocessable(format!(
                "layer dimensions exceed service limits \
                 (co/ci ≤ {}, size ≤ {}, k ≤ {}, stride ≤ {}, batch ≤ {})",
                limits::MAX_CHANNELS,
                limits::MAX_SIZE,
                limits::MAX_KERNEL,
                limits::MAX_STRIDE,
                limits::MAX_BATCH,
            )));
        }
        ConvLayer::square(self.batch, self.co, self.size, self.ci, self.k, self.stride)
            .map_err(|e| ApiError::Unprocessable(e.to_string()))
    }
}

fn parse_mem_kib(v: &Value) -> Result<f64, ApiError> {
    let mem_kib: f64 = optional(v, "mem_kib", 66.5)?;
    if !mem_kib.is_finite() || mem_kib <= 0.0 || mem_kib > limits::MAX_MEM_KIB {
        return Err(ApiError::Unprocessable(format!(
            "mem_kib must be in (0, {}]",
            limits::MAX_MEM_KIB
        )));
    }
    Ok(mem_kib)
}

fn parse_implem(v: &Value) -> Result<usize, ApiError> {
    let implem: usize = optional(v, "implem", 1)?;
    if !(1..=5).contains(&implem) {
        return Err(ApiError::Unprocessable(
            "implem must be 1..=5 (the Table I implementations)".to_string(),
        ));
    }
    Ok(implem)
}

/// Parses a full custom-architecture object. Every field is optional and
/// defaults to the corresponding Table I implementation 1 value, so a
/// what-if request only spells out what it changes:
///
/// ```json
/// {"pe_rows": 24, "pe_cols": 24, "igbuf_entries": 3072,
///  "dram": {"bandwidth_bytes_per_s": 12.8e9}}
/// ```
///
/// The resulting configuration is validated against the structural
/// invariants and the [`accel_sim::caps`] limits before anything touches
/// it, so hostile field values (zero, huge, overflowing, non-finite) come
/// back as a typed 422 naming the violated invariant rather than
/// panicking, hanging or exploding the block grid. Unknown fields are
/// rejected (400): because every field is optional, a typo would otherwise
/// silently evaluate the default architecture and the caller would trust
/// numbers for a design it never specified.
///
/// # Errors
///
/// [`ApiError::BadRequest`] when the value is not an object, a field is
/// ill-typed or unknown; [`ApiError::Unprocessable`] when the
/// configuration fails [`ArchConfig::validate`].
pub fn arch_from_value(v: &Value) -> Result<ArchConfig, ApiError> {
    const ARCH_KEYS: [&str; 11] = [
        "pe_rows",
        "pe_cols",
        "group_rows",
        "group_cols",
        "lreg_entries_per_pe",
        "igbuf_entries",
        "wgbuf_entries",
        "greg_bytes",
        "greg_segment_entries",
        "core_freq_hz",
        "dram",
    ];
    let Value::Object(fields) = v else {
        return Err(ApiError::BadRequest(
            "`arch` must be a JSON object".to_string(),
        ));
    };
    for (key, _) in fields {
        if !ARCH_KEYS.contains(&key.as_str()) {
            return Err(ApiError::BadRequest(format!(
                "unknown arch field `{key}` (expected one of {})",
                ARCH_KEYS.join(", ")
            )));
        }
    }
    let base = ArchConfig::implementation(1);
    let dram = match get_field(v, "dram")? {
        None | Some(Value::Null) => base.dram,
        Some(d) => {
            let Value::Object(dram_fields) = d else {
                return Err(ApiError::BadRequest(
                    "`arch.dram` must be a JSON object".to_string(),
                ));
            };
            for (key, _) in dram_fields {
                if key != "bandwidth_bytes_per_s" && key != "latency_cycles" {
                    return Err(ApiError::BadRequest(format!(
                        "unknown arch.dram field `{key}` \
                         (expected bandwidth_bytes_per_s, latency_cycles)"
                    )));
                }
            }
            DramConfig {
                bandwidth_bytes_per_s: optional(
                    d,
                    "bandwidth_bytes_per_s",
                    base.dram.bandwidth_bytes_per_s,
                )?,
                latency_cycles: optional(d, "latency_cycles", base.dram.latency_cycles)?,
            }
        }
    };
    let arch = ArchConfig {
        pe_rows: optional(v, "pe_rows", base.pe_rows)?,
        pe_cols: optional(v, "pe_cols", base.pe_cols)?,
        group_rows: optional(v, "group_rows", base.group_rows)?,
        group_cols: optional(v, "group_cols", base.group_cols)?,
        lreg_entries_per_pe: optional(v, "lreg_entries_per_pe", base.lreg_entries_per_pe)?,
        igbuf_entries: optional(v, "igbuf_entries", base.igbuf_entries)?,
        wgbuf_entries: optional(v, "wgbuf_entries", base.wgbuf_entries)?,
        greg_bytes: optional(v, "greg_bytes", base.greg_bytes)?,
        greg_segment_entries: optional(v, "greg_segment_entries", base.greg_segment_entries)?,
        core_freq_hz: optional(v, "core_freq_hz", base.core_freq_hz)?,
        dram,
    };
    arch.validate()
        .map_err(|m| ApiError::Unprocessable(format!("invalid arch: {m}")))?;
    Ok(arch)
}

/// Which architecture a request names: a Table I preset (`implem`,
/// default 1) or a full custom `arch` object. Every endpoint that accepted
/// an `implem` index accepts the `arch` alternative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArchChoice {
    /// A Table I implementation index (1..=5).
    Implem(usize),
    /// A validated custom architecture.
    Custom(ArchConfig),
}

impl ArchChoice {
    /// The concrete configuration either way.
    #[must_use]
    pub fn arch(&self) -> ArchConfig {
        match self {
            ArchChoice::Implem(i) => ArchConfig::implementation(*i),
            ArchChoice::Custom(a) => *a,
        }
    }
}

/// Parses the `implem`-or-`arch` selection shared by `/v1/plan`,
/// `/v1/simulate` and `/v1/network`.
fn parse_arch_choice(v: &Value) -> Result<ArchChoice, ApiError> {
    match get_field(v, "arch")? {
        None | Some(Value::Null) => Ok(ArchChoice::Implem(parse_implem(v)?)),
        Some(obj) => {
            if !matches!(get_field(v, "implem")?, None | Some(Value::Null)) {
                return Err(ApiError::BadRequest(
                    "specify either `implem` or `arch`, not both".to_string(),
                ));
            }
            Ok(ArchChoice::Custom(arch_from_value(obj)?))
        }
    }
}

/// Parses the memory selection of `/v1/bound` and `/v1/sweep`: either
/// `mem_kib` directly, or an `arch` object whose *effective on-chip
/// memory* (LRegs + GBufs, the paper's `S`) supplies it.
fn parse_mem_choice(v: &Value) -> Result<f64, ApiError> {
    match get_field(v, "arch")? {
        None | Some(Value::Null) => parse_mem_kib(v),
        Some(obj) => {
            if !matches!(get_field(v, "mem_kib")?, None | Some(Value::Null)) {
                return Err(ApiError::BadRequest(
                    "specify either `mem_kib` or `arch`, not both".to_string(),
                ));
            }
            let arch = arch_from_value(obj)?;
            Ok(arch.effective_onchip_bytes() as f64 / 1024.0)
        }
    }
}

fn render<T: Serialize>(value: &T) -> Result<String, ApiError> {
    serde_json::to_string_pretty(value).map_err(|e| ApiError::Internal(e.to_string()))
}

/// How `/v1/simulate` and `/v1/plan` render a requested execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The structured [`ExecutionTrace`] under a trailing `trace` field.
    Json,
    /// A VCD waveform string under a trailing `vcd` field (implies the
    /// per-block expansion — a waveform needs a timeline, not a histogram).
    Vcd,
}

/// A parsed `trace` request option: which format, and whether the
/// per-block expansion was asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRequest {
    /// Requested rendering.
    pub format: TraceFormat,
    /// Whether the per-block expansion is on (forced on by VCD).
    pub expand: bool,
}

impl TraceRequest {
    /// The simulator-side options this request maps to.
    #[must_use]
    pub fn options(&self) -> TraceOptions {
        TraceOptions {
            expand: self.expand,
        }
    }
}

const TRACE_KEYS: [&str; 2] = ["format", "expand"];

/// Parses the optional `trace` object shared by `/v1/simulate` and
/// `/v1/plan`. Absent or `null` means no trace (the response bytes stay
/// exactly as before the trace feature existed).
fn parse_trace_request(v: &Value) -> Result<Option<TraceRequest>, ApiError> {
    let obj = match get_field(v, "trace")? {
        None | Some(Value::Null) => return Ok(None),
        Some(obj @ Value::Object(fields)) => {
            for (key, _) in fields {
                if !TRACE_KEYS.contains(&key.as_str()) {
                    return Err(ApiError::BadRequest(format!(
                        "unknown `trace` field `{key}` (allowed: {})",
                        TRACE_KEYS.join(", ")
                    )));
                }
            }
            obj
        }
        Some(_) => {
            return Err(ApiError::BadRequest(
                "field `trace` must be an object like {\"format\": \"json\"|\"vcd\", \
                 \"expand\": bool}"
                    .to_string(),
            ))
        }
    };
    let format_name: String = optional(obj, "format", "json".to_string())?;
    let format = match format_name.as_str() {
        "json" => TraceFormat::Json,
        "vcd" => TraceFormat::Vcd,
        other => {
            return Err(ApiError::Unprocessable(format!(
                "unknown trace format `{other}` (json|vcd)"
            )))
        }
    };
    let expand: bool = optional(obj, "expand", false)?;
    Ok(Some(TraceRequest {
        format,
        expand: expand || format == TraceFormat::Vcd,
    }))
}

/// Renders `base` with the trace appended as one trailing top-level field
/// (`trace` for JSON traces, `vcd` for waveforms). Appending — rather than
/// adding optional fields to the response structs — keeps every untraced
/// response bit-identical to its pre-trace wire bytes.
fn render_traced<T: Serialize>(
    base: &T,
    request: &TraceRequest,
    trace: &ExecutionTrace,
) -> Result<String, ApiError> {
    let mut value = base.to_value();
    let Value::Object(fields) = &mut value else {
        return Err(ApiError::Internal(
            "traced responses must serialize as objects".to_string(),
        ));
    };
    match request.format {
        TraceFormat::Json => fields.push(("trace".to_string(), trace.to_value())),
        TraceFormat::Vcd => {
            let vcd = trace.to_vcd().ok_or_else(|| {
                ApiError::Internal("VCD rendering requires an expanded trace".to_string())
            })?;
            fields.push(("vcd".to_string(), Value::String(vcd)));
        }
    }
    render(&value)
}

/// `POST /v1/bound` — the communication lower bounds of one layer
/// (mirrors `clb bound`).
#[derive(Debug, Clone, Serialize)]
pub struct BoundResponse {
    /// Echo of the analyzed layer.
    pub layer: ConvLayer,
    /// Effective on-chip memory in KiB.
    pub mem_kib: f64,
    /// Multiply-accumulates in the layer.
    pub macs: u64,
    /// Window reuse factor `R`.
    pub window_reuse: f64,
    /// Theorem 2 asymptotic bound, in bytes.
    pub theorem2_bytes: f64,
    /// Eq. 15 practical bound, in bytes.
    pub bound_bytes: f64,
    /// No-reuse (naive) traffic, in bytes.
    pub naive_bytes: f64,
    /// `sqrt(R·S)` reduction factor versus naive.
    pub reduction_factor: f64,
}

/// Handles `POST /v1/bound`.
///
/// # Errors
///
/// [`ApiError`] on malformed or out-of-limit requests.
pub fn bound_response(v: &Value) -> Result<String, ApiError> {
    let layer = LayerSpec::from_value(v)?.to_layer()?;
    let mem_kib = parse_mem_choice(v)?;
    let mem = OnChipMemory::from_kib(mem_kib);
    render(&BoundResponse {
        layer,
        mem_kib,
        macs: layer.macs(),
        window_reuse: layer.window_reuse(),
        theorem2_bytes: comm_bound::theorem2_dram_words(&layer, mem) * 2.0,
        bound_bytes: comm_bound::dram_bound_bytes(&layer, mem),
        naive_bytes: comm_bound::naive_dram_words(&layer) * 2.0,
        reduction_factor: comm_bound::reduction_factor(&layer, mem),
    })
}

/// One dataflow's entry in a [`SweepResponse`].
#[derive(Debug, Clone, Serialize)]
pub struct SweepEntry {
    /// The dataflow.
    pub kind: DataflowKind,
    /// The paper's figure label for it.
    pub name: String,
    /// Best tiling and traffic, or `null` when infeasible at this memory.
    pub choice: Option<DataflowChoice>,
}

/// `POST /v1/sweep` — every dataflow's best tiling at one memory size
/// (mirrors `clb sweep`).
#[derive(Debug, Clone, Serialize)]
pub struct SweepResponse {
    /// Echo of the analyzed layer.
    pub layer: ConvLayer,
    /// Effective on-chip memory in KiB.
    pub mem_kib: f64,
    /// Eq. 15 practical bound, in bytes.
    pub bound_bytes: f64,
    /// The best dataflow × tiling (the paper's "found minimum").
    pub found_minimum: DataflowChoice,
    /// Per-dataflow results, in [`DataflowKind::ALL`] order.
    pub dataflows: Vec<SweepEntry>,
}

/// Handles `POST /v1/sweep`.
///
/// # Errors
///
/// [`ApiError`] on malformed or out-of-limit requests.
pub fn sweep_response(v: &Value) -> Result<String, ApiError> {
    let layer = LayerSpec::from_value(v)?.to_layer()?;
    let mem_kib = parse_mem_choice(v)?;
    let mem = OnChipMemory::from_kib(mem_kib);
    let dataflows = DataflowKind::ALL
        .iter()
        .map(|&kind| SweepEntry {
            kind,
            name: kind.name().to_string(),
            choice: search_dataflow(kind, &layer, mem),
        })
        .collect();
    render(&SweepResponse {
        layer,
        mem_kib,
        bound_bytes: comm_bound::dram_bound_bytes(&layer, mem),
        found_minimum: found_minimum(&layer, mem),
        dataflows,
    })
}

/// `POST /v1/plan` — plan → simulate → bound → energy for one layer on one
/// Table I implementation (mirrors `clb plan`; the report is the same
/// structure `clb --json` emits).
#[derive(Debug, Clone, Serialize)]
pub struct PlanResponse {
    /// Which Table I implementation analyzed the layer.
    pub implementation: usize,
    /// The full layer report.
    pub report: LayerReport,
}

/// The custom-architecture variant of [`PlanResponse`]: the same report,
/// echoing the full `arch` object instead of a Table I index. Preset
/// (`implem`) requests keep the exact pre-existing [`PlanResponse`] wire
/// bytes.
#[derive(Debug, Clone, Serialize)]
pub struct ArchPlanResponse {
    /// The custom architecture that analyzed the layer.
    pub arch: ArchConfig,
    /// The full layer report.
    pub report: LayerReport,
}

/// Handles `POST /v1/plan`.
///
/// # Errors
///
/// [`ApiError`] on malformed or out-of-limit requests, when no tiling of
/// the dataflow fits the implementation/architecture (422), or when a
/// requested trace exceeds the trace caps (422).
pub fn plan_response(v: &Value) -> Result<String, ApiError> {
    let layer = LayerSpec::from_value(v)?.to_layer()?;
    let choice = parse_arch_choice(v)?;
    let trace_request = parse_trace_request(v)?;
    let acc = Accelerator::new(choice.arch());
    let Some(trace_request) = trace_request else {
        let report = acc
            .analyze_layer("layer", &layer)
            .map_err(|e| ApiError::Unprocessable(e.to_string()))?;
        return match choice {
            ArchChoice::Implem(implem) => render(&PlanResponse {
                implementation: implem,
                report,
            }),
            ArchChoice::Custom(arch) => render(&ArchPlanResponse { arch, report }),
        };
    };
    let (report, trace) = acc
        .analyze_layer_traced("layer", &layer, &trace_request.options())
        .map_err(|e| ApiError::Unprocessable(e.to_string()))?;
    match choice {
        ArchChoice::Implem(implem) => render_traced(
            &PlanResponse {
                implementation: implem,
                report,
            },
            &trace_request,
            &trace,
        ),
        ArchChoice::Custom(arch) => {
            render_traced(&ArchPlanResponse { arch, report }, &trace_request, &trace)
        }
    }
}

/// `POST /v1/simulate` — the cycle simulator on an *explicit, user-supplied*
/// tiling (mirrors `clb simulate`). Unlike `/v1/plan`, which simulates the
/// planner's choice, this runs any `{b, z, y, x}` blocking the caller asks
/// for — what-if analysis of hand-rolled or externally-planned tilings.
///
/// Request: the layer-spec fields plus `implem` (default 1) and a required
/// `tiling` object `{"b": .., "z": .., "y": .., "x": ..}`. Zero or
/// oversized tiling dimensions are rejected with 422 *before* the block
/// grid is walked ([`Tiling::validate_for`]); structurally infeasible
/// tilings (GBuf overflow, unmappable blocks) also come back as 422 with
/// the simulator's own diagnosis.
#[derive(Debug, Clone, Serialize)]
pub struct SimulateResponse {
    /// Which Table I implementation ran the simulation.
    pub implementation: usize,
    /// Echo of the simulated layer.
    pub layer: ConvLayer,
    /// Echo of the simulated tiling.
    pub tiling: Tiling,
    /// Every counter the simulator collects.
    pub stats: SimStats,
    /// Total execution cycles (compute + unhidden stalls).
    pub total_cycles: u64,
    /// Execution time at the implementation's core clock.
    pub seconds: f64,
}

/// The custom-architecture variant of [`SimulateResponse`], echoing the
/// full `arch` object instead of a Table I index.
#[derive(Debug, Clone, Serialize)]
pub struct ArchSimulateResponse {
    /// The custom architecture that ran the simulation.
    pub arch: ArchConfig,
    /// Echo of the simulated layer.
    pub layer: ConvLayer,
    /// Echo of the simulated tiling.
    pub tiling: Tiling,
    /// Every counter the simulator collects.
    pub stats: SimStats,
    /// Total execution cycles (compute + unhidden stalls).
    pub total_cycles: u64,
    /// Execution time at the architecture's core clock.
    pub seconds: f64,
}

/// Handles `POST /v1/simulate`.
///
/// # Errors
///
/// [`ApiError`] on malformed or out-of-limit requests (400), and on
/// invalid architectures, invalid/zero tilings or simulation-infeasible
/// blockings (422).
pub fn simulate_response(v: &Value) -> Result<String, ApiError> {
    let layer = LayerSpec::from_value(v)?.to_layer()?;
    let choice = parse_arch_choice(v)?;
    let tiling: Tiling = require(v, "tiling")?;
    let trace_request = parse_trace_request(v)?;
    let arch = choice.arch();
    // `simulate` itself rejects zero/oversized tilings (InvalidTiling)
    // before touching the block grid; its diagnosis becomes the 422 body —
    // as does a trace request whose grid exceeds the trace caps
    // (`TraceTooLarge` names the cap, checked before any expansion is
    // allocated).
    let (stats, trace) = match &trace_request {
        None => (
            accel_sim::simulate(&layer, &tiling, &arch)
                .map_err(|e| ApiError::Unprocessable(e.to_string()))?,
            None,
        ),
        Some(request) => {
            let (stats, trace) =
                accel_sim::simulate_traced(&layer, &tiling, &arch, &request.options())
                    .map_err(|e| ApiError::Unprocessable(e.to_string()))?;
            (stats, Some(trace))
        }
    };
    match choice {
        ArchChoice::Implem(implem) => {
            let base = SimulateResponse {
                implementation: implem,
                layer,
                tiling,
                stats,
                total_cycles: stats.total_cycles(),
                seconds: stats.seconds(arch.core_freq_hz),
            };
            match (&trace_request, &trace) {
                (Some(request), Some(trace)) => render_traced(&base, request, trace),
                _ => render(&base),
            }
        }
        ArchChoice::Custom(arch) => {
            let base = ArchSimulateResponse {
                arch,
                layer,
                tiling,
                stats,
                total_cycles: stats.total_cycles(),
                seconds: stats.seconds(arch.core_freq_hz),
            };
            match (&trace_request, &trace) {
                (Some(request), Some(trace)) => render_traced(&base, request, trace),
                _ => render(&base),
            }
        }
    }
}

/// Builds the named workload at the given batch — the network vocabulary
/// shared by `/v1/network` and network-mode `/v1/dse` (and their CLI
/// mirrors), so the two endpoints can never accept different model names.
///
/// # Errors
///
/// [`ApiError::Unprocessable`] on an unknown name or an out-of-limit batch.
pub fn network_by_name(name: &str, batch: usize) -> Result<Network, ApiError> {
    if !(1..=limits::MAX_BATCH).contains(&batch) {
        return Err(ApiError::Unprocessable(format!(
            "batch must be 1..={}",
            limits::MAX_BATCH
        )));
    }
    match name {
        "vgg16" => Ok(workloads::vgg16(batch)),
        "alexnet" => Ok(workloads::alexnet(batch)),
        "resnet50" => Ok(workloads::resnet50(batch)),
        "inception" => Ok(workloads::inception_module(batch, 28, 192)),
        "fc" => Ok(workloads::fc_stack(batch)),
        other => Err(ApiError::Unprocessable(format!(
            "unknown network `{other}` \
             (vgg16|alexnet|resnet50|inception|fc, or a custom network object)"
        ))),
    }
}

const NETWORK_KEYS: [&str; 3] = ["name", "batch", "layers"];
const NETWORK_LAYER_KEYS: [&str; 9] = [
    "name", "co", "ci", "size", "h", "w", "kernel", "stride", "padding",
];

/// One parsed-but-not-yet-built layer of a custom network: every cap is
/// checked — and the MAC count computed, in `u128` — on these raw numbers
/// *before* a [`ConvLayer`] is constructed, so hostile dimensions can never
/// reach the builder's (or the model's) `usize`/`u64` arithmetic.
#[derive(Debug, Clone)]
struct NetLayerSpec {
    name: String,
    co: usize,
    ci: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: Padding,
}

impl NetLayerSpec {
    /// Parses `layers[index]` of a custom network object. Structural
    /// problems (wrong types, unknown fields, missing geometry) are 400s;
    /// every cap violation is a 422 naming the violated invariant, prefixed
    /// with the layer's position.
    fn from_value(v: &Value, index: usize) -> Result<Self, ApiError> {
        let at = |e: ApiError| e.prefixed(&format!("layers[{index}]"));
        let Value::Object(fields) = v else {
            return Err(ApiError::BadRequest(format!(
                "layers[{index}] must be a JSON object"
            )));
        };
        for (key, _) in fields {
            if !NETWORK_LAYER_KEYS.contains(&key.as_str()) {
                return Err(ApiError::BadRequest(format!(
                    "layers[{index}]: unknown layer field `{key}` (expected one of {})",
                    NETWORK_LAYER_KEYS.join(", ")
                )));
            }
        }
        let name: String = optional(v, "name", format!("conv{}", index + 1)).map_err(at)?;
        let co: usize = require(v, "co").map_err(at)?;
        let ci: usize = require(v, "ci").map_err(at)?;
        let size = get_field(v, "size")?.filter(|f| !matches!(f, Value::Null));
        let h_field = get_field(v, "h")?.filter(|f| !matches!(f, Value::Null));
        let w_field = get_field(v, "w")?.filter(|f| !matches!(f, Value::Null));
        let (h, w) = match (size, h_field.is_some() || w_field.is_some()) {
            (Some(_), true) => {
                return Err(ApiError::BadRequest(format!(
                    "layers[{index}]: specify either `size` or `h`/`w`, not both"
                )))
            }
            (Some(_), false) => {
                let s: usize = require(v, "size").map_err(at)?;
                (s, s)
            }
            (None, _) => {
                if h_field.is_none() || w_field.is_none() {
                    return Err(ApiError::BadRequest(format!(
                        "layers[{index}]: specify the input as `size` \
                         or as both `h` and `w`"
                    )));
                }
                (require(v, "h").map_err(at)?, require(v, "w").map_err(at)?)
            }
        };
        let kernel: usize = optional(v, "kernel", 3).map_err(at)?;
        let stride: usize = optional(v, "stride", 1).map_err(at)?;
        let padding = match get_field(v, "padding")? {
            None | Some(Value::Null) => Padding::same(kernel),
            Some(Value::String(s)) => match s.as_str() {
                "same" => Padding::same(kernel),
                "none" => Padding::none(),
                other => {
                    return Err(ApiError::Unprocessable(format!(
                        "layers[{index}]: unknown padding `{other}` \
                         (same|none|an explicit cell count)"
                    )))
                }
            },
            Some(n @ Value::Number(_)) => {
                let cells = usize::from_value(n).map_err(|e| {
                    ApiError::BadRequest(format!("layers[{index}]: field `padding`: {e}"))
                })?;
                Padding {
                    vertical: cells,
                    horizontal: cells,
                }
            }
            Some(_) => {
                return Err(ApiError::BadRequest(format!(
                    "layers[{index}]: `padding` must be \"same\", \"none\" \
                     or a non-negative integer"
                )))
            }
        };
        let spec = NetLayerSpec {
            name,
            co,
            ci,
            h,
            w,
            kernel,
            stride,
            padding,
        };
        spec.check_caps(index)?;
        Ok(spec)
    }

    /// The limits-style cap checks, each 422 naming the violated invariant.
    /// Runs before [`Self::macs_u128`] so the geometry arithmetic there is
    /// bounded, and before [`Self::build`] so no out-of-cap layer is ever
    /// constructed.
    fn check_caps(&self, index: usize) -> Result<(), ApiError> {
        let bad = |m: String| Err(ApiError::Unprocessable(format!("layers[{index}]: {m}")));
        if !(1..=limits::MAX_CHANNELS).contains(&self.co) {
            return bad(format!("co must be 1..={}", limits::MAX_CHANNELS));
        }
        if !(1..=limits::MAX_CHANNELS).contains(&self.ci) {
            return bad(format!("ci must be 1..={}", limits::MAX_CHANNELS));
        }
        if !(1..=limits::MAX_SIZE).contains(&self.h) || !(1..=limits::MAX_SIZE).contains(&self.w) {
            return bad(format!("input size must be 1..={}", limits::MAX_SIZE));
        }
        if !(1..=limits::MAX_KERNEL).contains(&self.kernel) {
            return bad(format!("kernel must be 1..={}", limits::MAX_KERNEL));
        }
        if !(1..=limits::MAX_STRIDE).contains(&self.stride) {
            return bad(format!("stride must be 1..={}", limits::MAX_STRIDE));
        }
        if self.padding.vertical > limits::MAX_KERNEL
            || self.padding.horizontal > limits::MAX_KERNEL
        {
            return bad(format!("padding must be ≤ {}", limits::MAX_KERNEL));
        }
        let k = self.kernel as u128;
        if k > self.h as u128 + 2 * self.padding.vertical as u128
            || k > self.w as u128 + 2 * self.padding.horizontal as u128
        {
            return bad("kernel does not fit the padded input".to_string());
        }
        Ok(())
    }

    /// Output extent along one axis, in `u128` (capped inputs make the
    /// subtraction safe — [`Self::check_caps`] ran first).
    fn out_extent(input: usize, pad: usize, kernel: usize, stride: usize) -> u128 {
        (input as u128 + 2 * pad as u128 - kernel as u128) / stride as u128 + 1
    }

    /// This layer's MAC count at the given batch, computed in `u128` from
    /// the raw request numbers — never through [`ConvLayer::macs`]'s `u64`
    /// arithmetic.
    fn macs_u128(&self, batch: usize) -> u128 {
        let oh = Self::out_extent(self.h, self.padding.vertical, self.kernel, self.stride);
        let ow = Self::out_extent(self.w, self.padding.horizontal, self.kernel, self.stride);
        batch as u128 * oh * ow * self.co as u128 * self.kernel as u128 * self.kernel as u128
            * self.ci as u128
    }

    /// Constructs the layer through [`ConvLayer::builder`] — the same path
    /// the presets use, so a custom layer equal to a preset layer is the
    /// *same* [`ConvLayer`] value.
    fn build(&self, batch: usize, index: usize) -> Result<ConvLayer, ApiError> {
        ConvLayer::builder()
            .batch(batch)
            .out_channels(self.co)
            .in_channels(self.ci)
            .input(self.h, self.w)
            .kernel(self.kernel, self.kernel)
            .stride(self.stride)
            .padding(self.padding)
            .build()
            .map_err(|e| ApiError::Unprocessable(format!("layers[{index}]: {e}")))
    }
}

/// Parses a full user-supplied network object — the custom alternative to a
/// preset name, accepted everywhere a preset is (`net` on `/v1/network`,
/// `target.network` on `/v1/dse`, `--net-json` on the CLI):
///
/// ```json
/// {"name": "my-net", "batch": 3,
///  "layers": [{"name": "conv1", "co": 64, "ci": 3, "size": 224},
///             {"co": 64, "ci": 64, "h": 224, "w": 224,
///              "kernel": 3, "stride": 1, "padding": "same"}]}
/// ```
///
/// Per layer, `size` (square) or `h`+`w` give the *input* extent; `kernel`
/// defaults to 3, `stride` to 1 and `padding` to `"same"` — the VGG-style
/// defaults — so a layer list equal to a preset's builds the identical
/// [`Network`] value and therefore byte-identical responses. Every cap
/// (layer count, per-layer dimensions, total MACs) is checked in `u128` on
/// the raw numbers *before* any [`ConvLayer`] is constructed; unknown
/// fields are rejected like [`arch_from_value`] rejects them, because with
/// every geometry field defaulted a typo would silently analyze a different
/// network.
///
/// Returns the network and its batch (the `batch` field lives inside the
/// object so the whole model is one value; default 3).
///
/// # Errors
///
/// [`ApiError::BadRequest`] on structural problems (non-object, unknown or
/// ill-typed fields, missing geometry); [`ApiError::Unprocessable`] on any
/// cap violation, naming the violated invariant.
pub fn network_from_value(v: &Value) -> Result<(Network, usize), ApiError> {
    let Value::Object(fields) = v else {
        return Err(ApiError::BadRequest(
            "a custom network must be a JSON object \
             {\"name\", \"batch\", \"layers\": [...]}"
                .to_string(),
        ));
    };
    for (key, _) in fields {
        if !NETWORK_KEYS.contains(&key.as_str()) {
            return Err(ApiError::BadRequest(format!(
                "unknown network field `{key}` (expected one of {})",
                NETWORK_KEYS.join(", ")
            )));
        }
    }
    let name: String = optional(v, "name", "custom".to_string())?;
    let batch: usize = optional(v, "batch", 3)?;
    if !(1..=limits::MAX_BATCH).contains(&batch) {
        return Err(ApiError::Unprocessable(format!(
            "batch must be 1..={}",
            limits::MAX_BATCH
        )));
    }
    let layers = match get_field(v, "layers")? {
        None | Some(Value::Null) => {
            return Err(ApiError::BadRequest(
                "missing required field `layers`".to_string(),
            ))
        }
        Some(Value::Array(layers)) => layers,
        Some(_) => {
            return Err(ApiError::BadRequest(
                "`layers` must be an array of layer objects".to_string(),
            ))
        }
    };
    if layers.is_empty() {
        return Err(ApiError::Unprocessable(
            "a custom network must have at least one layer".to_string(),
        ));
    }
    if layers.len() > network_caps::MAX_NETWORK_LAYERS {
        return Err(ApiError::Unprocessable(format!(
            "layer count {} exceeds the cap of {}",
            layers.len(),
            network_caps::MAX_NETWORK_LAYERS
        )));
    }
    let mut specs: Vec<NetLayerSpec> = Vec::with_capacity(layers.len());
    let mut total_macs: u128 = 0;
    for (index, layer) in layers.iter().enumerate() {
        let spec = NetLayerSpec::from_value(layer, index)?;
        total_macs += spec.macs_u128(batch);
        specs.push(spec);
    }
    if total_macs > network_caps::MAX_NETWORK_MACS {
        return Err(ApiError::Unprocessable(format!(
            "total MACs {} exceed the cap of {} (batch included)",
            total_macs,
            network_caps::MAX_NETWORK_MACS
        )));
    }
    let built: Vec<(String, ConvLayer)> = specs
        .iter()
        .enumerate()
        .map(|(index, s)| Ok((s.name.clone(), s.build(batch, index)?)))
        .collect::<Result<_, ApiError>>()?;
    Ok((Network::new(name, built), batch))
}

/// Handles `POST /v1/network` — whole-network analysis; the body is exactly
/// the [`NetworkReport`] JSON that `clb network --json` prints. `net` names
/// a preset (see [`network_by_name`]) or is a full custom network object
/// (see [`network_from_value`]); a custom layer list equal to a preset's
/// produces the byte-identical response.
///
/// # Errors
///
/// [`ApiError`] on malformed requests, unknown network names, custom
/// networks violating [`network_caps`], or unanalyzable layers (422).
pub fn network_response(v: &Value) -> Result<String, ApiError> {
    let (choice, net) = match get_field(v, "net")? {
        Some(custom @ Value::Object(_)) => {
            // The custom object carries its own batch; a second top-level
            // one would silently lose to it.
            if !matches!(get_field(v, "batch")?, None | Some(Value::Null)) {
                return Err(ApiError::BadRequest(
                    "a custom network object carries its own `batch`; \
                     drop the top-level `batch` field"
                        .to_string(),
                ));
            }
            // Same 4xx precedence as the preset path: arch before network.
            let choice = parse_arch_choice(v)?;
            let (net, _batch) = network_from_value(custom)?;
            (choice, net)
        }
        _ => {
            let name: String = optional(v, "net", "vgg16".to_string())?;
            let batch: usize = optional(v, "batch", 3)?;
            // Pre-existing 4xx precedence, pinned by clients: batch range
            // first, then the arch object, then the network name
            // (network_by_name re-checks the batch, harmlessly).
            if !(1..=limits::MAX_BATCH).contains(&batch) {
                return Err(ApiError::Unprocessable(format!(
                    "batch must be 1..={}",
                    limits::MAX_BATCH
                )));
            }
            let choice = parse_arch_choice(v)?;
            let net = network_by_name(&name, batch)?;
            (choice, net)
        }
    };
    // The body is the bare `NetworkReport` either way (it never echoed the
    // implementation index), so preset requests keep their exact bytes.
    let report: NetworkReport = Accelerator::new(choice.arch())
        .analyze_network(&net)
        .map_err(|e| ApiError::Unprocessable(e.to_string()))?;
    render(&report)
}

/// One candidate's entry in a [`DseResponse`]: the architecture plus either
/// the full plan/simulate/bound/energy report (with its headline cycle
/// count pulled up) or the typed reason the candidate cannot run the layer.
#[derive(Debug, Clone, Serialize)]
pub struct DseEntry {
    /// The evaluated candidate architecture.
    pub arch: ArchConfig,
    /// Total execution cycles, `null` when infeasible.
    pub total_cycles: Option<u64>,
    /// Execution time at the candidate's core clock, `null` when infeasible.
    pub seconds: Option<f64>,
    /// The full layer report — exactly what `/v1/plan` returns for this
    /// `arch` — or `null` when infeasible.
    pub report: Option<LayerReport>,
    /// Why the candidate cannot run the layer, `null` when feasible.
    pub error: Option<String>,
}

/// `POST /v1/dse` — a capped candidate-architecture sweep over one layer
/// (the custom-design what-if engine; mirrors `clb dse`).
///
/// Results are sorted canonically (feasible first by cycles, traffic, then
/// the architecture's total order) and duplicates are collapsed, so the
/// response is byte-identical no matter how the request enumerated its
/// candidates.
#[derive(Debug, Clone, Serialize)]
pub struct DseResponse {
    /// Echo of the analyzed layer.
    pub layer: ConvLayer,
    /// Candidates named by the request (before deduplication).
    pub submitted: usize,
    /// Distinct candidates evaluated.
    pub unique: usize,
    /// How many candidates can run the layer.
    pub feasible: usize,
    /// Per-candidate results, canonically ordered.
    pub results: Vec<DseEntry>,
}

/// One candidate's entry in a [`DseNetworkResponse`]: the architecture plus
/// either the full per-network report (per-layer plans, simulated
/// cycles/traffic/utilization and aggregated totals — exactly what
/// `/v1/network` returns for this `arch`) or the typed reason the candidate
/// cannot run the model.
#[derive(Debug, Clone, Serialize)]
pub struct DseNetworkEntry {
    /// The evaluated candidate architecture.
    pub arch: ArchConfig,
    /// Total execution cycles over all layers, `null` when infeasible.
    pub total_cycles: Option<u64>,
    /// End-to-end execution time at the candidate's core clock, `null`
    /// when infeasible.
    pub seconds: Option<f64>,
    /// The full network report — exactly what `/v1/network` returns for
    /// this `arch` — or `null` when infeasible.
    pub report: Option<NetworkReport>,
    /// Why the candidate cannot run the model, `null` when feasible.
    pub error: Option<String>,
}

/// Network-mode `POST /v1/dse` — a capped candidate-architecture sweep over
/// a full model (`"target": {"network": ...}` instead of layer fields).
///
/// Same contract as layer mode: duplicates collapse, results are sorted by
/// the canonical `(feasible, total cycles, DRAM words, architecture order)`
/// key, and each candidate's report is bit-identical to the serial
/// `/v1/network` response for that architecture.
#[derive(Debug, Clone, Serialize)]
pub struct DseNetworkResponse {
    /// The analyzed model's display name (as `/v1/network` echoes it).
    pub network: String,
    /// The analyzed batch size.
    pub batch: usize,
    /// Candidates named by the request (before deduplication).
    pub submitted: usize,
    /// Distinct candidates evaluated.
    pub unique: usize,
    /// How many candidates can run the model.
    pub feasible: usize,
    /// Per-candidate results, canonically ordered.
    pub results: Vec<DseNetworkEntry>,
}

/// What a `/v1/dse` request sweeps its candidates over: one layer (the
/// layer-spec fields at the top level, the original mode) or a full model
/// (`"target": {"network": "vgg16", "batch": 3}`).
#[derive(Debug, Clone)]
pub enum DseTarget {
    /// A single layer, from the usual top-level layer-spec fields.
    Layer(ConvLayer),
    /// A full model at a batch size — a preset by name or a custom layer
    /// list.
    Network {
        /// The workload (see [`network_by_name`] / [`network_from_value`]).
        net: Network,
        /// The analyzed batch size (echoed in the response).
        batch: usize,
    },
}

/// Parses the sweep target of a `/v1/dse` request: the `target` object when
/// present, the top-level layer-spec fields otherwise. Mixing the two is
/// rejected — a request that names a network *and* spells out layer fields
/// is ambiguous about what it wants swept.
fn parse_dse_target(v: &Value) -> Result<DseTarget, ApiError> {
    let target = get_field(v, "target")?.filter(|f| !matches!(f, Value::Null));
    let Some(t) = target else {
        return Ok(DseTarget::Layer(LayerSpec::from_value(v)?.to_layer()?));
    };
    for name in ["co", "size", "ci", "k", "stride", "batch"] {
        if !matches!(get_field(v, name)?, None | Some(Value::Null)) {
            return Err(ApiError::BadRequest(format!(
                "specify either `target` or the layer field `{name}`, not both"
            )));
        }
    }
    let Value::Object(fields) = t else {
        return Err(ApiError::BadRequest(
            "`target` must be a JSON object".to_string(),
        ));
    };
    // A typoed field would silently sweep the default model — reject it.
    for (key, _) in fields {
        if key != "network" && key != "batch" {
            return Err(ApiError::BadRequest(format!(
                "unknown target field `{key}` (expected network, batch)"
            )));
        }
    }
    if let Some(custom @ Value::Object(_)) = get_field(t, "network")? {
        // As on `/v1/network`: the custom object carries its own batch.
        if !matches!(get_field(t, "batch")?, None | Some(Value::Null)) {
            return Err(ApiError::BadRequest(
                "a custom network object carries its own `batch`; \
                 drop `target.batch`"
                    .to_string(),
            ));
        }
        let (net, batch) =
            network_from_value(custom).map_err(|e| e.prefixed("target.network"))?;
        return Ok(DseTarget::Network { net, batch });
    }
    let name: String = require(t, "network")?;
    let batch: usize = optional(t, "batch", 3)?;
    let net = network_by_name(&name, batch)?;
    Ok(DseTarget::Network { net, batch })
}

/// The network-mode sweep behind `/v1/dse`, exposed so `clb dse --net`
/// renders the byte-identical structure: evaluates the (already validated)
/// candidates through [`clb_core::sweep_archs_network`] — deduplicated,
/// `(candidate × layer)` thread-fanned, plan-cache amortized — and shapes
/// the canonical response.
#[must_use]
pub fn dse_network_results(
    net: &Network,
    batch: usize,
    submitted: usize,
    archs: &[ArchConfig],
) -> DseNetworkResponse {
    let entries = clb_core::sweep_archs_network(net, archs);
    let results: Vec<DseNetworkEntry> = entries
        .into_iter()
        .map(|e| match e.outcome {
            Ok(report) => DseNetworkEntry {
                arch: e.arch,
                total_cycles: Some(report.totals.total_cycles()),
                seconds: Some(report.seconds),
                report: Some(report),
                error: None,
            },
            Err(err) => DseNetworkEntry {
                arch: e.arch,
                total_cycles: None,
                seconds: None,
                report: None,
                error: Some(err.to_string()),
            },
        })
        .collect();
    DseNetworkResponse {
        network: net.name().to_string(),
        batch,
        submitted,
        unique: results.len(),
        feasible: results.iter().filter(|r| r.report.is_some()).count(),
        results,
    }
}

/// The grid axes `/v1/dse` accepts (every sized `ArchConfig` field, in
/// [`archs_from_axes`] order); the clock and DRAM model come from the
/// grid's `base`.
pub const GRID_AXES: [&str; 9] = [
    "pe_rows",
    "pe_cols",
    "group_rows",
    "group_cols",
    "lreg_entries_per_pe",
    "igbuf_entries",
    "wgbuf_entries",
    "greg_bytes",
    "greg_segment_entries",
];

/// Expands per-field value lists (in [`GRID_AXES`] order) into validated
/// candidate architectures over `base` (which supplies the clock and DRAM
/// model), capped at [`limits::MAX_DSE_CANDIDATES`]. Shared by the
/// `/v1/dse` grid path and `clb dse`, so the CLI and the service can never
/// disagree on which field an axis sweeps.
///
/// # Errors
///
/// [`ApiError::Unprocessable`] on empty axes, over-cap cardinality
/// (checked before expansion) and candidates violating
/// [`ArchConfig::validate`] (naming the candidate and the invariant).
pub fn archs_from_axes(
    axes: &[Vec<usize>; 9],
    base: &ArchConfig,
) -> Result<Vec<ArchConfig>, ApiError> {
    archs_from_axes_capped(axes, base, limits::MAX_DSE_CANDIDATES)
}

/// [`archs_from_axes`] under the staged candidate budget
/// ([`limits::MAX_DSE_STAGED_CANDIDATES`]) — the grid expansion behind
/// `clb dse --objective ...`, where the bound stage makes million-point
/// grids affordable.
///
/// # Errors
///
/// Exactly [`archs_from_axes`]'s, with the larger cap.
pub fn archs_from_axes_staged(
    axes: &[Vec<usize>; 9],
    base: &ArchConfig,
) -> Result<Vec<ArchConfig>, ApiError> {
    archs_from_axes_capped(axes, base, limits::MAX_DSE_STAGED_CANDIDATES)
}

/// [`archs_from_axes`] with an explicit candidate budget — when a request
/// also carries an explicit `candidates` list, the grid only gets whatever
/// the list left under [`limits::MAX_DSE_CANDIDATES`].
fn archs_from_axes_capped(
    axes: &[Vec<usize>; 9],
    base: &ArchConfig,
    cap: usize,
) -> Result<Vec<ArchConfig>, ApiError> {
    let points = dataflow::grid_points(axes, cap)
        .map_err(|e| ApiError::Unprocessable(format!("grid: {e}")))?;
    points
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let arch = ArchConfig {
                pe_rows: p[0],
                pe_cols: p[1],
                group_rows: p[2],
                group_cols: p[3],
                lreg_entries_per_pe: p[4],
                igbuf_entries: p[5],
                wgbuf_entries: p[6],
                greg_bytes: p[7],
                greg_segment_entries: p[8],
                core_freq_hz: base.core_freq_hz,
                dram: base.dram,
            };
            arch.validate().map_err(|m| {
                ApiError::Unprocessable(format!("grid candidate #{i}: invalid arch: {m}"))
            })?;
            Ok(arch)
        })
        .collect()
}

fn archs_from_grid(grid: &Value, cap: usize) -> Result<Vec<ArchConfig>, ApiError> {
    let Value::Object(fields) = grid else {
        return Err(ApiError::BadRequest(
            "`grid` must be a JSON object of axis lists".to_string(),
        ));
    };
    // A typoed axis name would silently sweep nothing — reject it.
    for (key, _) in fields {
        if key != "base" && !GRID_AXES.contains(&key.as_str()) {
            return Err(ApiError::BadRequest(format!(
                "unknown grid axis `{key}` (expected base or one of {})",
                GRID_AXES.join(", ")
            )));
        }
    }
    let base = match get_field(grid, "base")? {
        None | Some(Value::Null) => ArchConfig::implementation(1),
        Some(b) => arch_from_value(b).map_err(|e| e.prefixed("grid.base"))?,
    };
    let base_axis = |f: fn(&ArchConfig) -> usize| vec![f(&base)];
    let mut axes: [Vec<usize>; 9] = [
        base_axis(|a| a.pe_rows),
        base_axis(|a| a.pe_cols),
        base_axis(|a| a.group_rows),
        base_axis(|a| a.group_cols),
        base_axis(|a| a.lreg_entries_per_pe),
        base_axis(|a| a.igbuf_entries),
        base_axis(|a| a.wgbuf_entries),
        base_axis(|a| a.greg_bytes),
        base_axis(|a| a.greg_segment_entries),
    ];
    for (i, name) in GRID_AXES.iter().enumerate() {
        if let Some(field) = get_field(grid, name)? {
            if !matches!(field, Value::Null) {
                axes[i] = Vec::<usize>::from_value(field).map_err(|e| {
                    ApiError::BadRequest(format!("grid axis `{name}`: {e} (expected a list)"))
                })?;
            }
        }
    }
    archs_from_axes_capped(&axes, &base, cap)
}

fn archs_from_explicit_list(list: &Value, cap: usize) -> Result<Vec<ArchConfig>, ApiError> {
    let items = list.as_array().map_err(|_| {
        ApiError::BadRequest("`candidates` must be an array of arch objects".to_string())
    })?;
    if items.is_empty() {
        return Err(ApiError::Unprocessable(
            "`candidates` must name at least one architecture".to_string(),
        ));
    }
    if items.len() > cap {
        return Err(ApiError::Unprocessable(format!(
            "{} candidates exceed the {} cap",
            items.len(),
            cap
        )));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| arch_from_value(item).map_err(|e| e.prefixed(&format!("candidates[{i}]"))))
        .collect()
}

/// Parses the candidate set of a `/v1/dse` request: an explicit
/// `candidates` list of arch objects, a `grid` of axis lists over a `base`
/// architecture, or **both** — the union, with the grid's budget reduced by
/// the list's length so the combined request stays under `cap`
/// ([`limits::MAX_DSE_CANDIDATES`] on the legacy path,
/// [`limits::MAX_DSE_STAGED_CANDIDATES`] when the request is staged). A
/// candidate named by both forms is one candidate: the sweep dedups by the
/// architecture's total order, so it is planned and simulated exactly once.
fn parse_dse_candidates(v: &Value, cap: usize) -> Result<Vec<ArchConfig>, ApiError> {
    let explicit = get_field(v, "candidates")?.filter(|f| !matches!(f, Value::Null));
    let grid = get_field(v, "grid")?.filter(|f| !matches!(f, Value::Null));
    match (explicit, grid) {
        (None, None) => Err(ApiError::BadRequest(
            "missing `candidates` (list of arch objects) or `grid` (axis lists)".to_string(),
        )),
        (Some(list), None) => archs_from_explicit_list(list, cap),
        (None, Some(g)) => archs_from_grid(g, cap),
        (Some(list), Some(g)) => {
            let mut archs = archs_from_explicit_list(list, cap)?;
            let remaining = cap - archs.len();
            archs.extend(archs_from_grid(g, remaining)?);
            Ok(archs)
        }
    }
}

/// The sweep behind `/v1/dse`, exposed so `clb dse --json` renders the
/// byte-identical structure: evaluates the (already validated) candidates
/// through [`clb_core::sweep_archs`] — deduplicated, thread-fanned,
/// plan-cache amortized — and shapes the canonical response.
#[must_use]
pub fn dse_results(layer: &ConvLayer, submitted: usize, archs: &[ArchConfig]) -> DseResponse {
    let entries = clb_core::sweep_archs("layer", layer, archs);
    let results: Vec<DseEntry> = entries
        .into_iter()
        .map(|e| match e.outcome {
            Ok(report) => DseEntry {
                arch: e.arch,
                total_cycles: Some(report.stats.total_cycles()),
                seconds: Some(report.stats.seconds(e.arch.core_freq_hz)),
                report: Some(report),
                error: None,
            },
            Err(err) => DseEntry {
                arch: e.arch,
                total_cycles: None,
                seconds: None,
                report: None,
                error: Some(err.to_string()),
            },
        })
        .collect();
    DseResponse {
        layer: *layer,
        submitted,
        unique: results.len(),
        feasible: results.iter().filter(|r| r.report.is_some()).count(),
        results,
    }
}

/// How a staged `/v1/dse` request wants its results delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// One synchronous JSON response (the default, and what
    /// `"stream": false` spells).
    Sync,
    /// `Transfer-Encoding: chunked`: one single-line frontier snapshot per
    /// improvement, then the full response as the final chunk
    /// (`"stream": true` or `"stream": "chunked"`).
    Chunked,
    /// A resumable job handle: the POST answers immediately with an
    /// acceptance body and `GET /v1/dse/jobs/{id}` polls the sweep
    /// (`"stream": "job"`).
    Job,
}

/// The staged-sweep options of a `/v1/dse` request (`objective`, `top_k`,
/// `stream`). Parsed to `None` when the request carries none of them — the
/// legacy capped-batch path, whose wire bytes are pinned by the golden
/// corpus and must stay untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedOptions {
    /// Ranking objective for the kept frontier.
    pub objective: Objective,
    /// Frontier size, `1..=`[`limits::MAX_DSE_TOP_K`].
    pub top_k: usize,
    /// Delivery transport.
    pub stream: StreamMode,
}

impl Default for StagedOptions {
    fn default() -> Self {
        StagedOptions {
            objective: Objective::Cycles,
            top_k: limits::DEFAULT_DSE_TOP_K,
            stream: StreamMode::Sync,
        }
    }
}

/// Parses the staged fields of a `/v1/dse` body. Absent or `null` fields
/// fall back to defaults; when *all three* are absent the request is a
/// legacy sweep and `Ok(None)` is returned. Wrong JSON types are 400s,
/// well-typed but unknown values (an unrecognized objective or stream
/// mode, an out-of-range `top_k`) are 422s.
///
/// # Errors
///
/// [`ApiError::BadRequest`] / [`ApiError::Unprocessable`] as above.
pub fn parse_staged_options(v: &Value) -> Result<Option<StagedOptions>, ApiError> {
    let objective = get_field(v, "objective")?.filter(|f| !matches!(f, Value::Null));
    let top_k = get_field(v, "top_k")?.filter(|f| !matches!(f, Value::Null));
    let stream = get_field(v, "stream")?.filter(|f| !matches!(f, Value::Null));
    if objective.is_none() && top_k.is_none() && stream.is_none() {
        return Ok(None);
    }
    let objective = match objective {
        None => Objective::Cycles,
        Some(Value::String(name)) => Objective::parse(name).ok_or_else(|| {
            ApiError::Unprocessable(format!(
                "unknown objective `{name}` (expected cycles, traffic, energy or pareto)"
            ))
        })?,
        Some(_) => {
            return Err(ApiError::BadRequest(
                "field `objective` must be a string (cycles, traffic, energy or pareto)"
                    .to_string(),
            ))
        }
    };
    let top_k = match top_k {
        None => limits::DEFAULT_DSE_TOP_K,
        Some(field) => {
            let k = usize::from_value(field)
                .map_err(|e| ApiError::BadRequest(format!("field `top_k`: {e}")))?;
            if !(1..=limits::MAX_DSE_TOP_K).contains(&k) {
                return Err(ApiError::Unprocessable(format!(
                    "top_k must be between 1 and {}",
                    limits::MAX_DSE_TOP_K
                )));
            }
            k
        }
    };
    let stream = match stream {
        None | Some(Value::Bool(false)) => StreamMode::Sync,
        Some(Value::Bool(true)) => StreamMode::Chunked,
        Some(Value::String(mode)) => match mode.as_str() {
            "chunked" => StreamMode::Chunked,
            "job" => StreamMode::Job,
            other => {
                return Err(ApiError::Unprocessable(format!(
                    "unknown stream mode `{other}` (expected chunked or job)"
                )))
            }
        },
        Some(_) => {
            return Err(ApiError::BadRequest(
                "field `stream` must be a bool or a string (chunked, job)".to_string(),
            ))
        }
    };
    Ok(Some(StagedOptions {
        objective,
        top_k,
        stream,
    }))
}

/// A cheap, non-validating peek at a `/v1/dse` body's `stream` field, used
/// by the server to pick a transport *before* dispatch. Values the full
/// parser would reject fall through as [`StreamMode::Sync`] and receive
/// their typed error from the normal dispatch path.
#[must_use]
pub fn stream_mode_hint(v: &Value) -> StreamMode {
    match get_field(v, "stream") {
        Ok(Some(Value::Bool(true))) => StreamMode::Chunked,
        Ok(Some(Value::String(s))) if s == "chunked" => StreamMode::Chunked,
        Ok(Some(Value::String(s))) if s == "job" => StreamMode::Job,
        _ => StreamMode::Sync,
    }
}

/// The `/v1/dse` request-log fields (`candidates= pruned= kept=
/// objective=`), produced alongside the response and cached with it so
/// coalesced and cache-hit requests log the same sweep funnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DseLogMeta {
    /// Candidates named by the request (before deduplication).
    pub candidates: usize,
    /// Candidates discarded by the bound stage (always 0 on the legacy
    /// path, and on a job acceptance — the job logs its pruning when
    /// polled into the stats counters instead).
    pub pruned: u64,
    /// Result entries returned (the frontier size on the staged path, all
    /// unique candidates on the legacy path, 0 on a job acceptance).
    pub kept: usize,
    /// Ranking objective; `None` on the legacy path, logged as `-`.
    pub objective: Option<Objective>,
}

impl DseLogMeta {
    /// The `objective=` log-field spelling.
    #[must_use]
    pub fn objective_str(&self) -> &'static str {
        self.objective.map_or("-", Objective::as_str)
    }
}

/// Layer-mode staged `/v1/dse` response: the bound-pruned,
/// objective-ranked frontier. Unlike the legacy [`DseResponse`] there is
/// no `feasible` count — pruned candidates are never planned, so global
/// feasibility is unknowable by design; the funnel counters (`submitted →
/// unique → pruned`/`evaluated` → `kept`) replace it.
#[derive(Debug, Clone, Serialize)]
pub struct DseStagedResponse {
    /// Echo of the analyzed layer.
    pub layer: ConvLayer,
    /// Ranking objective.
    pub objective: String,
    /// Requested frontier size.
    pub top_k: usize,
    /// Candidates named by the request (before deduplication).
    pub submitted: usize,
    /// Distinct candidates staged.
    pub unique: usize,
    /// Candidates discarded by the admissible bound stage. Lossless: a
    /// pruned candidate provably cannot enter the kept frontier.
    pub pruned: u64,
    /// Candidates actually planned and simulated.
    pub evaluated: u64,
    /// Frontier entries returned (`≤ top_k`).
    pub kept: usize,
    /// The kept frontier, ranked by the objective.
    pub results: Vec<DseEntry>,
}

/// Network-mode counterpart of [`DseStagedResponse`].
#[derive(Debug, Clone, Serialize)]
pub struct DseStagedNetworkResponse {
    /// The swept workload's name.
    pub network: String,
    /// The analyzed batch size.
    pub batch: usize,
    /// Ranking objective.
    pub objective: String,
    /// Requested frontier size.
    pub top_k: usize,
    /// Candidates named by the request (before deduplication).
    pub submitted: usize,
    /// Distinct candidates staged.
    pub unique: usize,
    /// Candidates discarded by the admissible bound stage.
    pub pruned: u64,
    /// Candidates actually planned and simulated.
    pub evaluated: u64,
    /// Frontier entries returned (`≤ top_k`).
    pub kept: usize,
    /// The kept frontier, ranked by the objective.
    pub results: Vec<DseNetworkEntry>,
}

fn layer_entry(e: ArchSweepEntry<LayerReport>) -> DseEntry {
    match e.outcome {
        Ok(report) => DseEntry {
            arch: e.arch,
            total_cycles: Some(report.stats.total_cycles()),
            seconds: Some(report.stats.seconds(e.arch.core_freq_hz)),
            report: Some(report),
            error: None,
        },
        Err(err) => DseEntry {
            arch: e.arch,
            total_cycles: None,
            seconds: None,
            report: None,
            error: Some(err.to_string()),
        },
    }
}

fn network_entry(e: ArchSweepEntry<NetworkReport>) -> DseNetworkEntry {
    match e.outcome {
        Ok(report) => DseNetworkEntry {
            arch: e.arch,
            total_cycles: Some(report.totals.total_cycles()),
            seconds: Some(report.seconds),
            report: Some(report),
            error: None,
        },
        Err(err) => DseNetworkEntry {
            arch: e.arch,
            total_cycles: None,
            seconds: None,
            report: None,
            error: Some(err.to_string()),
        },
    }
}

/// The staged layer-mode sweep behind `/v1/dse`, exposed so `clb dse
/// --objective` renders the byte-identical structure: bound-prunes through
/// [`clb_core::staged_sweep_archs`] and shapes the ranked frontier.
/// `progress` observes every frontier improvement (the chunked transport
/// and job polling are built on it); pass `|_| {}` when not streaming.
pub fn dse_staged_results(
    layer: &ConvLayer,
    submitted: usize,
    archs: &[ArchConfig],
    objective: Objective,
    top_k: usize,
    progress: impl FnMut(StagedProgress<'_, LayerReport>),
) -> DseStagedResponse {
    let outcome = clb_core::staged_sweep_archs("layer", layer, archs, objective, top_k, progress);
    let results: Vec<DseEntry> = outcome.entries.into_iter().map(layer_entry).collect();
    DseStagedResponse {
        layer: *layer,
        objective: objective.as_str().to_string(),
        top_k,
        submitted,
        unique: outcome.unique,
        pruned: outcome.pruned,
        evaluated: outcome.evaluated,
        kept: results.len(),
        results,
    }
}

/// Network-mode counterpart of [`dse_staged_results`].
pub fn dse_staged_network_results(
    net: &Network,
    batch: usize,
    submitted: usize,
    archs: &[ArchConfig],
    objective: Objective,
    top_k: usize,
    progress: impl FnMut(StagedProgress<'_, NetworkReport>),
) -> DseStagedNetworkResponse {
    let outcome = clb_core::staged_sweep_archs_network(net, archs, objective, top_k, progress);
    let results: Vec<DseNetworkEntry> = outcome.entries.into_iter().map(network_entry).collect();
    DseStagedNetworkResponse {
        network: net.name().to_string(),
        batch,
        objective: objective.as_str().to_string(),
        top_k,
        submitted,
        unique: outcome.unique,
        pruned: outcome.pruned,
        evaluated: outcome.evaluated,
        kept: results.len(),
        results,
    }
}

fn dse_staged_sync(v: &Value, opts: StagedOptions) -> Result<(String, DseLogMeta), ApiError> {
    let target = parse_dse_target(v)?;
    let archs = parse_dse_candidates(v, limits::MAX_DSE_STAGED_CANDIDATES)?;
    match target {
        DseTarget::Layer(layer) => {
            let resp = dse_staged_results(
                &layer,
                archs.len(),
                &archs,
                opts.objective,
                opts.top_k,
                |_| {},
            );
            let meta = DseLogMeta {
                candidates: resp.submitted,
                pruned: resp.pruned,
                kept: resp.kept,
                objective: Some(opts.objective),
            };
            Ok((render(&resp)?, meta))
        }
        DseTarget::Network { net, batch } => {
            let resp = dse_staged_network_results(
                &net,
                batch,
                archs.len(),
                &archs,
                opts.objective,
                opts.top_k,
                |_| {},
            );
            let meta = DseLogMeta {
                candidates: resp.submitted,
                pruned: resp.pruned,
                kept: resp.kept,
                objective: Some(opts.objective),
            };
            Ok((render(&resp)?, meta))
        }
    }
}

/// One frontier snapshot as a single line of compact JSON (newline
/// terminated), so a chunked-transport client can parse improvement
/// events line by line before the final pretty-printed body arrives.
fn snapshot_line<R: SweepCost>(p: &StagedProgress<'_, R>, top_k: usize) -> Option<String> {
    let frontier: Vec<Value> = p
        .frontier
        .iter()
        .take(top_k)
        .map(|e| {
            let cycles = match &e.outcome {
                Ok(report) => Value::Number(report.sweep_cycles() as f64),
                Err(_) => Value::Null,
            };
            Value::Object(vec![
                ("arch".to_string(), e.arch.to_value()),
                ("total_cycles".to_string(), cycles),
            ])
        })
        .collect();
    let snapshot = Value::Object(vec![
        ("processed".to_string(), Value::Number(p.processed as f64)),
        ("pruned".to_string(), Value::Number(p.pruned as f64)),
        ("kept".to_string(), Value::Number(frontier.len() as f64)),
        ("frontier".to_string(), Value::Array(frontier)),
    ]);
    serde_json::to_string(&snapshot).ok().map(|s| s + "\n")
}

/// The chunked-transport staged sweep. The whole request is validated
/// *before* the first emission, so every error surfaces while the server
/// can still answer with a plain status line; after that, `emit` receives
/// one single-line JSON frontier snapshot per improvement and, last, the
/// exact body the synchronous staged path would have returned — the final
/// chunk of a stream is byte-identical to the `"stream": false` response.
///
/// # Errors
///
/// Everything [`dse_response`] raises, all before the first `emit` call
/// (the final-body render is the lone post-emission fallible step and
/// cannot fail for shapes that already rendered snapshot lines).
pub fn dse_staged_stream(v: &Value, emit: &mut dyn FnMut(&str)) -> Result<DseLogMeta, ApiError> {
    let opts = parse_staged_options(v)?.unwrap_or(StagedOptions {
        stream: StreamMode::Chunked,
        ..StagedOptions::default()
    });
    let target = parse_dse_target(v)?;
    let archs = parse_dse_candidates(v, limits::MAX_DSE_STAGED_CANDIDATES)?;
    match target {
        DseTarget::Layer(layer) => {
            let resp = dse_staged_results(
                &layer,
                archs.len(),
                &archs,
                opts.objective,
                opts.top_k,
                |p| {
                    if let Some(line) = snapshot_line(&p, opts.top_k) {
                        emit(&line);
                    }
                },
            );
            let meta = DseLogMeta {
                candidates: resp.submitted,
                pruned: resp.pruned,
                kept: resp.kept,
                objective: Some(opts.objective),
            };
            emit(&render(&resp)?);
            Ok(meta)
        }
        DseTarget::Network { net, batch } => {
            let resp = dse_staged_network_results(
                &net,
                batch,
                archs.len(),
                &archs,
                opts.objective,
                opts.top_k,
                |p| {
                    if let Some(line) = snapshot_line(&p, opts.top_k) {
                        emit(&line);
                    }
                },
            );
            let meta = DseLogMeta {
                candidates: resp.submitted,
                pruned: resp.pruned,
                kept: resp.kept,
                objective: Some(opts.objective),
            };
            emit(&render(&resp)?);
            Ok(meta)
        }
    }
}

/// [`dse_staged_stream`] collected into a chunk list — what the fixtures,
/// tests and `clb dse --stream` consume; the server writes the same chunks
/// straight to the socket as `Transfer-Encoding: chunked` frames.
///
/// # Errors
///
/// Exactly [`dse_staged_stream`]'s.
pub fn dse_stream_chunks(v: &Value) -> Result<Vec<String>, ApiError> {
    let mut chunks = Vec::new();
    dse_staged_stream(v, &mut |chunk| chunks.push(chunk.to_string()))?;
    Ok(chunks)
}

fn canonical_value(v: &Value) -> Value {
    match v {
        Value::Object(fields) => {
            let mut sorted: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, val)| (k.clone(), canonical_value(val)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        Value::Array(items) => Value::Array(items.iter().map(canonical_value).collect()),
        other => other.clone(),
    }
}

/// The deterministic job id of a job-mode `/v1/dse` request: 16 hex digits
/// of FNV-1a 64 over the canonicalized (recursively key-sorted, compact)
/// request body. Identical requests — whatever their key order — name the
/// same job, which is what makes re-POSTing an accepted job idempotent.
///
/// # Errors
///
/// [`ApiError::Internal`] if the body cannot be re-serialized (cannot
/// happen for a value that parsed).
pub fn dse_job_id(v: &Value) -> Result<String, ApiError> {
    let canonical = serde_json::to_string(&canonical_value(v))
        .map_err(|e| ApiError::Internal(format!("unrenderable job body: {e}")))?;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in "/v1/dse ".bytes().chain(canonical.bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    Ok(format!("{hash:016x}"))
}

/// A validated, not-yet-run job-mode `/v1/dse` request: everything the
/// server needs to accept the job immediately and run the staged sweep on
/// a background thread. Constructed by [`prepare_dse_job`].
pub struct DseJobSpec {
    /// The deterministic job id (see [`dse_job_id`]).
    pub id: String,
    target: DseTarget,
    archs: Vec<ArchConfig>,
    submitted: usize,
    objective: Objective,
    top_k: usize,
}

/// Validates a job-mode `/v1/dse` request end to end — staged options,
/// target, candidate expansion — *without* running the sweep, so a bad
/// request is rejected before a job is ever registered.
///
/// # Errors
///
/// Exactly [`dse_response`]'s validation errors.
pub fn prepare_dse_job(v: &Value) -> Result<DseJobSpec, ApiError> {
    let opts = parse_staged_options(v)?.unwrap_or(StagedOptions {
        stream: StreamMode::Job,
        ..StagedOptions::default()
    });
    let target = parse_dse_target(v)?;
    let archs = parse_dse_candidates(v, limits::MAX_DSE_STAGED_CANDIDATES)?;
    Ok(DseJobSpec {
        id: dse_job_id(v)?,
        submitted: archs.len(),
        target,
        archs,
        objective: opts.objective,
        top_k: opts.top_k,
    })
}

impl DseJobSpec {
    /// The poll path of this job.
    #[must_use]
    pub fn poll_path(&self) -> String {
        format!("/v1/dse/jobs/{}", self.id)
    }

    /// The deterministic acceptance body the POST answers immediately.
    #[must_use]
    pub fn acceptance_body(&self) -> String {
        let body = Value::Object(vec![
            ("job".to_string(), Value::String(self.id.clone())),
            ("status".to_string(), Value::String("accepted".to_string())),
            ("poll".to_string(), Value::String(self.poll_path())),
        ]);
        serde_json::to_string_pretty(&body).unwrap_or_default()
    }

    /// The request-log fields of the acceptance response.
    #[must_use]
    pub fn meta(&self) -> DseLogMeta {
        DseLogMeta {
            candidates: self.submitted,
            pruned: 0,
            kept: 0,
            objective: Some(self.objective),
        }
    }

    /// Runs the sweep to completion, reporting `(processed, pruned)`
    /// through `progress` for poll visibility. Returns the final poll
    /// response — the exact synchronous staged body on success — and the
    /// total pruned count for the stats counters.
    pub fn run(&self, progress: &mut dyn FnMut(usize, u64)) -> (Response, u64) {
        let (rendered, pruned) = match &self.target {
            DseTarget::Layer(layer) => {
                let resp = dse_staged_results(
                    layer,
                    self.submitted,
                    &self.archs,
                    self.objective,
                    self.top_k,
                    |p| progress(p.processed, p.pruned),
                );
                let pruned = resp.pruned;
                (render(&resp), pruned)
            }
            DseTarget::Network { net, batch } => {
                let resp = dse_staged_network_results(
                    net,
                    *batch,
                    self.submitted,
                    &self.archs,
                    self.objective,
                    self.top_k,
                    |p| progress(p.processed, p.pruned),
                );
                let pruned = resp.pruned;
                (render(&resp), pruned)
            }
        };
        match rendered {
            Ok(body) => (Response::json(200, body), pruned),
            Err(e) => (e.into_response(), 0),
        }
    }
}

/// The poll body of a still-running DSE job.
#[must_use]
pub fn dse_job_running_body(id: &str, processed: u64, pruned: u64) -> String {
    let body = Value::Object(vec![
        ("job".to_string(), Value::String(id.to_string())),
        ("status".to_string(), Value::String("running".to_string())),
        ("processed".to_string(), Value::Number(processed as f64)),
        ("pruned".to_string(), Value::Number(pruned as f64)),
    ]);
    serde_json::to_string_pretty(&body).unwrap_or_default()
}

/// Handles `POST /v1/dse` — layer mode (top-level layer-spec fields) or
/// network mode (`"target": {"network": ..., "batch": ...}`). Requests
/// carrying any of `objective`, `top_k`, `stream` take the staged
/// bound-pruned path with its [`limits::MAX_DSE_STAGED_CANDIDATES`] cap;
/// requests without them take the legacy evaluate-everything path, whose
/// response bytes and [`limits::MAX_DSE_CANDIDATES`] cap are unchanged.
///
/// # Errors
///
/// [`ApiError::BadRequest`] on malformed bodies (neither of
/// `candidates`/`grid`, ill-typed fields, unknown grid axes, `target`
/// mixed with layer fields); [`ApiError::Unprocessable`] on out-of-limit
/// layers/batches, unknown network names, over-cap candidate counts,
/// invalid candidate architectures (naming the candidate and the violated
/// invariant), unknown objective/stream values and out-of-range `top_k`.
pub fn dse_response(v: &Value) -> Result<String, ApiError> {
    dse_response_with_meta(v).map(|(body, _)| body)
}

/// [`dse_response`] plus the request-log metadata the server attaches to
/// the response (and caches with it, so cache hits log the same funnel).
///
/// # Errors
///
/// Exactly [`dse_response`]'s.
pub fn dse_response_with_meta(v: &Value) -> Result<(String, DseLogMeta), ApiError> {
    let Some(opts) = parse_staged_options(v)? else {
        // The legacy capped-batch path: wire bytes pinned by the golden
        // corpus, cap unchanged.
        let target = parse_dse_target(v)?;
        let archs = parse_dse_candidates(v, limits::MAX_DSE_CANDIDATES)?;
        return match target {
            DseTarget::Layer(layer) => {
                let resp = dse_results(&layer, archs.len(), &archs);
                let meta = DseLogMeta {
                    candidates: resp.submitted,
                    pruned: 0,
                    kept: resp.results.len(),
                    objective: None,
                };
                Ok((render(&resp)?, meta))
            }
            DseTarget::Network { net, batch } => {
                let resp = dse_network_results(&net, batch, archs.len(), &archs);
                let meta = DseLogMeta {
                    candidates: resp.submitted,
                    pruned: 0,
                    kept: resp.results.len(),
                    objective: None,
                };
                Ok((render(&resp)?, meta))
            }
        };
    };
    match opts.stream {
        // The acceptance body is deterministic, so the pure handler
        // answers job mode too; the server layers the job table and the
        // background thread on top of this.
        StreamMode::Job => {
            let spec = prepare_dse_job(v)?;
            Ok((spec.acceptance_body(), spec.meta()))
        }
        // Chunked is a transport hint; as a pure function the staged
        // sweep returns the same final body synchronously.
        StreamMode::Sync | StreamMode::Chunked => dse_staged_sync(v, opts),
    }
}

/// Routes one parsed POST body to its endpoint handler and renders the
/// outcome as a [`Response`]. This is the computation the server runs
/// behind the coalescing map and the result cache.
#[must_use]
pub fn dispatch(path: &str, body: &Value) -> Response {
    dispatch_with_meta(path, body).0
}

/// [`dispatch`] plus the `/v1/dse` request-log metadata the server carries
/// alongside the response (`None` for every other endpoint and for DSE
/// errors).
#[must_use]
pub fn dispatch_with_meta(path: &str, body: &Value) -> (Response, Option<DseLogMeta>) {
    if path == "/v1/dse" {
        return match dse_response_with_meta(body) {
            Ok((rendered, meta)) => (Response::json(200, rendered), Some(meta)),
            Err(e) => (e.into_response(), None),
        };
    }
    let result = match path {
        "/v1/bound" => bound_response(body),
        "/v1/sweep" => sweep_response(body),
        "/v1/plan" => plan_response(body),
        "/v1/simulate" => simulate_response(body),
        "/v1/network" => network_response(body),
        other => {
            return (
                Response::error(404, &format!("unknown endpoint `{other}`")),
                None,
            )
        }
    };
    (
        match result {
            Ok(body) => Response::json(200, body),
            Err(e) => e.into_response(),
        },
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        )
    }

    fn small_layer_body() -> Value {
        obj(&[
            ("co", Value::Number(16.0)),
            ("size", Value::Number(14.0)),
            ("ci", Value::Number(8.0)),
            ("batch", Value::Number(1.0)),
        ])
    }

    #[test]
    fn layer_spec_applies_defaults() {
        let spec = LayerSpec::from_value(&small_layer_body()).unwrap();
        assert_eq!((spec.k, spec.stride, spec.batch), (3, 1, 1));
        assert_eq!((spec.co, spec.size, spec.ci), (16, 14, 8));
        spec.to_layer().unwrap();
    }

    #[test]
    fn layer_spec_requires_core_dimensions() {
        let err = LayerSpec::from_value(&obj(&[("co", Value::Number(16.0))])).unwrap_err();
        assert!(matches!(err, ApiError::BadRequest(_)));
        let err = LayerSpec::from_value(&Value::Array(vec![])).unwrap_err();
        assert!(matches!(err, ApiError::BadRequest(_)));
    }

    #[test]
    fn layer_spec_rejects_fractional_and_oversized() {
        let mut body = small_layer_body();
        if let Value::Object(fields) = &mut body {
            fields.push(("k".to_string(), Value::Number(2.5)));
        }
        assert!(matches!(
            LayerSpec::from_value(&body).unwrap_err(),
            ApiError::BadRequest(_)
        ));
        let huge = obj(&[
            ("co", Value::Number(1e6)),
            ("size", Value::Number(14.0)),
            ("ci", Value::Number(8.0)),
        ]);
        let err = LayerSpec::from_value(&huge)
            .unwrap()
            .to_layer()
            .unwrap_err();
        assert!(matches!(err, ApiError::Unprocessable(_)));
    }

    #[test]
    fn bound_endpoint_round_trips() {
        let resp = dispatch("/v1/bound", &small_layer_body());
        assert_eq!(resp.status, 200);
        let v: Value = serde_json::from_str(&resp.body).unwrap();
        assert!(v.get_field("bound_bytes").unwrap().as_number().unwrap() > 0.0);
        assert!(v.get_field("reduction_factor").is_ok());
    }

    #[test]
    fn sweep_endpoint_lists_all_dataflows() {
        let resp = dispatch("/v1/sweep", &small_layer_body());
        assert_eq!(resp.status, 200);
        let v: Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(
            v.get_field("dataflows").unwrap().as_array().unwrap().len(),
            8
        );
    }

    #[test]
    fn plan_endpoint_matches_direct_library_call() {
        let resp = dispatch("/v1/plan", &small_layer_body());
        assert_eq!(resp.status, 200);
        let layer = ConvLayer::square(1, 16, 14, 8, 3, 1).unwrap();
        let report = Accelerator::implementation(1)
            .analyze_layer("layer", &layer)
            .unwrap();
        let expected = serde_json::to_string_pretty(&PlanResponse {
            implementation: 1,
            report,
        })
        .unwrap();
        assert_eq!(resp.body, expected, "service must be bit-identical");
    }

    fn tiling_value(b: f64, z: f64, y: f64, x: f64) -> Value {
        obj(&[
            ("b", Value::Number(b)),
            ("z", Value::Number(z)),
            ("y", Value::Number(y)),
            ("x", Value::Number(x)),
        ])
    }

    fn simulate_body(tiling: Value) -> Value {
        let mut body = small_layer_body();
        if let Value::Object(fields) = &mut body {
            fields.push(("tiling".to_string(), tiling));
        }
        body
    }

    #[test]
    fn simulate_endpoint_matches_direct_library_call() {
        let resp = dispatch(
            "/v1/simulate",
            &simulate_body(tiling_value(1.0, 8.0, 7.0, 7.0)),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let layer = ConvLayer::square(1, 16, 14, 8, 3, 1).unwrap();
        let tiling = dataflow::Tiling {
            b: 1,
            z: 8,
            y: 7,
            x: 7,
        };
        let arch = accel_sim::ArchConfig::implementation(1);
        let stats = accel_sim::simulate(&layer, &tiling, &arch).unwrap();
        let expected = serde_json::to_string_pretty(&SimulateResponse {
            implementation: 1,
            layer,
            tiling,
            stats,
            total_cycles: stats.total_cycles(),
            seconds: stats.seconds(arch.core_freq_hz),
        })
        .unwrap();
        assert_eq!(resp.body, expected, "service must be bit-identical");
    }

    #[test]
    fn simulate_endpoint_requires_a_tiling() {
        let resp = dispatch("/v1/simulate", &small_layer_body());
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("tiling"), "{}", resp.body);
    }

    #[test]
    fn simulate_endpoint_rejects_zero_and_oversized_tilings() {
        for bad in [
            tiling_value(0.0, 8.0, 7.0, 7.0),
            tiling_value(1.0, 0.0, 7.0, 7.0),
            tiling_value(1.0, 8.0, 0.0, 7.0),
            tiling_value(1.0, 8.0, 7.0, 0.0),
            tiling_value(1.0, 8.0, 7.0, 1000.0),
        ] {
            let resp = dispatch("/v1/simulate", &simulate_body(bad));
            assert_eq!(resp.status, 422, "{}", resp.body);
            assert!(resp.body.contains("tiling"), "{}", resp.body);
        }
    }

    #[test]
    fn simulate_endpoint_surfaces_infeasible_blockings() {
        // z = 16 output channels is fine, but a 14×14 spatial block of all
        // 16 channels at batch 1 still maps; use a full-layer tiling that
        // overflows the IGBuf instead.
        let mut body = obj(&[
            ("co", Value::Number(64.0)),
            ("size", Value::Number(64.0)),
            ("ci", Value::Number(8.0)),
            ("batch", Value::Number(1.0)),
        ]);
        if let Value::Object(fields) = &mut body {
            fields.push(("tiling".to_string(), tiling_value(1.0, 1.0, 64.0, 64.0)));
        }
        let resp = dispatch("/v1/simulate", &body);
        assert_eq!(resp.status, 422, "{}", resp.body);
    }

    #[test]
    fn network_endpoint_rejects_unknown_network() {
        let resp = dispatch(
            "/v1/network",
            &obj(&[("net", Value::String("lenet".into()))]),
        );
        assert_eq!(resp.status, 422);
        assert!(resp.body.contains("custom network"), "{}", resp.body);
    }

    fn custom_layer(co: f64, ci: f64, size: f64) -> Value {
        obj(&[
            ("co", Value::Number(co)),
            ("ci", Value::Number(ci)),
            ("size", Value::Number(size)),
        ])
    }

    fn custom_net(layers: Vec<Value>) -> Value {
        obj(&[
            ("name", Value::String("tiny".into())),
            ("batch", Value::Number(1.0)),
            ("layers", Value::Array(layers)),
        ])
    }

    #[test]
    fn network_endpoint_accepts_a_custom_network() {
        let body = obj(&[("net", custom_net(vec![custom_layer(16.0, 8.0, 14.0)]))]);
        let resp = dispatch("/v1/network", &body);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v: Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(v.get_field("network").unwrap().as_str().unwrap(), "tiny");
        assert_eq!(
            v.get_field("layers").unwrap().as_array().unwrap().len(),
            1
        );
    }

    #[test]
    fn custom_network_rejects_top_level_batch() {
        let body = obj(&[
            ("net", custom_net(vec![custom_layer(16.0, 8.0, 14.0)])),
            ("batch", Value::Number(2.0)),
        ]);
        let resp = dispatch("/v1/network", &body);
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("batch"), "{}", resp.body);
    }

    #[test]
    fn custom_network_cap_violations_are_422_naming_the_invariant() {
        // Per-layer dimension over the cap.
        let over_co = obj(&[("net", custom_net(vec![custom_layer(1e9, 8.0, 14.0)]))]);
        let resp = dispatch("/v1/network", &over_co);
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("layers[0]"), "{}", resp.body);
        // Layer count over the cap.
        let many: Vec<Value> = (0..network_caps::MAX_NETWORK_LAYERS + 1)
            .map(|_| custom_layer(16.0, 8.0, 14.0))
            .collect();
        let resp = dispatch("/v1/network", &obj(&[("net", custom_net(many))]));
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("layer count"), "{}", resp.body);
        // Total MACs over the cap: each layer is in range, the sum is not
        // (64 × 4096×4096 3×3 layers on 128×128 maps ≈ 1.6×10¹⁴ MACs).
        let chunky: Vec<Value> = (0..64)
            .map(|_| custom_layer(4096.0, 4096.0, 128.0))
            .collect();
        let resp = dispatch("/v1/network", &obj(&[("net", custom_net(chunky))]));
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("total MACs"), "{}", resp.body);
        // Empty layer list.
        let resp = dispatch("/v1/network", &obj(&[("net", custom_net(vec![]))]));
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("at least one layer"), "{}", resp.body);
    }

    #[test]
    fn dse_target_accepts_a_custom_network() {
        let body = obj(&[
            (
                "target",
                obj(&[("network", custom_net(vec![custom_layer(16.0, 8.0, 14.0)]))]),
            ),
            (
                "candidates",
                Value::Array(vec![ArchConfig::implementation(1).to_value()]),
            ),
        ]);
        let resp = dispatch("/v1/dse", &body);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v: Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(v.get_field("network").unwrap().as_str().unwrap(), "tiny");
        assert_eq!(v.get_field("batch").unwrap().as_number().unwrap(), 1.0);
    }

    #[test]
    fn dse_target_rejects_batch_next_to_a_custom_network() {
        let body = obj(&[
            (
                "target",
                obj(&[
                    ("network", custom_net(vec![custom_layer(16.0, 8.0, 14.0)])),
                    ("batch", Value::Number(2.0)),
                ]),
            ),
            (
                "candidates",
                Value::Array(vec![ArchConfig::implementation(1).to_value()]),
            ),
        ]);
        let resp = dispatch("/v1/dse", &body);
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("target.batch"), "{}", resp.body);
    }

    #[test]
    fn dse_target_prefixes_custom_network_errors() {
        let body = obj(&[
            (
                "target",
                obj(&[("network", custom_net(vec![custom_layer(0.0, 8.0, 14.0)]))]),
            ),
            (
                "candidates",
                Value::Array(vec![ArchConfig::implementation(1).to_value()]),
            ),
        ]);
        let resp = dispatch("/v1/dse", &body);
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("target.network"), "{}", resp.body);
        assert!(resp.body.contains("layers[0]"), "{}", resp.body);
    }

    #[test]
    fn new_presets_are_served() {
        for name in ["inception", "fc"] {
            let resp = dispatch(
                "/v1/network",
                &obj(&[
                    ("net", Value::String(name.into())),
                    ("batch", Value::Number(1.0)),
                ]),
            );
            assert_eq!(resp.status, 200, "{name}: {}", resp.body);
        }
    }

    #[test]
    fn mem_kib_validation() {
        for bad in [0.0, -3.0, f64::INFINITY, limits::MAX_MEM_KIB * 2.0] {
            let mut body = small_layer_body();
            if let Value::Object(fields) = &mut body {
                fields.push(("mem_kib".to_string(), Value::Number(bad)));
            }
            assert_eq!(dispatch("/v1/bound", &body).status, 422, "mem_kib={bad}");
        }
    }

    #[test]
    fn implem_validation() {
        let mut body = small_layer_body();
        if let Value::Object(fields) = &mut body {
            fields.push(("implem".to_string(), Value::Number(9.0)));
        }
        assert_eq!(dispatch("/v1/plan", &body).status, 422);
    }

    #[test]
    fn unknown_endpoint_is_404() {
        assert_eq!(dispatch("/v1/nope", &small_layer_body()).status, 404);
    }

    fn with_trace(mut body: Value, trace: Value) -> Value {
        if let Value::Object(fields) = &mut body {
            fields.push(("trace".to_string(), trace));
        }
        body
    }

    #[test]
    fn null_trace_keeps_untraced_bytes() {
        let plain = dispatch(
            "/v1/simulate",
            &simulate_body(tiling_value(1.0, 8.0, 7.0, 7.0)),
        );
        let nulled = dispatch(
            "/v1/simulate",
            &with_trace(simulate_body(tiling_value(1.0, 8.0, 7.0, 7.0)), Value::Null),
        );
        assert_eq!(plain.status, 200);
        assert_eq!(plain.body, nulled.body, "null trace must not alter bytes");
    }

    #[test]
    fn traced_simulate_appends_trace_field_only() {
        let plain = dispatch(
            "/v1/simulate",
            &simulate_body(tiling_value(1.0, 8.0, 7.0, 7.0)),
        );
        let traced = dispatch(
            "/v1/simulate",
            &with_trace(simulate_body(tiling_value(1.0, 8.0, 7.0, 7.0)), obj(&[])),
        );
        assert_eq!(traced.status, 200, "{}", traced.body);
        let plain_v: Value = serde_json::from_str(&plain.body).unwrap();
        let traced_v: Value = serde_json::from_str(&traced.body).unwrap();
        let (Value::Object(plain_fields), Value::Object(traced_fields)) = (&plain_v, &traced_v)
        else {
            panic!("responses must be objects");
        };
        // Same fields in the same order, plus exactly one trailing `trace`.
        assert_eq!(traced_fields.len(), plain_fields.len() + 1);
        for ((pk, pv), (tk, tv)) in plain_fields.iter().zip(traced_fields.iter()) {
            assert_eq!(pk, tk);
            assert_eq!(
                serde_json::to_string_pretty(pv).unwrap(),
                serde_json::to_string_pretty(tv).unwrap()
            );
        }
        assert_eq!(traced_fields.last().unwrap().0, "trace");
        // The appended trace reproduces the stats the response carries.
        let stats = traced_v.get_field("stats").unwrap();
        let totals = traced_v
            .get_field("trace")
            .unwrap()
            .get_field("totals")
            .unwrap();
        for key in ["compute_cycles", "stall_cycles", "blocks", "iterations"] {
            assert_eq!(
                stats.get_field(key).unwrap().as_number(),
                totals.get_field(key).unwrap().as_number(),
                "trace totals must mirror stats `{key}`"
            );
        }
        // Unexpanded traces ship no per-block list.
        let blocks = traced_v
            .get_field("trace")
            .unwrap()
            .get_field("blocks")
            .unwrap();
        assert!(blocks.as_array().unwrap().is_empty());
    }

    #[test]
    fn traced_simulate_vcd_is_wellformed() {
        let traced = dispatch(
            "/v1/simulate",
            &with_trace(
                simulate_body(tiling_value(1.0, 8.0, 7.0, 7.0)),
                obj(&[("format", Value::String("vcd".into()))]),
            ),
        );
        assert_eq!(traced.status, 200, "{}", traced.body);
        let v: Value = serde_json::from_str(&traced.body).unwrap();
        let vcd = v.get_field("vcd").unwrap().as_str().unwrap();
        assert!(vcd.starts_with("$comment"), "VCD must open with a header");
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(
            vcd.lines().any(|l| l.starts_with('#')),
            "VCD must carry at least one timestamped change"
        );
    }

    #[test]
    fn traced_plan_totals_mirror_report_stats() {
        let traced = dispatch("/v1/plan", &with_trace(small_layer_body(), obj(&[])));
        assert_eq!(traced.status, 200, "{}", traced.body);
        let v: Value = serde_json::from_str(&traced.body).unwrap();
        let stats = v.get_field("report").unwrap().get_field("stats").unwrap();
        let totals = v.get_field("trace").unwrap().get_field("totals").unwrap();
        for key in ["compute_cycles", "stall_cycles", "blocks", "iterations"] {
            assert_eq!(
                stats.get_field(key).unwrap().as_number(),
                totals.get_field(key).unwrap().as_number(),
                "plan trace totals must mirror report stats `{key}`"
            );
        }
    }

    #[test]
    fn trace_option_rejects_unknown_keys_and_formats() {
        let body = simulate_body(tiling_value(1.0, 8.0, 7.0, 7.0));
        let unknown_key = dispatch(
            "/v1/simulate",
            &with_trace(body.clone(), obj(&[("fmt", Value::String("vcd".into()))])),
        );
        assert_eq!(unknown_key.status, 400, "{}", unknown_key.body);
        assert!(unknown_key.body.contains("fmt"), "{}", unknown_key.body);
        let unknown_format = dispatch(
            "/v1/simulate",
            &with_trace(
                body.clone(),
                obj(&[("format", Value::String("svg".into()))]),
            ),
        );
        assert_eq!(unknown_format.status, 422, "{}", unknown_format.body);
        assert!(
            unknown_format.body.contains("svg"),
            "{}",
            unknown_format.body
        );
        let not_an_object = dispatch(
            "/v1/simulate",
            &with_trace(body, Value::String("vcd".into())),
        );
        assert_eq!(not_an_object.status, 400, "{}", not_an_object.body);
    }

    #[test]
    fn over_cap_trace_is_422_naming_the_cap() {
        // ~200k blocks under a unit tiling: the expanded trace (VCD forces
        // expansion) must be refused before allocation with the cap named.
        let body = obj(&[
            ("co", Value::Number(64.0)),
            ("size", Value::Number(56.0)),
            ("ci", Value::Number(8.0)),
            ("batch", Value::Number(2.0)),
            ("tiling", tiling_value(1.0, 1.0, 1.0, 1.0)),
        ]);
        let resp = dispatch(
            "/v1/simulate",
            &with_trace(
                body.clone(),
                obj(&[("format", Value::String("vcd".into()))]),
            ),
        );
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains("MAX_TRACE_BLOCKS"), "{}", resp.body);
        // The same request without the expansion is fine: the class table
        // stays compact however many blocks the grid has.
        let compact = dispatch("/v1/simulate", &with_trace(body, obj(&[])));
        assert_eq!(compact.status, 200, "{}", compact.body);
    }
}
