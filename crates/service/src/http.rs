//! A minimal, defensive HTTP/1.1 layer over [`std::io`]: just enough
//! protocol to serve JSON requests, written to never panic on hostile
//! input — malformed heads, truncated bodies and oversized payloads all
//! surface as typed 4xx errors.
//!
//! Connections are persistent by default: requests are framed by
//! `Content-Length`, `Connection: keep-alive`/`close` is honored per
//! RFC 7230 for both HTTP/1.0 and HTTP/1.1 peers ([`Head::wants_keepalive`]),
//! and every response declares its own connection disposition
//! ([`Response::render`]). The server loop decides when a connection
//! actually closes (client preference, per-connection request bound, idle
//! timeout, drain); this module only parses and serializes.

use std::io::{Read, Write};
use std::time::Instant;

/// Default cap on request bodies (1 MiB — analysis requests are tiny).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1 << 20;

/// Cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A typed HTTP-level failure, mapped to a response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or body (400).
    BadRequest(String),
    /// Request body longer than the configured cap (413).
    PayloadTooLarge {
        /// The configured cap the declared body length exceeded.
        limit: usize,
    },
    /// Request head longer than [`MAX_HEAD_BYTES`] (431).
    HeadTooLarge,
    /// An HTTP version other than 1.x (505).
    VersionNotSupported,
    /// The whole-request deadline elapsed before the request arrived (408)
    /// — per-`read` socket timeouts alone would let a slow-drip client pin
    /// a worker for hours, one byte at a time.
    DeadlineExceeded,
    /// The underlying socket failed mid-request (mapped to 400; there is
    /// usually nobody left to read the response).
    Io(String),
}

impl HttpError {
    /// The response status code for this error.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) | HttpError::Io(_) => 400,
            HttpError::PayloadTooLarge { .. } => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::VersionNotSupported => 505,
            HttpError::DeadlineExceeded => 408,
        }
    }

    /// Human-readable detail for the JSON error body.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::PayloadTooLarge { limit } => {
                format!("request body exceeds the {limit}-byte limit")
            }
            HttpError::HeadTooLarge => {
                format!("request head exceeds the {MAX_HEAD_BYTES}-byte limit")
            }
            HttpError::VersionNotSupported => "only HTTP/1.x is supported".to_string(),
            HttpError::DeadlineExceeded => {
                "the request did not complete within the server's deadline".to_string()
            }
            HttpError::Io(m) => format!("i/o error mid-request: {m}"),
        }
    }
}

/// A parsed request head: the request line plus lowercased headers.
#[derive(Debug, Clone)]
pub struct Head {
    /// Request method, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// Request target (e.g. `/v1/plan`). Query strings are not split off —
    /// the service's routes do not use them.
    pub path: String,
    /// HTTP minor version: 0 for `HTTP/1.0`, 1 for `HTTP/1.1` (higher 1.x
    /// minors are treated as 1.1 — same connection semantics).
    pub minor_version: u8,
    /// Headers as `(lowercased-name, trimmed-value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Parsed `Content-Length` (0 when absent).
    pub content_length: usize,
}

impl Head {
    /// The first value of `name` (ASCII case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client sent `Expect: 100-continue` and is waiting for
    /// an interim response before transmitting the body.
    #[must_use]
    pub fn expects_continue(&self) -> bool {
        self.header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    }

    /// Whether this request asks for a persistent connection, per RFC 7230
    /// §6.3: an explicit `close` token always closes, an explicit
    /// `keep-alive` token always persists, and absent both the default is
    /// keep-alive for HTTP/1.1 and close for HTTP/1.0. The `Connection`
    /// header is a comma-separated token list (`keep-alive, TE`), matched
    /// case-insensitively; `close` wins over `keep-alive` if a confused
    /// client sends both.
    #[must_use]
    pub fn wants_keepalive(&self) -> bool {
        let mut close = false;
        let mut keep = false;
        if let Some(value) = self.header("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep = true;
                }
            }
        }
        if close {
            false
        } else if keep {
            true
        } else {
            self.minor_version >= 1
        }
    }
}

/// A complete request: head plus body.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request head.
    pub head: Head,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

fn check_deadline(deadline: Option<Instant>) -> Result<(), HttpError> {
    match deadline {
        Some(d) if Instant::now() > d => Err(HttpError::DeadlineExceeded),
        _ => Ok(()),
    }
}

/// Maps one failed socket read to a typed error: a per-read timeout
/// (`SO_RCVTIMEO` firing surfaces as `WouldBlock` on Unix, `TimedOut` on
/// Windows) means the peer stalled mid-request — a deadline violation
/// (408), not a malformed request (400).
fn read_error(e: &std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            HttpError::DeadlineExceeded
        }
        _ => HttpError::Io(e.to_string()),
    }
}

/// Reads and parses the request head (everything up to the `\r\n\r\n`
/// terminator). Call [`read_body`] afterwards — split so the server can
/// interpose a `100 Continue` between the two. `deadline` bounds the
/// *whole* head transfer (checked between reads; pair it with a per-read
/// socket timeout so a silent peer cannot park the thread either).
///
/// # Errors
///
/// [`HttpError::HeadTooLarge`] past [`MAX_HEAD_BYTES`];
/// [`HttpError::BadRequest`] on EOF, malformed request line, or malformed
/// headers; [`HttpError::VersionNotSupported`] for non-1.x versions;
/// [`HttpError::DeadlineExceeded`] past `deadline`; [`HttpError::Io`] when
/// the socket fails.
pub fn read_head<R: Read>(reader: &mut R, deadline: Option<Instant>) -> Result<Head, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        check_deadline(deadline)?;
        match reader.read(&mut byte) {
            Ok(0) => {
                return Err(HttpError::BadRequest(
                    "connection closed before the request head completed".to_string(),
                ))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(read_error(&e)),
        }
    }
    parse_head(&head)
}

/// Reads and parses the request head through a [`BufRead`]er's buffer —
/// the event-loop server's head reader. Behavior-identical to
/// [`read_head`] (same errors, same deadline semantics, consumes exactly
/// through the `\r\n\r\n` terminator so pipelined bytes stay buffered for
/// the next request), but fills whole buffers instead of issuing one
/// `read(2)` per byte: ~16 syscalls fewer per request head, and the shape
/// a readiness-driven server needs, since bytes parked in the user-space
/// buffer are invisible to `epoll` and must be consumed from here, not
/// re-awaited on the socket.
///
/// # Errors
///
/// As [`read_head`].
pub fn read_head_buffered<R: std::io::BufRead>(
    reader: &mut R,
    deadline: Option<Instant>,
) -> Result<Head, HttpError> {
    let mut head: Vec<u8> = Vec::with_capacity(512);
    loop {
        check_deadline(deadline)?;
        let available = match reader.fill_buf() {
            Ok([]) => {
                return Err(HttpError::BadRequest(
                    "connection closed before the request head completed".to_string(),
                ))
            }
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(read_error(&e)),
        };
        // The terminator may straddle a fill boundary: rescan from up to
        // three bytes before the old tail.
        let rescan_from = head.len().saturating_sub(3);
        head.extend_from_slice(available);
        let take = match head[rescan_from..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
        {
            // Bytes past the terminator belong to the next request: put
            // them back by consuming only through the terminator.
            Some(at) => {
                let end = rescan_from + at + 4;
                let consumed = head.len() - end;
                head.truncate(end);
                available.len() - consumed
            }
            None => available.len(),
        };
        reader.consume(take);
        if head.len() > MAX_HEAD_BYTES
            || (!head.ends_with(b"\r\n\r\n") && head.len() == MAX_HEAD_BYTES)
        {
            return Err(HttpError::HeadTooLarge);
        }
        if head.ends_with(b"\r\n\r\n") {
            return parse_head(&head);
        }
    }
}

/// Parses a complete request head (terminated by `\r\n\r\n` or not — the
/// terminator is optional here so unit tests can feed bare heads).
///
/// # Errors
///
/// As [`read_head`], minus the I/O cases.
pub fn parse_head(head: &[u8]) -> Result<Head, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".to_string()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".to_string()))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!(
            "malformed method `{method}`"
        )));
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target `{path}` must start with `/`"
        )));
    }
    let minor_version = match version.strip_prefix("HTTP/1.") {
        // Minors beyond 1 never shipped; parse them as 1.1 semantics.
        Some(minor) => match minor.parse::<u32>() {
            Ok(m) => u8::from(m >= 1),
            Err(_) => return Err(HttpError::VersionNotSupported),
        },
        None => return Err(HttpError::VersionNotSupported),
    };

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue; // the blank line terminating the head
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line `{line}`"
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name.is_empty() {
            return Err(HttpError::BadRequest("empty header name".to_string()));
        }
        if name == "content-length" {
            let parsed = value
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length `{value}`")))?;
            // Conflicting duplicates are the request-smuggling classic
            // (RFC 9112 §6.3): a fronting proxy honoring the first value
            // and this server honoring another must never disagree about
            // where the body ends.
            if content_length.is_some_and(|existing| existing != parsed) {
                return Err(HttpError::BadRequest(
                    "conflicting Content-Length headers".to_string(),
                ));
            }
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }
    Ok(Head {
        method: method.to_string(),
        path: path.to_string(),
        minor_version,
        headers,
        content_length: content_length.unwrap_or(0),
    })
}

/// Reads the declared request body.
///
/// # Errors
///
/// [`HttpError::PayloadTooLarge`] when the declared length exceeds
/// `max_body` (nothing is read in that case — the connection is going to be
/// closed anyway); [`HttpError::DeadlineExceeded`] past `deadline`;
/// [`HttpError::BadRequest`] when the connection ends (or times out)
/// before the declared length arrives.
pub fn read_body<R: Read>(
    reader: &mut R,
    declared_len: usize,
    max_body: usize,
    deadline: Option<Instant>,
) -> Result<Vec<u8>, HttpError> {
    if declared_len > max_body {
        return Err(HttpError::PayloadTooLarge { limit: max_body });
    }
    let mut body = vec![0u8; declared_len];
    let mut filled = 0;
    while filled < declared_len {
        check_deadline(deadline)?;
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(HttpError::BadRequest(format!(
                    "truncated body: got {filled} of {declared_len} declared bytes"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(read_error(&e)),
        }
    }
    Ok(body)
}

/// Convenience for tests and simple callers: head + body in one call, no
/// interim responses.
///
/// # Errors
///
/// As [`read_head`] and [`read_body`].
pub fn read_request<R: Read>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let head = read_head(reader, None)?;
    let body = read_body(reader, head.content_length, max_body, None)?;
    Ok(Request { head, body })
}

/// The canonical reason phrase for the status codes this service emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// An HTTP response: status plus a JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Response body (always JSON in this service).
    pub body: String,
    /// Seconds to advertise in a `Retry-After` header — set on every
    /// load-shed `503` so clients know the saturation is transient and
    /// bounded, absent everywhere else.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            retry_after: None,
        }
    }

    /// A JSON error response: `{"error": ..., "status": ...}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        #[derive(serde::Serialize)]
        struct ErrorBody {
            error: String,
            status: u16,
        }
        let body = serde_json::to_string(&ErrorBody {
            error: message.to_string(),
            status,
        })
        .unwrap_or_else(|_| format!("{{\"error\":\"unrenderable\",\"status\":{status}}}"));
        Response {
            status,
            body,
            retry_after: None,
        }
    }

    /// The load-shed response: `503` with a `Retry-After` header (and a
    /// matching `retry_after_seconds` body field) telling the client when
    /// to come back. Every 503 this service emits goes through here so the
    /// retry contract is uniform.
    #[must_use]
    pub fn unavailable(message: &str, retry_after_secs: u32) -> Self {
        #[derive(serde::Serialize)]
        struct ShedBody {
            error: String,
            status: u16,
            retry_after_seconds: u32,
        }
        let body = serde_json::to_string(&ShedBody {
            error: message.to_string(),
            status: 503,
            retry_after_seconds: retry_after_secs,
        })
        .unwrap_or_else(|_| "{\"error\":\"unrenderable\",\"status\":503}".to_string());
        Response {
            status: 503,
            body,
            retry_after: Some(retry_after_secs),
        }
    }

    /// The full wire bytes of this response (status line, headers, body)
    /// with the given connection disposition. The header set and order are
    /// fixed — a golden fixture pins them — so log scrapers and tests can
    /// rely on the exact shape.
    #[must_use]
    pub fn render(&self, keep_alive: bool) -> String {
        let retry = self
            .retry_after
            .map(|secs| format!("Retry-After: {secs}\r\n"))
            .unwrap_or_default();
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n{}",
            self.status,
            status_reason(self.status),
            self.body.len(),
            retry,
            if keep_alive { "keep-alive" } else { "close" },
            self.body
        )
    }

    /// Serializes the response onto `writer` with the given connection
    /// disposition (`Connection: keep-alive` or `Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_conn<W: Write>(&self, writer: &mut W, keep_alive: bool) -> std::io::Result<()> {
        writer.write_all(self.render(keep_alive).as_bytes())?;
        writer.flush()
    }

    /// Serializes the response onto `writer`, closing the connection
    /// (`Connection: close`) — the one-shot path.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        self.write_conn(writer, false)
    }
}

/// Writes the `100 Continue` interim response.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_continue<W: Write>(writer: &mut W) -> std::io::Result<()> {
    write!(writer, "HTTP/1.1 100 Continue\r\n\r\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes()), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /v1/plan HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"co\":64}")
                .unwrap();
        assert_eq!(req.head.method, "POST");
        assert_eq!(req.head.path, "/v1/plan");
        assert_eq!(req.head.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"co\":64}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.head.method, "GET");
        assert_eq!(req.head.content_length, 0);
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_line() {
        for raw in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            " / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} -> {err:?}");
        }
    }

    #[test]
    fn rejects_bad_method_token() {
        // Lowercase / mixed tokens are not methods; routing handles
        // well-formed-but-unsupported methods (405) separately.
        let err = parse("get /healthz HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
        let err = parse("P@ST /x HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_unsupported_http_version() {
        let err = parse("GET / HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::VersionNotSupported);
        assert_eq!(err.status(), 505);
    }

    #[test]
    fn rejects_relative_request_target() {
        let err = parse("GET healthz HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_malformed_headers() {
        let err = parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
        let err = parse("GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_conflicting_content_lengths() {
        // The request-smuggling precondition: two Content-Length values
        // that disagree must be a hard 400, not last-one-wins.
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nab")
            .unwrap_err();
        assert_eq!(err.status(), 400);
        // Identical duplicates are harmless and accepted.
        let req =
            parse("POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab").unwrap();
        assert_eq!(req.body, b"ab");
    }

    #[test]
    fn rejects_truncated_body_with_400_not_panic() {
        let err = parse("POST /v1/plan HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"co\"").unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("truncated"));
    }

    #[test]
    fn rejects_oversized_payload_without_reading_it() {
        let raw = "POST /v1/plan HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let err = read_request(&mut Cursor::new(raw.as_bytes()), 1024).unwrap_err();
        assert_eq!(err, HttpError::PayloadTooLarge { limit: 1024 });
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_unterminated_head() {
        let err = parse("GET / HTTP/1.1\r\nHost: x").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_oversized_head() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        while raw.len() <= MAX_HEAD_BYTES {
            raw.push_str("X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        raw.push_str("\r\n");
        let err = parse(&raw).unwrap_err();
        assert_eq!(err, HttpError::HeadTooLarge);
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn rejects_non_utf8_head() {
        let mut raw = b"GET /\xff HTTP/1.1\r\n\r\n".to_vec();
        let err = read_request(&mut Cursor::new(&mut raw), 1024).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn expired_deadline_rejects_slow_requests_with_408() {
        let past = Some(Instant::now() - std::time::Duration::from_secs(1));
        let mut cursor = Cursor::new(&b"GET / HTTP/1.1\r\n\r\n"[..]);
        let err = read_head(&mut cursor, past).unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
        assert_eq!(err.status(), 408);
        let mut cursor = Cursor::new(&b"abcdef"[..]);
        let err = read_body(&mut cursor, 6, 1024, past).unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
        // A live deadline lets a complete request straight through.
        let future = Some(Instant::now() + std::time::Duration::from_secs(60));
        let mut cursor = Cursor::new(&b"GET / HTTP/1.1\r\n\r\n"[..]);
        assert!(read_head(&mut cursor, future).is_ok());
    }

    #[test]
    fn expect_continue_detected() {
        let head = parse_head(b"POST /v1/plan HTTP/1.1\r\nExpect: 100-continue\r\n").unwrap();
        assert!(head.expects_continue());
        let head = parse_head(b"POST /v1/plan HTTP/1.1\r\n").unwrap();
        assert!(!head.expects_continue());
    }

    #[test]
    fn keepalive_negotiation_follows_rfc7230() {
        // HTTP/1.1 defaults to keep-alive; explicit close wins.
        let head = parse_head(b"GET / HTTP/1.1\r\n").unwrap();
        assert_eq!(head.minor_version, 1);
        assert!(head.wants_keepalive());
        let head = parse_head(b"GET / HTTP/1.1\r\nConnection: close\r\n").unwrap();
        assert!(!head.wants_keepalive());
        // HTTP/1.0 defaults to close; explicit keep-alive opts in.
        let head = parse_head(b"GET / HTTP/1.0\r\n").unwrap();
        assert_eq!(head.minor_version, 0);
        assert!(!head.wants_keepalive());
        let head = parse_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n").unwrap();
        assert!(head.wants_keepalive());
        // Token lists and case-insensitivity.
        let head = parse_head(b"GET / HTTP/1.1\r\nConnection: Keep-Alive, TE\r\n").unwrap();
        assert!(head.wants_keepalive());
        let head = parse_head(b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n").unwrap();
        assert!(!head.wants_keepalive(), "close must win over keep-alive");
        // Unknown tokens fall back to the version default.
        let head = parse_head(b"GET / HTTP/1.0\r\nConnection: upgrade\r\n").unwrap();
        assert!(!head.wants_keepalive());
    }

    #[test]
    fn version_minor_must_be_numeric() {
        // `HTTP/1.x` used to slip through the old prefix check.
        let err = parse_head(b"GET / HTTP/1.x\r\n").unwrap_err();
        assert_eq!(err, HttpError::VersionNotSupported);
        // Hypothetical higher 1.x minors get 1.1 semantics.
        let head = parse_head(b"GET / HTTP/1.2\r\n").unwrap();
        assert_eq!(head.minor_version, 1);
    }

    #[test]
    fn timed_out_reads_surface_as_408_not_400() {
        struct TimesOut;
        impl Read for TimesOut {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        let err = read_head(&mut TimesOut, None).unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
        assert_eq!(err.status(), 408);
        let err = read_body(&mut TimesOut, 4, 1024, None).unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
    }

    /// A reader that hands out its bytes in fixed-size fills, so buffered
    /// head parsing is exercised across arbitrary fill boundaries
    /// (including terminators straddling two fills).
    struct Chunked<'a> {
        bytes: &'a [u8],
        at: usize,
        chunk: usize,
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(out.len()).min(self.bytes.len() - self.at);
            out[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn buffered_head_matches_byte_at_a_time_for_every_fill_size() {
        let raw = b"POST /v1/plan HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"co\":64}extra";
        for chunk in 1..=raw.len() {
            let mut reader = std::io::BufReader::with_capacity(
                16,
                Chunked {
                    bytes: raw,
                    at: 0,
                    chunk,
                },
            );
            let head = read_head_buffered(&mut reader, None).unwrap_or_else(|e| {
                panic!("chunk size {chunk}: {e:?}");
            });
            assert_eq!(head.method, "POST", "chunk {chunk}");
            assert_eq!(head.content_length, 9, "chunk {chunk}");
            // Exactly the body (and the pipelined tail) must remain.
            let mut rest = Vec::new();
            reader.read_to_end(&mut rest).unwrap();
            assert_eq!(rest, b"{\"co\":64}extra", "chunk {chunk}");
        }
    }

    #[test]
    fn buffered_head_rejects_the_same_hostile_inputs() {
        // EOF mid-head.
        let err = read_head_buffered(&mut std::io::BufReader::new(Cursor::new(b"GET / HT")), None)
            .unwrap_err();
        assert_eq!(err.status(), 400);
        // Oversized head.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        while raw.len() <= MAX_HEAD_BYTES {
            raw.push_str("X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        raw.push_str("\r\n");
        let err = read_head_buffered(
            &mut std::io::BufReader::new(Cursor::new(raw.into_bytes())),
            None,
        )
        .unwrap_err();
        assert_eq!(err, HttpError::HeadTooLarge);
        // Expired deadline.
        let past = Some(Instant::now() - std::time::Duration::from_secs(1));
        let err = read_head_buffered(
            &mut std::io::BufReader::new(Cursor::new(b"GET / HTTP/1.1\r\n\r\n")),
            past,
        )
        .unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
        // A timed-out socket surfaces as 408, exactly like `read_head`.
        struct TimesOut;
        impl Read for TimesOut {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        let err = read_head_buffered(&mut std::io::BufReader::new(TimesOut), None).unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
    }

    #[test]
    fn render_controls_connection_and_retry_after_headers() {
        let ok = Response::json(200, "{}");
        assert!(ok.render(true).contains("Connection: keep-alive\r\n"));
        assert!(ok.render(false).contains("Connection: close\r\n"));
        assert!(!ok.render(true).contains("Retry-After"));

        let shed = Response::unavailable("server is saturated; retry with backoff", 1);
        assert_eq!(shed.status, 503);
        let wire = shed.render(true);
        assert!(wire.contains("Retry-After: 1\r\n"), "{wire}");
        assert!(wire.contains("Connection: keep-alive\r\n"), "{wire}");
        assert!(wire.contains("\"retry_after_seconds\":1"), "{wire}");
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_response_is_json() {
        let r = Response::error(422, "bad \"layer\"");
        assert_eq!(r.status, 422);
        assert_eq!(r.body, "{\"error\":\"bad \\\"layer\\\"\",\"status\":422}");
    }
}
