//! The TCP server: accept loop, routing, request coalescing and the
//! bounded response cache.
//!
//! Layering per request:
//!
//! 1. the accept loop hands the connection to the [`WorkerPool`] (or sheds
//!    it with `503` when the bounded queue is full);
//! 2. a worker parses the request ([`http`]) and routes it;
//! 3. `POST` bodies are canonicalized (parsed and re-serialized JSON), so
//!    formatting differences cannot split identical queries;
//! 4. the canonical key goes through the bounded LRU **response cache**,
//!    then the [`FlightMap`] — concurrent identical requests share one
//!    computation, repeated ones are served from memory;
//! 5. [`api::dispatch`] runs the actual analysis (which internally hits the
//!    engine's own memoized, coalesced tiling-search cache).

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dataflow::{FlightMap, LruCache};
use serde::Value;

use crate::api;
use crate::http::{self, HttpError, Response};
use crate::pool::WorkerPool;

/// Where structured request-log lines go when logging is enabled: one call
/// per completed request with the formatted line (no trailing newline).
/// `clb serve --log` installs a stderr writer; tests install collectors.
pub type LogSink = Arc<dyn Fn(&str) + Send + Sync>;

/// Server configuration. `Default` gives a localhost server on an
/// OS-assigned port with auto-sized workers — every field has a sensible
/// production value except `port`, which tests leave at 0 (ephemeral) and
/// `clb serve` sets from `--port`.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Bind address (default `127.0.0.1`).
    pub host: std::net::IpAddr,
    /// Bind port; 0 asks the OS for an ephemeral port.
    pub port: u16,
    /// Worker threads; 0 means one per available CPU.
    pub threads: usize,
    /// Bounded connection-queue capacity (overflow is shed with 503).
    pub queue_capacity: usize,
    /// Request-body cap in bytes (oversized requests get 413).
    pub max_body_bytes: usize,
    /// Response-cache bound in entries.
    pub result_cache_capacity: usize,
    /// Per-connection socket read timeout (bounds one silent `read`).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout — without it a client that
    /// never reads its (large) response would pin a worker on a blocked
    /// `write` forever.
    pub write_timeout: Duration,
    /// Whole-request receive deadline (bounds a slow-drip client that
    /// keeps every individual read under `read_timeout`).
    pub request_deadline: Duration,
    /// Structured request logging: one [`format_request_log`] line per
    /// completed request when set (`None` disables, the default).
    pub log: Option<LogSink>,
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("host", &self.host)
            .field("port", &self.port)
            .field("threads", &self.threads)
            .field("queue_capacity", &self.queue_capacity)
            .field("max_body_bytes", &self.max_body_bytes)
            .field("result_cache_capacity", &self.result_cache_capacity)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("request_deadline", &self.request_deadline)
            .field("log", &self.log.is_some())
            .finish()
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            host: std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            port: 0,
            threads: 0,
            queue_capacity: 256,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            result_cache_capacity: 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
            log: None,
        }
    }
}

/// How the response-cache layers answered one POST request (the `cache=`
/// field of the request log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the response cache.
    Hit,
    /// Shared a concurrent identical computation in flight.
    Coalesced,
    /// Computed fresh.
    Miss,
    /// The caching layers were not consulted (GET endpoints, parse
    /// failures, errors before dispatch).
    Uncached,
}

impl CacheOutcome {
    /// The log-field spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Coalesced => "coalesced",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Uncached => "-",
        }
    }
}

/// Formats one structured request-log line:
///
/// ```text
/// method=POST path=/v1/plan status=200 micros=1234 cache=miss
/// ```
///
/// Space-separated `key=value` pairs, fixed key order, one line per
/// request; `cache` is a [`CacheOutcome`] spelling. The shape is pinned by
/// an integration test — production log scrapers may rely on it.
#[must_use]
pub fn format_request_log(
    method: &str,
    path: &str,
    status: u16,
    micros: u128,
    cache: CacheOutcome,
) -> String {
    format!(
        "method={method} path={path} status={status} micros={micros} cache={}",
        cache.as_str()
    )
}

/// Recursively sorts object keys so two spellings of the same JSON value
/// render to the same canonical string (the shim's `Value::Object`
/// preserves client field order, which must not split cache keys).
fn canonicalize(value: &Value) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        Value::Object(fields) => {
            let mut sorted: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        other => other.clone(),
    }
}

/// Service-level counters, all monotone since server start.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    responses_cached: AtomicU64,
    shed: AtomicU64,
}

/// Everything the request handlers share.
struct ServiceState {
    config: ServiceConfig,
    flights: FlightMap<String, Arc<Response>>,
    response_cache: Mutex<LruCache<String, Arc<Response>>>,
    counters: Counters,
}

/// Wire shape of `GET /v1/cache_stats`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CacheStatsResponse {
    /// Tiling-search memo-cache stats (process-wide).
    pub search: MemoCacheStats,
    /// Planner `(layer, arch)` memo-cache stats (process-wide).
    pub plan: MemoCacheStats,
    /// HTTP-layer stats for this server.
    pub service: ServiceStats,
}

/// One memo-cache section of [`CacheStatsResponse`] — the `search` (tiling
/// search engine) and `plan` (planner) caches share this shape.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MemoCacheStats {
    /// Lookups answered from the memo cache.
    pub hits: u64,
    /// Lookups computed (cache misses).
    pub misses: u64,
    /// Lookups that shared a concurrent identical computation.
    pub coalesced: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Resident entries.
    pub entries: u64,
    /// The LRU bound.
    pub capacity: u64,
    /// hits / (hits + misses), 0 when idle.
    pub hit_rate: f64,
}

impl From<dataflow::CacheStats> for MemoCacheStats {
    fn from(s: dataflow::CacheStats) -> Self {
        MemoCacheStats {
            hits: s.hits,
            misses: s.misses,
            coalesced: s.coalesced,
            evictions: s.evictions,
            entries: s.entries as u64,
            capacity: s.capacity as u64,
            hit_rate: s.hit_rate(),
        }
    }
}

/// The service section of [`CacheStatsResponse`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Requests fully processed (any status).
    pub requests: u64,
    /// Requests answered from the response cache.
    pub responses_cached: u64,
    /// Requests that shared a concurrent identical computation.
    pub coalesced: u64,
    /// Connections shed with 503 because the queue was full.
    pub shed: u64,
    /// Resident response-cache entries.
    pub response_cache_entries: u64,
    /// Response-cache bound.
    pub response_cache_capacity: u64,
}

impl ServiceState {
    fn new(config: ServiceConfig) -> Self {
        ServiceState {
            response_cache: Mutex::new(LruCache::new(config.result_cache_capacity)),
            config,
            flights: FlightMap::new(),
            counters: Counters::default(),
        }
    }

    fn cache_stats_response(&self) -> Response {
        let engine = dataflow::cache_stats();
        let planner = clb_core::plan_cache_stats();
        let (entries, capacity) = self
            .response_cache
            .lock()
            .map(|c| (c.len() as u64, c.capacity() as u64))
            .unwrap_or((0, 0));
        let stats = CacheStatsResponse {
            search: engine.into(),
            plan: planner.into(),
            service: ServiceStats {
                requests: self.counters.requests.load(Ordering::Relaxed),
                responses_cached: self.counters.responses_cached.load(Ordering::Relaxed),
                coalesced: self.flights.coalesced(),
                shed: self.counters.shed.load(Ordering::Relaxed),
                response_cache_entries: entries,
                response_cache_capacity: capacity,
            },
        };
        match serde_json::to_string_pretty(&stats) {
            Ok(body) => Response::json(200, body),
            Err(e) => Response::error(500, &e.to_string()),
        }
    }

    /// The cached/coalesced POST path. The canonical key is the endpoint
    /// plus the parsed, key-sorted, re-serialized body, so whitespace or
    /// key-order differences in client JSON cannot split identical queries.
    /// Responses travel as `Arc<Response>`: a cache hit clones a pointer
    /// inside the lock, never a multi-kilobyte body.
    fn post_response(&self, path: &str, body: &[u8]) -> (Arc<Response>, CacheOutcome) {
        let parsed: Value = match std::str::from_utf8(body)
            .map_err(|_| "request body is not valid UTF-8".to_string())
            .and_then(|text| {
                serde_json::from_str::<Value>(text).map_err(|e| format!("invalid JSON body: {e}"))
            }) {
            Ok(v) => v,
            Err(msg) => return (Arc::new(Response::error(400, &msg)), CacheOutcome::Uncached),
        };
        let canonical = match serde_json::to_string(&canonicalize(&parsed)) {
            Ok(c) => c,
            Err(e) => {
                return (
                    Arc::new(Response::error(
                        400,
                        &format!("unrenderable JSON body: {e}"),
                    )),
                    CacheOutcome::Uncached,
                )
            }
        };
        let key = format!("{path} {canonical}");
        if let Ok(mut cache) = self.response_cache.lock() {
            if let Some(hit) = cache.get(&key) {
                self.counters
                    .responses_cached
                    .fetch_add(1, Ordering::Relaxed);
                return (Arc::clone(hit), CacheOutcome::Hit);
            }
        }
        // The response cache is bounded by *entry count*, so one oversized
        // body class (a 256-candidate `/v1/dse` sweep runs to ~0.6 MB;
        // network-mode sweeps ~30 KB *per candidate*, so whole-model
        // sweeps beyond a handful of candidates also land here) could
        // otherwise pin cache_capacity × body_size of memory. Bodies
        // beyond this bound recompute instead — their expensive part (the
        // per-arch planning) is already memoized underneath, and identical
        // concurrent requests still coalesce.
        const MAX_CACHEABLE_BODY_BYTES: usize = 128 * 1024;
        // The leader populates the cache *inside* the flight, before it
        // retires: once a key has been computed, later requests always find
        // either the in-flight computation or the cached response.
        let (response, coalesced) = self.flights.run(key.clone(), || {
            let response = Arc::new(api::dispatch(path, &parsed));
            if response.status == 200 && response.body.len() <= MAX_CACHEABLE_BODY_BYTES {
                if let Ok(mut cache) = self.response_cache.lock() {
                    cache.insert(key.clone(), Arc::clone(&response));
                }
            }
            response
        });
        let outcome = if coalesced {
            CacheOutcome::Coalesced
        } else {
            CacheOutcome::Miss
        };
        (response, outcome)
    }

    fn route(&self, head: &http::Head, body: &[u8]) -> (Arc<Response>, CacheOutcome) {
        const POST_ENDPOINTS: [&str; 6] = [
            "/v1/bound",
            "/v1/sweep",
            "/v1/plan",
            "/v1/simulate",
            "/v1/network",
            "/v1/dse",
        ];
        const GET_ENDPOINTS: [&str; 2] = ["/healthz", "/v1/cache_stats"];
        let uncached = |r: Response| (Arc::new(r), CacheOutcome::Uncached);
        match (head.method.as_str(), head.path.as_str()) {
            ("GET", "/healthz") => uncached(Response::json(200, "{\"status\": \"ok\"}")),
            ("GET", "/v1/cache_stats") => uncached(self.cache_stats_response()),
            ("POST", path) if POST_ENDPOINTS.contains(&path) => self.post_response(path, body),
            (_, path) if POST_ENDPOINTS.contains(&path) || GET_ENDPOINTS.contains(&path) => {
                uncached(Response::error(
                    405,
                    &format!("method {} not allowed for {path}", head.method),
                ))
            }
            (_, path) => uncached(Response::error(404, &format!("no such endpoint `{path}`"))),
        }
    }

    /// Parses, routes and answers one connection (one request per
    /// connection; every response closes it).
    fn handle_connection(&self, stream: TcpStream) {
        let started = Instant::now();
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        let _ = stream.set_nodelay(true);
        let deadline = Some(Instant::now() + self.config.request_deadline);
        let mut reader = BufReader::new(&stream);
        let mut logged_head: Option<(String, String)> = None;
        let (response, outcome) = match http::read_head(&mut reader, deadline) {
            Ok(head) => {
                logged_head = Some((head.method.clone(), head.path.clone()));
                if head.content_length > self.config.max_body_bytes {
                    // Refuse before reading; the client may still be
                    // sending, so the write can race a reset — best effort.
                    (
                        Arc::new(Response::error(
                            413,
                            &HttpError::PayloadTooLarge {
                                limit: self.config.max_body_bytes,
                            }
                            .message(),
                        )),
                        CacheOutcome::Uncached,
                    )
                } else {
                    if head.expects_continue() && head.content_length > 0 {
                        let mut w = &stream;
                        if http::write_continue(&mut w).is_err() {
                            return;
                        }
                    }
                    match http::read_body(
                        &mut reader,
                        head.content_length,
                        self.config.max_body_bytes,
                        deadline,
                    ) {
                        Ok(body) => self.route(&head, &body),
                        Err(e) => (
                            Arc::new(Response::error(e.status(), &e.message())),
                            CacheOutcome::Uncached,
                        ),
                    }
                }
            }
            Err(e) => (
                Arc::new(Response::error(e.status(), &e.message())),
                CacheOutcome::Uncached,
            ),
        };
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let mut writer = &stream;
        let _ = response.write_to(&mut writer);
        let _ = stream.shutdown(std::net::Shutdown::Both);
        if let Some(sink) = &self.config.log {
            let (method, path) = logged_head.unwrap_or_else(|| ("-".to_string(), "-".to_string()));
            sink(&format_request_log(
                &method,
                &path,
                response.status,
                started.elapsed().as_micros(),
                outcome,
            ));
        }
    }
}

/// A bound, not-yet-running analysis server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (e.g. port already in use).
    pub fn bind(config: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((config.host, config.port))?;
        Ok(Server {
            listener,
            state: Arc::new(ServiceState::new(config)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name failure (effectively never).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    #[must_use]
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: Arc::clone(&self.stop),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// Runs the accept loop until [`StopHandle::stop`] is called: workers
    /// drain in-flight connections, then the call returns. Connections
    /// beyond the bounded queue are shed with `503`.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket failures (transient per-connection
    /// errors are tolerated).
    pub fn run(self) -> std::io::Result<()> {
        let threads = if self.state.config.threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            self.state.config.threads
        };
        let pool = {
            let state = Arc::clone(&self.state);
            WorkerPool::new(
                threads,
                self.state.config.queue_capacity,
                move |stream: TcpStream| state.handle_connection(stream),
            )
        };
        for connection in self.listener.incoming() {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            match connection {
                Ok(stream) => {
                    if let Err(stream) = pool.try_dispatch(stream) {
                        // Bounded queue full: shed instead of buffering.
                        self.state.counters.shed.fetch_add(1, Ordering::Relaxed);
                        let mut writer = &stream;
                        let _ = Response::error(503, "server is saturated; retry with backoff")
                            .write_to(&mut writer);
                    }
                }
                // Transient accept errors (e.g. the peer reset before we
                // got to it) should not kill the server.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => {}
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
                Err(e) => {
                    pool.shutdown();
                    return Err(e);
                }
            }
        }
        pool.shutdown();
        Ok(())
    }

    /// Binds-and-runs on a background thread, returning once the socket is
    /// accepting. The returned handle stops the server and joins the
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(config: ServiceConfig) -> std::io::Result<RunningServer> {
        let server = Server::bind(config)?;
        let addr = server.local_addr()?;
        let handle = server.stop_handle();
        let thread = std::thread::Builder::new()
            .name("clb-accept".to_string())
            .spawn(move || server.run())?;
        Ok(RunningServer {
            addr,
            handle,
            thread,
        })
    }
}

/// Stops a running server from any thread.
#[derive(Debug, Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    addr: Option<SocketAddr>,
}

impl StopHandle {
    /// Signals the accept loop to exit, waking it with a no-op connection.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(addr) = self.addr {
            // `accept` only notices the flag when a connection arrives.
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.flush();
            }
        }
    }
}

/// A server running on a background thread (see [`Server::spawn`]).
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    handle: StopHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl RunningServer {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain workers, join the thread.
    ///
    /// # Errors
    ///
    /// Propagates an accept-loop failure (a panic surfaces as
    /// [`std::io::ErrorKind::Other`]).
    pub fn shutdown(self) -> std::io::Result<()> {
        self.handle.stop();
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}
