//! The TCP server: accept loop, keep-alive connection lifecycle, routing,
//! request coalescing and the bounded response cache.
//!
//! ## Connection lifecycle
//!
//! Connections are readiness-driven, not thread-per-connection: the
//! accept loop registers each socket (bounded by
//! [`ServiceConfig::max_connections`]; past the cap the oldest *idle*
//! connection is evicted, and if every connection is mid-request the new
//! one is shed with `503 + Retry-After`), installs its socket timeouts
//! once, and parks it on the **event tier** — one epoll poller thread
//! ([`crate::poll::Poller`]) plus a small pool of I/O workers
//! ([`ServiceConfig::io_workers`]). A parked connection costs an fd and a
//! buffer; server thread count is independent of open-connection count.
//! Each connection cycles through:
//!
//! 1. **idle phase** — parked on the poller up to
//!    [`ServiceConfig::idle_timeout`] (the poller's timer, not
//!    `SO_RCVTIMEO`) waiting for the first byte of the next request; a
//!    silent peer is reaped (`idle_reaped`), an evicted or draining
//!    connection closes. When bytes arrive the poller deregisters the fd
//!    and hands the connection to an I/O worker;
//! 2. **request phase** — per-read socket timeouts
//!    ([`ServiceConfig::read_timeout`]) and a whole-request deadline
//!    ([`ServiceConfig::request_deadline`]) bound hostile peers: stalls
//!    and slow-drips surface as `408`, truncation as `400`;
//! 3. **admission** — analysis `POST`s take a [`Gate`] permit
//!    ([`ServiceConfig::threads`] concurrent computations) through a
//!    *non-blocking* `try_acquire`: a worker never waits on the gate, so
//!    ungated traffic (health, stats, shutdown) stays admissible under
//!    full compute load. A saturated gate instead **shelves** the framed
//!    request — connection and all — in a bounded wait room
//!    ([`ServiceConfig::queue_capacity`] entries); every permit release
//!    pumps the oldest shelved request back onto a worker. Beyond the
//!    room the request is shed with `503 + Retry-After` — the body was
//!    already read, so the connection stays consistent and the client
//!    retries on the same socket;
//! 4. **response** — written with `Connection: keep-alive` unless the
//!    client asked to close, the per-connection request bound
//!    ([`ServiceConfig::max_requests_per_connection`]) was reached, the
//!    request was unframeable (parse errors poison the byte stream), or
//!    the server is draining. A kept connection goes back to step 1 —
//!    served pipelined bytes first (user-space buffered bytes are
//!    invisible to epoll, so a connection with buffered input is never
//!    parked), then re-parked on the poller.
//!
//! ## Graceful drain
//!
//! [`StopHandle::stop`] (or `POST /v1/shutdown` when enabled) stops the
//! accept loop; idle keep-alive sockets are reaped immediately (their
//! shutdown wakes the poller with EOF), in-flight requests finish with
//! `Connection: close`, and stragglers past
//! [`ServiceConfig::drain_deadline`] are aborted (`drain_aborted`). The
//! event tier itself (poller + workers) is joined after the drain.
//!
//! ## Request path
//!
//! `POST` bodies are canonicalized (parsed and re-serialized JSON), the
//! canonical key goes through the bounded LRU **response cache**, then the
//! [`FlightMap`] — concurrent identical requests share one computation —
//! and finally [`api::dispatch`] runs the actual analysis (which
//! internally hits the engine's own memoized, coalesced tiling-search
//! cache). Responses over reused connections are byte-identical to
//! one-shot connections: only the `Connection:` header differs.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};
use std::time::{Duration, Instant};

use dataflow::{FlightMap, LruCache};
use serde::Value;

use crate::api;
use crate::http::{self, HttpError, Response};
use crate::poll::{peek_ready, Poller, Waker};
use crate::pool::{BoundedQueue, Gate, GatePermit, WaitGroup, WaitGuard};

/// Where structured request-log lines go when logging is enabled: one call
/// per completed request with the formatted line (no trailing newline).
/// `clb serve --log` installs a stderr writer; tests install collectors.
pub type LogSink = Arc<dyn Fn(&str) + Send + Sync>;

/// Seconds advertised in `Retry-After` on every load-shed `503`: the
/// waiting room drains at compute speed, so "immediately, with backoff" is
/// the honest hint.
pub const RETRY_AFTER_SECS: u32 = 1;

/// Server configuration. `Default` gives a localhost server on an
/// OS-assigned port with auto-sized workers — every field has a sensible
/// production value except `port`, which tests leave at 0 (ephemeral) and
/// `clb serve` sets from `--port`.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Bind address (default `127.0.0.1`).
    pub host: std::net::IpAddr,
    /// Bind port; 0 asks the OS for an ephemeral port.
    pub port: u16,
    /// Concurrent analysis computations (the [`Gate`] permit count);
    /// 0 means one per available CPU.
    pub threads: usize,
    /// I/O worker threads of the event tier — the threads that parse,
    /// route and answer requests on *ready* sockets (idle sockets are
    /// parked on the poller and cost no thread). 0 (the default) sizes
    /// the pool to the compute permit count plus headroom for socket
    /// I/O that blocks outside the [`Gate`]. Clamped to ≥ 1.
    pub io_workers: usize,
    /// Bounded waiting room for analysis requests beyond `threads`
    /// (overflow is shed with `503 + Retry-After`).
    pub queue_capacity: usize,
    /// Request-body cap in bytes (oversized requests get 413).
    pub max_body_bytes: usize,
    /// Response-cache bound in entries.
    pub result_cache_capacity: usize,
    /// Per-connection socket read timeout (bounds one silent `read`
    /// mid-request; firing surfaces as `408`).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout — without it a client that
    /// never reads its (large) response would pin a worker on a blocked
    /// `write` forever.
    pub write_timeout: Duration,
    /// Whole-request receive deadline (bounds a slow-drip client that
    /// keeps every individual read under `read_timeout`; firing surfaces
    /// as `408`).
    pub request_deadline: Duration,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the server reaps it — distinct from `read_timeout`, which
    /// bounds silence *inside* a request.
    pub idle_timeout: Duration,
    /// Requests served per connection before the server closes it
    /// (`Connection: close` on the final response); bounds per-client
    /// resource monopolies. Clamped to ≥ 1.
    pub max_requests_per_connection: usize,
    /// Cap on simultaneously open connections. At the cap, a new
    /// connection evicts the oldest idle one; when every connection is
    /// busy, the new one is shed with `503 + Retry-After`.
    pub max_connections: usize,
    /// Hard drain deadline: on shutdown, in-flight requests get this long
    /// to finish before their sockets are aborted (`drain_aborted`).
    pub drain_deadline: Duration,
    /// Enables `POST /v1/shutdown` (graceful drain over HTTP — the
    /// SIGTERM equivalent for deployments that cannot signal the
    /// process). Disabled by default; the endpoint answers 403 when off.
    pub allow_shutdown: bool,
    /// Structured request logging: one [`format_request_log`] line per
    /// completed request when set (`None` disables, the default).
    pub log: Option<LogSink>,
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("host", &self.host)
            .field("port", &self.port)
            .field("threads", &self.threads)
            .field("io_workers", &self.io_workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("max_body_bytes", &self.max_body_bytes)
            .field("result_cache_capacity", &self.result_cache_capacity)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("request_deadline", &self.request_deadline)
            .field("idle_timeout", &self.idle_timeout)
            .field(
                "max_requests_per_connection",
                &self.max_requests_per_connection,
            )
            .field("max_connections", &self.max_connections)
            .field("drain_deadline", &self.drain_deadline)
            .field("allow_shutdown", &self.allow_shutdown)
            .field("log", &self.log.is_some())
            .finish()
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            host: std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            port: 0,
            threads: 0,
            io_workers: 0,
            queue_capacity: 256,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            result_cache_capacity: 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 128,
            max_connections: 1024,
            drain_deadline: Duration::from_secs(5),
            allow_shutdown: false,
            log: None,
        }
    }
}

/// How the response-cache layers answered one POST request (the `cache=`
/// field of the request log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the response cache.
    Hit,
    /// Shared a concurrent identical computation in flight.
    Coalesced,
    /// Computed fresh.
    Miss,
    /// The caching layers were not consulted (GET endpoints, parse
    /// failures, sheds, errors before dispatch).
    Uncached,
}

impl CacheOutcome {
    /// The log-field spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Coalesced => "coalesced",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Uncached => "-",
        }
    }
}

/// Formats one structured request-log line:
///
/// ```text
/// method=POST path=/v1/plan status=200 micros=1234 cache=miss conn=7 trace=off
/// ```
///
/// Space-separated `key=value` pairs, fixed key order, one line per
/// request; `cache` is a [`CacheOutcome`] spelling and `conn` the server's
/// monotone connection id — consecutive lines sharing a `conn` value were
/// served over one reused keep-alive socket. The trailing `trace=on|off`
/// appears only on `/v1/simulate` and `/v1/plan` requests (the endpoints
/// that accept a `trace` option; `on` means the body carried a non-null
/// one). `/v1/network` requests instead end with ` net=<name>` — the
/// preset name (`vgg16` when the body omits `net`), `custom` for a custom
/// network object, or `-` when the body never parsed; the value is
/// sanitized to `[A-Za-z0-9_-]` and at most 32 chars so a hostile preset
/// string cannot forge extra `key=value` pairs. Answered `/v1/dse` sweeps
/// instead append the sweep funnel —
/// ` candidates=N pruned=N kept=N objective=cycles` (legacy sweeps log
/// `objective=-`; rejected DSE requests keep the base shape). A connection
/// aborted before its socket could be configured logs `status=0` with
/// `method=- path=-`. The shape is pinned by an integration test —
/// production log scrapers may rely on it.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn format_request_log(
    method: &str,
    path: &str,
    status: u16,
    micros: u128,
    cache: CacheOutcome,
    conn: u64,
    flags: &LogFlags,
    dse: Option<&api::DseLogMeta>,
) -> String {
    let trace = match flags.trace {
        None => "",
        Some(true) => " trace=on",
        Some(false) => " trace=off",
    };
    let net = match &flags.net {
        None => String::new(),
        Some(name) => format!(" net={name}"),
    };
    let dse = match dse {
        None => String::new(),
        Some(meta) => format!(
            " candidates={} pruned={} kept={} objective={}",
            meta.candidates,
            meta.pruned,
            meta.kept,
            meta.objective_str()
        ),
    };
    format!(
        "method={method} path={path} status={status} micros={micros} cache={} conn={conn}{trace}{net}{dse}",
        cache.as_str()
    )
}

/// Per-request log decorations computed from the request path and the
/// parsed body *before* dispatch: the `trace=` flag of `/v1/simulate` and
/// `/v1/plan`, and the `net=` tag of `/v1/network`. Derived from the
/// request — not the response — so cache hits, coalesced followers and
/// rejections all log the same value the leader would.
#[derive(Debug, Clone, Default)]
pub struct LogFlags {
    trace: Option<bool>,
    net: Option<String>,
}

impl LogFlags {
    /// Computes both flags for one request. `parsed` is `None` when the
    /// body never parsed as JSON (structural 4xx paths).
    fn of(path: &str, parsed: Option<&Value>) -> LogFlags {
        LogFlags {
            trace: trace_flag(path, parsed),
            net: net_flag(path, parsed),
        }
    }
}

/// The request-log `trace=` flag: `Some` only for the endpoints that
/// accept a `trace` option, `on` when the parsed body carries a
/// non-null one (unparseable bodies log `off`).
fn trace_flag(path: &str, parsed: Option<&Value>) -> Option<bool> {
    if path != "/v1/simulate" && path != "/v1/plan" {
        return None;
    }
    let on = parsed.is_some_and(|v| {
        matches!(v, Value::Object(fields)
            if fields.iter().any(|(k, f)| k == "trace" && !matches!(f, Value::Null)))
    });
    Some(on)
}

/// The request-log `net=` tag: `Some` only for `/v1/network`. Logs the
/// preset name (`vgg16` when the field is absent or null — the handler's
/// default), `custom` for a custom network object, and `-` for bodies
/// that never parsed or carry a non-string, non-object `net`. The name is
/// user-controlled, so it is clamped to `[A-Za-z0-9_-]` (other bytes
/// become `_`) and 32 chars — a space or `=` in a hostile preset string
/// must not forge extra `key=value` pairs in the pinned log shape.
fn net_flag(path: &str, parsed: Option<&Value>) -> Option<String> {
    if path != "/v1/network" {
        return None;
    }
    let Some(Value::Object(fields)) = parsed else {
        return Some("-".to_string());
    };
    let net = fields.iter().find(|(k, _)| k == "net").map(|(_, v)| v);
    Some(match net {
        None | Some(Value::Null) => "vgg16".to_string(),
        Some(Value::Object(_)) => "custom".to_string(),
        Some(Value::String(name)) => name
            .chars()
            .take(32)
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect(),
        Some(_) => "-".to_string(),
    })
}

/// Recursively sorts object keys so two spellings of the same JSON value
/// render to the same canonical string (the shim's `Value::Object`
/// preserves client field order, which must not split cache keys).
fn canonicalize(value: &Value) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        Value::Object(fields) => {
            let mut sorted: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        other => other.clone(),
    }
}

/// The fixed route vocabulary of the `latency` section of
/// `GET /v1/cache_stats`: every endpoint the server answers, plus a
/// trailing `other` bucket for 404s/aborts. The list (and its order) is
/// part of the wire shape — all routes always appear, so scrapers see a
/// stable schema even for routes that have served nothing yet.
pub const LATENCY_ROUTES: [&str; 11] = [
    "/healthz",
    "/v1/bound",
    "/v1/sweep",
    "/v1/plan",
    "/v1/simulate",
    "/v1/network",
    "/v1/dse",
    "/v1/dse/jobs",
    "/v1/cache_stats",
    "/v1/shutdown",
    "other",
];

/// Log2 bucket count of one route histogram: bucket `i` holds requests
/// whose latency has an `i`-bit microsecond value (upper bound
/// `2^i - 1 µs`), so 32 buckets span sub-microsecond to ~35 minutes —
/// beyond any deadline the server allows.
const LATENCY_BUCKETS: usize = 32;

/// The upper bound (inclusive, in µs) of log2 bucket `i` — the value
/// reported as a percentile when the quantile rank lands in that bucket.
fn bucket_upper_micros(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// One route's lock-free latency histogram: log2 buckets of microsecond
/// measurements plus the exact maximum. Recording is two relaxed atomic
/// ops on the hot path; percentiles are derived at snapshot time.
#[derive(Debug, Default)]
struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    max_micros: AtomicU64,
}

impl LatencyHistogram {
    fn record(&self, micros: u128) {
        let micros = u64::try_from(micros).unwrap_or(u64::MAX);
        let bucket = ((u64::BITS - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    fn snapshot(&self, route: &str) -> RouteLatencyStats {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        // The smallest bucket whose cumulative count reaches the 1-based
        // quantile rank; the reported value is that bucket's upper bound
        // (a conservative estimate — never below the true percentile's
        // bucket).
        let quantile = |numerator: u128, denominator: u128| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = (u128::from(total) * numerator).div_ceil(denominator).max(1);
            let mut cumulative: u128 = 0;
            for (i, &count) in counts.iter().enumerate() {
                cumulative += u128::from(count);
                if cumulative >= rank {
                    return bucket_upper_micros(i);
                }
            }
            bucket_upper_micros(LATENCY_BUCKETS - 1)
        };
        RouteLatencyStats {
            route: route.to_string(),
            count: total,
            p50_micros: quantile(1, 2),
            p99_micros: quantile(99, 100),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Per-route latency histograms, one per [`LATENCY_ROUTES`] entry.
#[derive(Debug, Default)]
struct LatencyRecorder {
    routes: [LatencyHistogram; LATENCY_ROUTES.len()],
}

impl LatencyRecorder {
    /// Which histogram a request path lands in: exact route match (job
    /// polls share the `/v1/dse/jobs` bucket — per-job-id routes would be
    /// unbounded), or the trailing `other` bucket (404s, aborted
    /// connections logged as `-`).
    fn index_of(path: &str) -> usize {
        let lookup = if path.starts_with("/v1/dse/jobs") {
            "/v1/dse/jobs"
        } else {
            path
        };
        LATENCY_ROUTES
            .iter()
            .position(|&route| route == lookup)
            .unwrap_or(LATENCY_ROUTES.len() - 1)
    }

    fn record(&self, path: &str, micros: u128) {
        self.routes[Self::index_of(path)].record(micros);
    }

    fn snapshot(&self) -> Vec<RouteLatencyStats> {
        LATENCY_ROUTES
            .iter()
            .zip(&self.routes)
            .map(|(route, histogram)| histogram.snapshot(route))
            .collect()
    }
}

/// Service-level counters, all monotone since server start (except the
/// open-connection gauge, which lives in [`ConnTable`]).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    responses_cached: AtomicU64,
    shed: AtomicU64,
    keepalive_reuses: AtomicU64,
    idle_reaped: AtomicU64,
    drain_aborted: AtomicU64,
    dse_pruned: AtomicU64,
    dse_jobs: AtomicU64,
}

/// Takes a mutex guard even when a panicking handler poisoned the lock.
///
/// The server's shared tables (connections, jobs, the response cache)
/// hold plain data with no invariant spanning a critical section, so a
/// poisoned lock carries no corruption — but propagating the
/// `PoisonError` (the old `.expect(...)` behavior) turned one panicking
/// request into a cascade that killed every subsequent connection and
/// job. Recovery is the correct policy: log the event once per access
/// and keep serving.
fn lock_recover<'a, T>(mutex: &'a Mutex<T>, what: &str) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        eprintln!("clb-service: {what} lock poisoned by a panicking handler; recovering");
        poisoned.into_inner()
    })
}

/// One live connection as the accept loop and reaper see it: a second
/// handle to the socket (so eviction and drain can shut it down from
/// outside its own thread) plus its idle state.
struct ConnEntry {
    stream: TcpStream,
    /// `Some(since)` while the connection sits between requests (the only
    /// state in which it may be evicted); `None` while serving.
    idle_since: Option<Instant>,
}

/// The live-connection registry: the open-connection gauge, the
/// oldest-idle eviction policy, and the drain reaper all operate on this
/// one table.
#[derive(Default)]
struct ConnTable {
    entries: Mutex<HashMap<u64, ConnEntry>>,
    next_id: AtomicU64,
    /// Set once at drain start (under the entries lock): connections
    /// checking in afterwards close instead of idling.
    draining: AtomicBool,
}

impl ConnTable {
    /// Registers a connection (idle until its thread marks it busy),
    /// returning its id. The passed stream must be an independent handle
    /// (`try_clone`) — the table shuts it down to evict or abort.
    fn register(&self, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = lock_recover(&self.entries, "conn table");
        entries.insert(
            id,
            ConnEntry {
                stream,
                idle_since: Some(Instant::now()),
            },
        );
        id
    }

    fn len(&self) -> usize {
        lock_recover(&self.entries, "conn table").len()
    }

    /// Marks a connection idle between requests. Returns `false` when the
    /// server is draining (or the entry is already gone) — the caller
    /// closes instead of waiting for a next request that must not come.
    fn mark_idle(&self, id: u64) -> bool {
        let mut entries = lock_recover(&self.entries, "conn table");
        if self.draining.load(Ordering::Relaxed) {
            return false;
        }
        match entries.get_mut(&id) {
            Some(entry) => {
                entry.idle_since = Some(Instant::now());
                true
            }
            None => false,
        }
    }

    /// Marks a connection busy serving a request. Returns `false` when the
    /// entry was evicted or reaped in the meantime — the caller closes.
    fn mark_busy(&self, id: u64) -> bool {
        let mut entries = lock_recover(&self.entries, "conn table");
        match entries.get_mut(&id) {
            Some(entry) => {
                entry.idle_since = None;
                true
            }
            None => false,
        }
    }

    fn remove(&self, id: u64) {
        lock_recover(&self.entries, "conn table").remove(&id);
    }

    /// Evicts the connection idle the longest: shuts its socket down (its
    /// thread wakes with EOF and exits) and removes it. Returns `false`
    /// when no connection is idle.
    fn evict_oldest_idle(&self) -> bool {
        let mut entries = lock_recover(&self.entries, "conn table");
        let oldest = entries
            .iter()
            .filter_map(|(id, e)| e.idle_since.map(|since| (since, *id)))
            .min_by_key(|(since, _)| *since)
            .map(|(_, id)| id);
        match oldest {
            Some(id) => {
                if let Some(entry) = entries.remove(&id) {
                    let _ = entry.stream.shutdown(std::net::Shutdown::Both);
                }
                true
            }
            None => false,
        }
    }

    /// Starts the drain: flags the table (late `mark_idle` calls now
    /// refuse) and reaps every currently idle connection. Returns how many
    /// were reaped; busy connections stay and finish their request.
    fn begin_drain(&self) -> u64 {
        let mut entries = lock_recover(&self.entries, "conn table");
        self.draining.store(true, Ordering::Relaxed);
        let idle: Vec<u64> = entries
            .iter()
            .filter(|(_, e)| e.idle_since.is_some())
            .map(|(id, _)| *id)
            .collect();
        for id in &idle {
            if let Some(entry) = entries.remove(id) {
                let _ = entry.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        idle.len() as u64
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// The hard-deadline abort: shuts down every remaining socket so
    /// straggler threads unblock and exit. Returns how many were aborted.
    fn abort_all(&self) -> u64 {
        let entries = lock_recover(&self.entries, "conn table");
        for entry in entries.values() {
            let _ = entry.stream.shutdown(std::net::Shutdown::Both);
        }
        entries.len() as u64
    }
}

/// What one dispatched POST produced: the response plus the `/v1/dse`
/// request-log metadata. Cached and coalesced together, so cache hits and
/// coalesced followers log the same sweep funnel the leader computed.
struct Produced {
    response: Response,
    dse: Option<api::DseLogMeta>,
}

impl Produced {
    fn uncached(response: Response) -> Arc<Produced> {
        Arc::new(Produced {
            response,
            dse: None,
        })
    }
}

/// Concurrently running job-mode `/v1/dse` sweeps beyond this are shed
/// with `503 + Retry-After` at acceptance — background sweeps already
/// queue on the [`Gate`] one by one, so a deep job backlog only delays
/// every poll without computing anything sooner.
const MAX_RUNNING_DSE_JOBS: usize = 8;

/// Completed jobs retained for polling. Past the bound the oldest
/// completed job is evicted (its id polls 404); running jobs are never
/// evicted.
const DSE_JOB_RETENTION: usize = 64;

/// One accepted job-mode `/v1/dse` sweep's lifecycle state.
enum JobState {
    /// The background thread is sweeping; polls answer `running` with
    /// live progress read from these shared counters.
    Running {
        processed: Arc<AtomicU64>,
        pruned: Arc<AtomicU64>,
    },
    /// The sweep finished; polls answer the final response verbatim.
    Done(Response),
}

/// What [`JobTable::begin`] decided about a job-mode POST.
enum JobAdmission {
    /// Registered; the caller spawns the sweep thread and feeds these
    /// progress counters.
    New {
        processed: Arc<AtomicU64>,
        pruned: Arc<AtomicU64>,
    },
    /// The id is already registered (running or done) — idempotent
    /// re-POST, nothing to spawn.
    Existing,
    /// [`MAX_RUNNING_DSE_JOBS`] sweeps are already running; shed.
    Saturated,
}

/// The in-memory registry of accepted job-mode `/v1/dse` sweeps, keyed by
/// the deterministic job id ([`api::dse_job_id`]), in acceptance order.
#[derive(Default)]
struct JobTable {
    entries: Mutex<Vec<(String, JobState)>>,
}

impl JobTable {
    fn begin(&self, id: &str) -> JobAdmission {
        let mut entries = lock_recover(&self.entries, "job table");
        if entries.iter().any(|(existing, _)| existing == id) {
            return JobAdmission::Existing;
        }
        let running = entries
            .iter()
            .filter(|(_, state)| matches!(state, JobState::Running { .. }))
            .count();
        if running >= MAX_RUNNING_DSE_JOBS {
            return JobAdmission::Saturated;
        }
        let processed = Arc::new(AtomicU64::new(0));
        let pruned = Arc::new(AtomicU64::new(0));
        entries.push((
            id.to_string(),
            JobState::Running {
                processed: Arc::clone(&processed),
                pruned: Arc::clone(&pruned),
            },
        ));
        JobAdmission::New { processed, pruned }
    }

    fn complete(&self, id: &str, response: Response) {
        let mut entries = lock_recover(&self.entries, "job table");
        if let Some(entry) = entries.iter_mut().find(|(existing, _)| existing == id) {
            entry.1 = JobState::Done(response);
        }
        while entries.len() > DSE_JOB_RETENTION {
            match entries
                .iter()
                .position(|(_, state)| matches!(state, JobState::Done(_)))
            {
                Some(oldest_done) => {
                    entries.remove(oldest_done);
                }
                None => break,
            }
        }
    }

    fn poll(&self, id: &str) -> Option<Response> {
        let entries = lock_recover(&self.entries, "job table");
        entries
            .iter()
            .find(|(existing, _)| existing == id)
            .map(|(_, state)| match state {
                JobState::Running { processed, pruned } => Response::json(
                    200,
                    api::dse_job_running_body(
                        id,
                        processed.load(Ordering::Relaxed),
                        pruned.load(Ordering::Relaxed),
                    ),
                ),
                JobState::Done(response) => response.clone(),
            })
    }
}

/// Everything the request handlers share. `counters`, `gate` and `jobs`
/// sit behind their own `Arc`s because job-mode `/v1/dse` sweeps outlive
/// the connection that accepted them: the background thread keeps these
/// three alive while the rest of the state is only reachable through the
/// connection threads.
struct ServiceState {
    config: ServiceConfig,
    flights: FlightMap<String, Arc<Produced>>,
    response_cache: Mutex<LruCache<String, Arc<Produced>>>,
    counters: Arc<Counters>,
    latency: LatencyRecorder,
    gate: Arc<Gate>,
    jobs: Arc<JobTable>,
    table: ConnTable,
    /// Framed requests waiting for a [`Gate`] permit, each owning its
    /// connection — the event tier's waiting room holds *connections*,
    /// not blocked worker threads, so compute saturation can never
    /// consume the serving plane. Bounded by
    /// [`ServiceConfig::queue_capacity`]; a request that finds the room
    /// full is shed (`503 + Retry-After`). Entries leave when a permit
    /// release pumps them back onto the worker queue ([`Self::admit_next`]).
    wait_room: Mutex<VecDeque<(Conn, PendingRequest)>>,
    /// The event tier's worker queue, set once at tier startup;
    /// [`Self::admit_next`] pushes re-admissions here from whatever
    /// thread releases a permit (I/O workers and DSE job threads alike).
    ready_queue: OnceLock<Arc<BoundedQueue<Work>>>,
    /// Weak self-handle (set by [`Server::bind`]) so detached DSE job
    /// threads — which deliberately capture only the `Arc`'d slices of
    /// the state — can pump the wait room when their permit releases.
    self_ref: OnceLock<Weak<ServiceState>>,
    /// Set by [`Server::bind`]; lets `POST /v1/shutdown` trigger the same
    /// drain as [`StopHandle::stop`].
    stopper: OnceLock<StopHandle>,
}

/// Wire shape of `GET /v1/cache_stats`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CacheStatsResponse {
    /// Tiling-search memo-cache stats (process-wide).
    pub search: MemoCacheStats,
    /// Planner `(layer, arch)` memo-cache stats (process-wide).
    pub plan: MemoCacheStats,
    /// HTTP-layer stats for this server.
    pub service: ServiceStats,
    /// Per-route latency histograms, one entry per [`LATENCY_ROUTES`]
    /// route in that fixed order (all routes always present).
    pub latency: Vec<RouteLatencyStats>,
}

/// One route's entry in the `latency` section of `GET /v1/cache_stats`:
/// request count and latency percentiles in microseconds, derived from a
/// 32-bucket log2 histogram of the same measurement the request log's
/// `micros=` field reports. Percentiles are bucket upper bounds (so `p50`
/// of a route whose requests all take ~100 µs reads `127`); `max` is
/// exact.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RouteLatencyStats {
    /// The route (a [`LATENCY_ROUTES`] entry).
    pub route: String,
    /// Requests measured.
    pub count: u64,
    /// Median latency in µs (log2-bucket upper bound), 0 when idle.
    pub p50_micros: u64,
    /// 99th-percentile latency in µs (log2-bucket upper bound), 0 when idle.
    pub p99_micros: u64,
    /// Largest single latency in µs (exact), 0 when idle.
    pub max_micros: u64,
}

/// One memo-cache section of [`CacheStatsResponse`] — the `search` (tiling
/// search engine) and `plan` (planner) caches share this shape.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MemoCacheStats {
    /// Lookups answered from the memo cache.
    pub hits: u64,
    /// Lookups computed (cache misses).
    pub misses: u64,
    /// Lookups that shared a concurrent identical computation.
    pub coalesced: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Resident entries.
    pub entries: u64,
    /// The LRU bound.
    pub capacity: u64,
    /// hits / (hits + misses), 0 when idle.
    pub hit_rate: f64,
}

impl From<dataflow::CacheStats> for MemoCacheStats {
    fn from(s: dataflow::CacheStats) -> Self {
        MemoCacheStats {
            hits: s.hits,
            misses: s.misses,
            coalesced: s.coalesced,
            evictions: s.evictions,
            entries: s.entries as u64,
            capacity: s.capacity as u64,
            hit_rate: s.hit_rate(),
        }
    }
}

/// The service section of [`CacheStatsResponse`] — request counters plus
/// the connection-lifecycle counters the keep-alive tier exposes.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Requests fully processed (any status).
    pub requests: u64,
    /// Requests answered from the response cache.
    pub responses_cached: u64,
    /// Requests that shared a concurrent identical computation.
    pub coalesced: u64,
    /// Requests (or over-cap connections) shed with `503 + Retry-After`.
    pub shed: u64,
    /// Currently open connections (a gauge, not a monotone counter).
    pub connections_open: u64,
    /// Requests served on a reused keep-alive connection (the second and
    /// later requests of each connection).
    pub keepalive_reuses: u64,
    /// Idle keep-alive connections closed by the server: idle-timeout
    /// reaps, oldest-idle evictions at the connection cap, and idle
    /// connections reaped at drain start.
    pub idle_reaped: u64,
    /// In-flight connections aborted at the drain hard deadline.
    pub drain_aborted: u64,
    /// Candidates discarded by the staged `/v1/dse` bound stage, summed
    /// over completed sweeps (synchronous, streamed and job-mode alike).
    pub dse_pruned: u64,
    /// Job-mode `/v1/dse` sweeps accepted (each spawned one background
    /// run; idempotent re-POSTs of an accepted job do not recount).
    pub dse_jobs: u64,
    /// Resident response-cache entries.
    pub response_cache_entries: u64,
    /// Response-cache bound.
    pub response_cache_capacity: u64,
}

/// One live connection as the event tier carries it between the poller
/// and the I/O workers: the socket behind its buffered reader, the
/// per-connection request count (the keep-alive budget survives parking),
/// and the drain guard that keeps [`Server::run`]'s wait-group honest.
/// Dropping a `Conn` closes the socket and releases the guard.
struct Conn {
    id: u64,
    reader: BufReader<TcpStream>,
    /// Requests served so far — `served > 1` counts as a keep-alive reuse.
    served: usize,
    _guard: WaitGuard,
}

impl Conn {
    fn fd(&self) -> RawFd {
        self.reader.get_ref().as_raw_fd()
    }
}

/// A fully framed request whose gate admission is deferred: everything
/// `serve_one` had consumed off the socket when it found every permit
/// busy, carried with its connection into the wait room and resumed
/// verbatim once a permit release pumps it back onto a worker.
struct PendingRequest {
    /// When the bytes started arriving — latency is measured from first
    /// read, so time shelved counts, exactly as waiting-room time did.
    started: Instant,
    head: http::Head,
    body: Vec<u8>,
}

/// What [`ServiceState::serve_one`] decided about the next request.
enum ServeOutcome {
    /// The request was answered (or aborted); `true` keeps the connection.
    Done(bool),
    /// The request is framed but every permit is busy: the caller moves
    /// the connection into the wait room (or sheds when the room is full).
    Shelve(PendingRequest),
}

/// How a framed request got past the admission point.
enum Admission<'a> {
    /// Not a gated endpoint — no permit involved.
    Ungated,
    /// Holding a compute permit.
    Granted(GatePermit<'a>),
    /// Gate and wait room both full: answer `503 + Retry-After`.
    Shed,
}

/// One unit of I/O-worker work.
enum Work {
    /// The poller reported this parked connection readable.
    Ready(Conn),
    /// A permit release pumped this shelved request; re-attempt admission.
    Admit(Conn, PendingRequest),
}

impl Work {
    fn conn_id(&self) -> u64 {
        match self {
            Work::Ready(conn) | Work::Admit(conn, _) => conn.id,
        }
    }
}

impl ServiceState {
    fn new(config: ServiceConfig) -> Self {
        let permits = if config.threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            config.threads
        };
        ServiceState {
            response_cache: Mutex::new(LruCache::new(config.result_cache_capacity)),
            gate: Arc::new(Gate::new(permits, config.queue_capacity)),
            config,
            flights: FlightMap::new(),
            counters: Arc::new(Counters::default()),
            latency: LatencyRecorder::default(),
            jobs: Arc::new(JobTable::default()),
            table: ConnTable::default(),
            wait_room: Mutex::new(VecDeque::new()),
            ready_queue: OnceLock::new(),
            self_ref: OnceLock::new(),
            stopper: OnceLock::new(),
        }
    }

    /// The event tier's I/O worker count: the configured value (clamped
    /// to ≥ 1), or — for the auto default of 0 — the compute permit
    /// count plus headroom, so every gated computation can proceed while
    /// spare workers keep answering ungated traffic (health, stats,
    /// sheds) and absorbing socket I/O stalls.
    fn io_workers(&self) -> usize {
        if self.config.io_workers == 0 {
            self.gate.permits() + 4
        } else {
            self.config.io_workers.max(1)
        }
    }

    fn service_stats(&self) -> ServiceStats {
        let (entries, capacity) = {
            let cache = lock_recover(&self.response_cache, "response cache");
            (cache.len() as u64, cache.capacity() as u64)
        };
        ServiceStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            responses_cached: self.counters.responses_cached.load(Ordering::Relaxed),
            coalesced: self.flights.coalesced(),
            shed: self.counters.shed.load(Ordering::Relaxed),
            connections_open: self.table.len() as u64,
            keepalive_reuses: self.counters.keepalive_reuses.load(Ordering::Relaxed),
            idle_reaped: self.counters.idle_reaped.load(Ordering::Relaxed),
            drain_aborted: self.counters.drain_aborted.load(Ordering::Relaxed),
            dse_pruned: self.counters.dse_pruned.load(Ordering::Relaxed),
            dse_jobs: self.counters.dse_jobs.load(Ordering::Relaxed),
            response_cache_entries: entries,
            response_cache_capacity: capacity,
        }
    }

    fn cache_stats_response(&self) -> Response {
        let stats = CacheStatsResponse {
            search: dataflow::cache_stats().into(),
            plan: clb_core::plan_cache_stats().into(),
            service: self.service_stats(),
            latency: self.latency.snapshot(),
        };
        match serde_json::to_string_pretty(&stats) {
            Ok(body) => Response::json(200, body),
            Err(e) => Response::error(500, &e.to_string()),
        }
    }

    /// The cached/coalesced POST path. The canonical key is the endpoint
    /// plus the parsed, key-sorted, re-serialized body, so whitespace or
    /// key-order differences in client JSON cannot split identical queries.
    /// Responses travel as `Arc<Response>`: a cache hit clones a pointer
    /// inside the lock, never a multi-kilobyte body.
    fn post_response(
        &self,
        path: &str,
        body: &[u8],
    ) -> (Arc<Produced>, CacheOutcome, LogFlags) {
        let parsed: Value = match std::str::from_utf8(body)
            .map_err(|_| "request body is not valid UTF-8".to_string())
            .and_then(|text| {
                serde_json::from_str::<Value>(text).map_err(|e| format!("invalid JSON body: {e}"))
            }) {
            Ok(v) => v,
            Err(msg) => {
                return (
                    Produced::uncached(Response::error(400, &msg)),
                    CacheOutcome::Uncached,
                    LogFlags::of(path, None),
                )
            }
        };
        let flags = LogFlags::of(path, Some(&parsed));
        // Job-mode `/v1/dse` never enters the cache or the flight map: an
        // acceptance must register the job and spawn its sweep thread,
        // which the pure dispatch cannot do, and idempotency is keyed on
        // the job id instead of the canonical body.
        if path == "/v1/dse" && api::stream_mode_hint(&parsed) == api::StreamMode::Job {
            return (
                self.dse_job_response(&parsed),
                CacheOutcome::Uncached,
                flags,
            );
        }
        let canonical = match serde_json::to_string(&canonicalize(&parsed)) {
            Ok(c) => c,
            Err(e) => {
                return (
                    Produced::uncached(Response::error(
                        400,
                        &format!("unrenderable JSON body: {e}"),
                    )),
                    CacheOutcome::Uncached,
                    flags,
                )
            }
        };
        let key = format!("{path} {canonical}");
        if let Some(hit) = lock_recover(&self.response_cache, "response cache").get(&key) {
            self.counters
                .responses_cached
                .fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), CacheOutcome::Hit, flags);
        }
        // The response cache is bounded by *entry count*, so one oversized
        // body class (a 256-candidate `/v1/dse` sweep runs to ~0.6 MB;
        // network-mode sweeps ~30 KB *per candidate*, so whole-model
        // sweeps beyond a handful of candidates also land here) could
        // otherwise pin cache_capacity × body_size of memory. Bodies
        // beyond this bound recompute instead — their expensive part (the
        // per-arch planning) is already memoized underneath, and identical
        // concurrent requests still coalesce.
        const MAX_CACHEABLE_BODY_BYTES: usize = 128 * 1024;
        // The leader populates the cache *inside* the flight, before it
        // retires: once a key has been computed, later requests always find
        // either the in-flight computation or the cached response.
        let (produced, coalesced) = self.flights.run(key.clone(), || {
            let (response, dse) = api::dispatch_with_meta(path, &parsed);
            // The prune counter observes each sweep once, here at compute
            // time — cache hits and coalesced followers reuse the result
            // without re-counting work that never re-ran.
            if let Some(meta) = &dse {
                self.counters
                    .dse_pruned
                    .fetch_add(meta.pruned, Ordering::Relaxed);
            }
            let produced = Arc::new(Produced { response, dse });
            if produced.response.status == 200
                && produced.response.body.len() <= MAX_CACHEABLE_BODY_BYTES
            {
                lock_recover(&self.response_cache, "response cache")
                    .insert(key.clone(), Arc::clone(&produced));
            }
            produced
        });
        let outcome = if coalesced {
            CacheOutcome::Coalesced
        } else {
            CacheOutcome::Miss
        };
        (produced, outcome, flags)
    }

    /// Accepts (or re-acknowledges) a job-mode `/v1/dse` request: validates
    /// the whole spec up front (a bad request is rejected before a job
    /// exists), registers the deterministic job id, spawns the background
    /// sweep thread and answers the acceptance body immediately.
    /// Re-POSTing an accepted job returns the same acceptance without
    /// spawning anything; past [`MAX_RUNNING_DSE_JOBS`] running sweeps the
    /// job is shed with `503 + Retry-After`.
    fn dse_job_response(&self, parsed: &Value) -> Arc<Produced> {
        let spec = match api::prepare_dse_job(parsed) {
            Ok(spec) => spec,
            Err(e) => return Produced::uncached(e.into_response()),
        };
        let accepted = Arc::new(Produced {
            response: Response::json(200, spec.acceptance_body()),
            dse: Some(spec.meta()),
        });
        match self.jobs.begin(&spec.id) {
            JobAdmission::Existing => accepted,
            JobAdmission::Saturated => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                Produced::uncached(Response::unavailable(
                    "too many DSE jobs running; retry with backoff",
                    RETRY_AFTER_SECS,
                ))
            }
            JobAdmission::New { processed, pruned } => {
                self.counters.dse_jobs.fetch_add(1, Ordering::Relaxed);
                let jobs = Arc::clone(&self.jobs);
                let gate = Arc::clone(&self.gate);
                let counters = Arc::clone(&self.counters);
                // Weak: the job must not keep a stopped server's state
                // alive, but its permit release may be the one a shelved
                // request is waiting for — upgrade to pump the wait room.
                let state = self.self_ref.get().cloned();
                let job_id = spec.id.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("clb-dse-job-{}", &job_id[..8.min(job_id.len())]))
                    .spawn(move || {
                        // The sweep takes a normal gate permit: background
                        // jobs queue behind interactive requests instead of
                        // oversubscribing the compute pool.
                        let mut held_permit = false;
                        let response = match gate.acquire() {
                            None => Response::unavailable(
                                "server was saturated; re-submit the job",
                                RETRY_AFTER_SECS,
                            ),
                            Some(_permit) => {
                                held_permit = true;
                                let (response, pruned_total) = spec.run(&mut |done, cut| {
                                    processed.store(done as u64, Ordering::Relaxed);
                                    pruned.store(cut, Ordering::Relaxed);
                                });
                                counters
                                    .dse_pruned
                                    .fetch_add(pruned_total, Ordering::Relaxed);
                                response
                            }
                        };
                        jobs.complete(&spec.id, response);
                        if held_permit {
                            if let Some(state) = state.and_then(|weak| weak.upgrade()) {
                                state.admit_next();
                            }
                        }
                    });
                if spawned.is_err() {
                    self.jobs.complete(
                        &job_id,
                        Response::error(500, "could not spawn the job thread"),
                    );
                }
                accepted
            }
        }
    }

    /// The drain trigger behind `POST /v1/shutdown` (when enabled): flips
    /// the same stop flag as [`StopHandle::stop`], so the accept loop
    /// begins the graceful drain while this response is still in flight.
    fn shutdown_response(&self) -> Response {
        if !self.config.allow_shutdown {
            return Response::error(
                403,
                "shutdown over HTTP is disabled; start the server with --allow-shutdown",
            );
        }
        match self.stopper.get() {
            Some(stopper) => {
                stopper.stop();
                Response::json(200, "{\"status\": \"draining\"}")
            }
            None => Response::error(500, "server has no stop handle"),
        }
    }

    /// The analysis endpoints whose compute is bounded by the [`Gate`].
    /// `GET`s (health, stats) and the shutdown control plane stay
    /// admissible under full load on purpose.
    fn is_gated(method: &str, path: &str) -> bool {
        const POST_ENDPOINTS: [&str; 6] = [
            "/v1/bound",
            "/v1/sweep",
            "/v1/plan",
            "/v1/simulate",
            "/v1/network",
            "/v1/dse",
        ];
        method == "POST" && POST_ENDPOINTS.contains(&path)
    }

    fn route(&self, head: &http::Head, body: &[u8]) -> (Arc<Produced>, CacheOutcome, LogFlags) {
        const POST_ENDPOINTS: [&str; 7] = [
            "/v1/bound",
            "/v1/sweep",
            "/v1/plan",
            "/v1/simulate",
            "/v1/network",
            "/v1/dse",
            "/v1/shutdown",
        ];
        const GET_ENDPOINTS: [&str; 2] = ["/healthz", "/v1/cache_stats"];
        let uncached =
            |r: Response| (Produced::uncached(r), CacheOutcome::Uncached, LogFlags::default());
        match (head.method.as_str(), head.path.as_str()) {
            ("GET", "/healthz") => uncached(Response::json(200, "{\"status\": \"ok\"}")),
            ("GET", "/v1/cache_stats") => uncached(self.cache_stats_response()),
            ("GET", path) if path.starts_with("/v1/dse/jobs/") => {
                let id = &path["/v1/dse/jobs/".len()..];
                uncached(match self.jobs.poll(id) {
                    Some(response) => response,
                    None => Response::error(
                        404,
                        &format!(
                            "no such DSE job `{id}` (the newest {DSE_JOB_RETENTION} \
                             completed jobs are retained)"
                        ),
                    ),
                })
            }
            (_, path) if path.starts_with("/v1/dse/jobs/") => uncached(Response::error(
                405,
                &format!("method {} not allowed for {path}", head.method),
            )),
            ("POST", "/v1/shutdown") => uncached(self.shutdown_response()),
            ("POST", path) if POST_ENDPOINTS.contains(&path) => self.post_response(path, body),
            (_, path) if POST_ENDPOINTS.contains(&path) || GET_ENDPOINTS.contains(&path) => {
                uncached(Response::error(
                    405,
                    &format!("method {} not allowed for {path}", head.method),
                ))
            }
            (_, path) => uncached(Response::error(404, &format!("no such endpoint `{path}`"))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn log_request(
        &self,
        method: &str,
        path: &str,
        status: u16,
        started: Instant,
        outcome: CacheOutcome,
        conn: u64,
        flags: &LogFlags,
        dse: Option<&api::DseLogMeta>,
    ) {
        let micros = started.elapsed().as_micros();
        // The histograms observe every request, logging enabled or not —
        // they feed `/v1/cache_stats`, not the log sink.
        self.latency.record(path, micros);
        if let Some(sink) = &self.config.log {
            sink(&format_request_log(
                method, path, status, micros, outcome, conn, flags, dse,
            ));
        }
    }

    /// Parses the body of a `POST /v1/dse` request whose `stream` field
    /// asks for the chunked transport. `None` for everything else —
    /// including bodies that do not parse, which fall through to the
    /// normal path and its 400.
    fn streamed_dse_body(head: &http::Head, body: &[u8]) -> Option<Value> {
        if head.method != "POST" || head.path != "/v1/dse" {
            return None;
        }
        let parsed: Value = std::str::from_utf8(body)
            .ok()
            .and_then(|text| serde_json::from_str(text).ok())?;
        (api::stream_mode_hint(&parsed) == api::StreamMode::Chunked).then_some(parsed)
    }

    /// Serves one chunked-transport `/v1/dse` request — the caller holds
    /// the gate permit (admission happened at the framing layer like any
    /// gated POST): validates the whole request through
    /// [`api::dse_staged_stream`] — errors before the first chunk
    /// still answer as a plain framed response — then writes
    /// `Transfer-Encoding: chunked` frames straight to the socket: one per
    /// frontier snapshot, then the final body (byte-identical to the
    /// `"stream": false` response), then the terminal zero chunk. Streams
    /// bypass the response cache and the flight map: the transport's value
    /// is live progress, and the final body is reachable cacheably via the
    /// synchronous mode anyway. Returns `(status, write_ok, meta)` for the
    /// request log.
    fn stream_dse(
        &self,
        stream: &TcpStream,
        parsed: &Value,
        keep: bool,
    ) -> (u16, bool, Option<api::DseLogMeta>) {
        let mut writer = stream;
        let mut write_ok = true;
        let mut header_sent = false;
        let result = api::dse_staged_stream(parsed, &mut |chunk| {
            if !header_sent {
                header_sent = true;
                let header = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                     Transfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
                    if keep { "keep-alive" } else { "close" }
                );
                write_ok &= writer.write_all(header.as_bytes()).is_ok();
            }
            if write_ok && !chunk.is_empty() {
                let frame = format!("{:x}\r\n{chunk}\r\n", chunk.len());
                write_ok &= writer.write_all(frame.as_bytes()).is_ok();
            }
        });
        match result {
            Ok(meta) => {
                write_ok &= writer.write_all(b"0\r\n\r\n").is_ok() && writer.flush().is_ok();
                self.counters
                    .dse_pruned
                    .fetch_add(meta.pruned, Ordering::Relaxed);
                (200, write_ok, Some(meta))
            }
            Err(e) if !header_sent => {
                let response = e.into_response();
                let ok = response.write_conn(&mut writer, keep).is_ok();
                (response.status, ok, None)
            }
            Err(_) => {
                // A render failure after snapshots already went out (never
                // seen in practice): terminate the chunked body — the
                // truncated stream is the only honest signal left.
                let _ = writer.write_all(b"0\r\n\r\n");
                (500, false, None)
            }
        }
    }

    /// Serves a connection the poller reported readable. The readiness
    /// probe is a non-blocking `MSG_PEEK`: if the readiness evaporated
    /// between the epoll report and this call (an eviction/drain race),
    /// a blocking probe would stall this worker for a full
    /// `read_timeout` — the peek re-parks instead. EOF here is the
    /// parked peer hanging up. Runs on an I/O worker thread.
    fn serve_ready(&self, conn: Conn) -> Option<Conn> {
        if conn.reader.buffer().is_empty() {
            match peek_ready(conn.fd()) {
                Ok(0) => {
                    self.finish(conn.id);
                    return None;
                }
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Some(conn),
                Err(_) => {
                    self.finish(conn.id);
                    return None;
                }
            }
        }
        self.serve_conn(conn)
    }

    /// The keep-alive serving loop: zero or more complete requests, until
    /// the socket has no more buffered input (re-park it — `Some`), the
    /// lifecycle ends it (`None`: client close, `Connection: close`,
    /// parse error, request bound, eviction, or drain), or admission
    /// defers it into the gate wait room (`None`; the connection resumes
    /// through [`Self::serve_admitted`]).
    fn serve_conn(&self, mut conn: Conn) -> Option<Conn> {
        loop {
            if !self.table.mark_busy(conn.id) {
                // Evicted between the bytes arriving and now.
                self.finish(conn.id);
                return None;
            }
            let keep = match self.serve_one(&mut conn) {
                ServeOutcome::Done(keep) => keep,
                ServeOutcome::Shelve(pending) => match self.shelve(conn, pending) {
                    // The wait room owns the connection now; it stays
                    // marked busy — it is mid-request until its answer
                    // finally goes out.
                    None => return None,
                    Some((given_back, pending)) => {
                        conn = given_back;
                        self.answer_framed(&mut conn, pending, Admission::Shed)
                    }
                },
            };
            if !keep {
                self.finish(conn.id);
                return None;
            }
            if !self.table.mark_idle(conn.id) {
                // Draining (or evicted mid-response).
                self.finish(conn.id);
                return None;
            }
            if conn.reader.buffer().is_empty() {
                return Some(conn);
            }
            // Pipelined bytes already buffered in user space are
            // invisible to epoll: serve them now, never park them.
        }
    }

    /// Resumes a shelved request once [`Self::admit_next`] pumped it off
    /// the wait room: re-attempts admission (the permit that freed may
    /// have been taken again in the meantime — then back to the room),
    /// answers, and rejoins the normal keep-alive loop for any pipelined
    /// bytes. The connection is still marked busy from before the shelve.
    fn serve_admitted(&self, mut conn: Conn, pending: PendingRequest) -> Option<Conn> {
        let keep = match self.gate.try_acquire() {
            Some(permit) => self.answer_framed(&mut conn, pending, Admission::Granted(permit)),
            None => match self.shelve(conn, pending) {
                None => return None,
                Some((given_back, pending)) => {
                    conn = given_back;
                    self.answer_framed(&mut conn, pending, Admission::Shed)
                }
            },
        };
        if !keep {
            self.finish(conn.id);
            return None;
        }
        if !self.table.mark_idle(conn.id) {
            self.finish(conn.id);
            return None;
        }
        if conn.reader.buffer().is_empty() {
            return Some(conn);
        }
        self.serve_conn(conn)
    }

    /// Moves a framed-but-unadmitted request (and its connection) into
    /// the gate wait room. `Some` hands both back when the room is full —
    /// the caller sheds. After a successful shelve the gate is probed
    /// once more: a permit released between the failed `try_acquire` and
    /// the push above pumped an earlier (or empty) room, so without this
    /// re-check the request could strand until the next unrelated
    /// release.
    fn shelve(&self, conn: Conn, pending: PendingRequest) -> Option<(Conn, PendingRequest)> {
        {
            let mut room = lock_recover(&self.wait_room, "gate wait room");
            if room.len() >= self.config.queue_capacity {
                return Some((conn, pending));
            }
            room.push_back((conn, pending));
        }
        if let Some(probe) = self.gate.try_acquire() {
            drop(probe);
            self.admit_next();
        }
        None
    }

    /// Pumps one shelved request back onto the worker queue. Called after
    /// every permit release (gated responses, streams, DSE job threads);
    /// the receiving worker re-attempts `try_acquire` itself, so a permit
    /// taken again in the meantime just re-shelves. A request that cannot
    /// reach the queue (tier gone, queue full) is answered `503`
    /// best-effort and closed — never dropped silently.
    fn admit_next(&self) {
        let popped = lock_recover(&self.wait_room, "gate wait room").pop_front();
        let Some((conn, pending)) = popped else { return };
        match self.ready_queue.get() {
            Some(queue) => {
                if let Err(Work::Admit(conn, _)) = queue.try_push(Work::Admit(conn, pending)) {
                    self.shed_unserved(conn);
                }
            }
            None => self.finish(conn.id),
        }
    }

    /// Last-resort shed for a connection that cannot reach a worker:
    /// answer `503 + Retry-After` best-effort and close.
    fn shed_unserved(&self, conn: Conn) {
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
        let mut writer = conn.reader.get_ref();
        let _ = Response::unavailable("server is overloaded; retry with backoff", RETRY_AFTER_SECS)
            .write_conn(&mut writer, false);
        self.finish(conn.id);
    }

    /// Reads and frames exactly one request on a ready connection, then
    /// answers it — unless it is gated and no permit is free, in which
    /// case the fully framed request is handed back for shelving
    /// ([`ServeOutcome::Shelve`]). The byte stream is consumed up to the
    /// end of the request either way, so a shelved connection stays
    /// consistent for keep-alive reuse. Never blocks on the gate.
    fn serve_one(&self, conn: &mut Conn) -> ServeOutcome {
        let started = Instant::now();
        let deadline = Some(started + self.config.request_deadline);
        let head = match http::read_head_buffered(&mut conn.reader, deadline) {
            Ok(head) => head,
            Err(e) => {
                // Unframable: answer and close (may_keep false).
                let produced = Produced::uncached(Response::error(e.status(), &e.message()));
                let keep = self.respond(
                    conn,
                    started,
                    ("-".to_string(), "-".to_string()),
                    produced,
                    CacheOutcome::Uncached,
                    LogFlags::default(),
                    false,
                );
                return ServeOutcome::Done(keep);
            }
        };
        if head.content_length > self.config.max_body_bytes {
            // Refuse before reading; the unread body poisons the framing,
            // so this response closes the connection (may_keep false).
            let produced = Produced::uncached(Response::error(
                413,
                &HttpError::PayloadTooLarge {
                    limit: self.config.max_body_bytes,
                }
                .message(),
            ));
            let flags = LogFlags::of(&head.path, None);
            let keep = self.respond(
                conn,
                started,
                (head.method, head.path),
                produced,
                CacheOutcome::Uncached,
                flags,
                false,
            );
            return ServeOutcome::Done(keep);
        }
        if head.expects_continue() && head.content_length > 0 {
            let mut w = conn.reader.get_ref();
            if http::write_continue(&mut w).is_err() {
                return ServeOutcome::Done(false);
            }
        }
        let body = match http::read_body(
            &mut conn.reader,
            head.content_length,
            self.config.max_body_bytes,
            deadline,
        ) {
            Ok(body) => body,
            Err(e) => {
                let produced = Produced::uncached(Response::error(e.status(), &e.message()));
                let flags = LogFlags::of(&head.path, None);
                let keep = self.respond(
                    conn,
                    started,
                    (head.method, head.path),
                    produced,
                    CacheOutcome::Uncached,
                    flags,
                    false,
                );
                return ServeOutcome::Done(keep);
            }
        };
        // The whole request is consumed: whatever happens next (shelve
        // and shed included), the byte stream stays consistent for reuse.
        let pending = PendingRequest {
            started,
            head,
            body,
        };
        if Self::is_gated(&pending.head.method, &pending.head.path) {
            match self.gate.try_acquire() {
                Some(permit) => ServeOutcome::Done(self.answer_framed(
                    conn,
                    pending,
                    Admission::Granted(permit),
                )),
                None => ServeOutcome::Shelve(pending),
            }
        } else {
            ServeOutcome::Done(self.answer_framed(conn, pending, Admission::Ungated))
        }
    }

    /// Answers one fully framed request under a resolved admission
    /// decision. Returns whether the connection should be kept alive.
    fn answer_framed(
        &self,
        conn: &mut Conn,
        pending: PendingRequest,
        admission: Admission<'_>,
    ) -> bool {
        let PendingRequest {
            started,
            head,
            body,
        } = pending;
        let may_keep = head.wants_keepalive();
        let max_requests = self.config.max_requests_per_connection.max(1);
        match admission {
            Admission::Granted(permit) => {
                if let Some(parsed) = Self::streamed_dse_body(&head, &body) {
                    // Chunked transport: the response — stream or plain
                    // error — is written inside `stream_dse` (the framed
                    // machinery below builds one Content-Length body,
                    // which a million-candidate stream must not).
                    let keep_planned =
                        may_keep && conn.served + 1 < max_requests && !self.table.is_draining();
                    let (status, write_ok, meta) =
                        self.stream_dse(conn.reader.get_ref(), &parsed, keep_planned);
                    drop(permit);
                    self.admit_next();
                    conn.served += 1;
                    self.counters.requests.fetch_add(1, Ordering::Relaxed);
                    if conn.served > 1 {
                        self.counters
                            .keepalive_reuses
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    self.log_request(
                        &head.method,
                        &head.path,
                        status,
                        started,
                        CacheOutcome::Uncached,
                        conn.id,
                        &LogFlags::default(),
                        meta.as_ref(),
                    );
                    return write_ok
                        && may_keep
                        && conn.served < max_requests
                        && !self.table.is_draining();
                }
                let (produced, outcome, flags) = self.route(&head, &body);
                // The compute is done: release before the socket write so
                // the freed permit pumps the wait room immediately (same
                // release point as the old waiting-room model).
                drop(permit);
                self.admit_next();
                self.respond(
                    conn,
                    started,
                    (head.method, head.path),
                    produced,
                    outcome,
                    flags,
                    may_keep,
                )
            }
            Admission::Ungated => {
                let (produced, outcome, flags) = self.route(&head, &body);
                self.respond(
                    conn,
                    started,
                    (head.method, head.path),
                    produced,
                    outcome,
                    flags,
                    may_keep,
                )
            }
            Admission::Shed => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                let produced = Produced::uncached(Response::unavailable(
                    "server is saturated; retry with backoff",
                    RETRY_AFTER_SECS,
                ));
                let flags = LogFlags::of(&head.path, None);
                self.respond(
                    conn,
                    started,
                    (head.method, head.path),
                    produced,
                    CacheOutcome::Uncached,
                    flags,
                    may_keep,
                )
            }
        }
    }

    /// The response phase shared by every framed (non-streaming) answer:
    /// request bookkeeping, the keep-alive decision, the socket write and
    /// the request log. `started` is when the request's first byte was
    /// read, so shelved time counts toward the logged latency. Returns
    /// whether the connection should be kept alive.
    #[allow(clippy::too_many_arguments)]
    fn respond(
        &self,
        conn: &mut Conn,
        started: Instant,
        (method, path): (String, String),
        produced: Arc<Produced>,
        outcome: CacheOutcome,
        flags: LogFlags,
        may_keep: bool,
    ) -> bool {
        conn.served += 1;
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        if conn.served > 1 {
            self.counters
                .keepalive_reuses
                .fetch_add(1, Ordering::Relaxed);
        }
        let keep = may_keep
            && conn.served < self.config.max_requests_per_connection.max(1)
            && !self.table.is_draining();
        let mut writer = conn.reader.get_ref();
        let write_ok = produced.response.write_conn(&mut writer, keep).is_ok();
        self.log_request(
            &method,
            &path,
            produced.response.status,
            started,
            outcome,
            conn.id,
            &flags,
            produced.dse.as_ref(),
        );
        keep && write_ok
    }

    fn finish(&self, conn_id: u64) {
        self.table.remove(conn_id);
    }
}

/// The event tier: one epoll poller thread parking idle connections,
/// plus [`ServiceState::io_workers`] I/O worker threads serving ready
/// ones. Thread count is fixed at startup — open connections add fds,
/// not threads.
///
/// Connections travel a fixed circuit: `park` (accept loop or a worker)
/// → the park channel → the poller registers the fd → readiness or
/// idle-timeout → the poller deregisters and either dispatches the
/// connection onto the bounded queue or reaps it → a worker serves it →
/// back to `park`, closed, or shelved in the gate wait room (from which
/// [`ServiceState::admit_next`] re-queues it). Exactly one stage owns a
/// `Conn` at a time, and its fd is never registered while outside the
/// poller — so a close (which would silently orphan an epoll
/// registration) is always safe.
///
/// The queue holds `2 × max_connections`: evicted connections stay
/// parked (fd registered) until EOF is observed, so during an accept
/// burst at the connection cap the live `Conn` count can briefly exceed
/// `max_connections`. A push that still fails sheds `503` best-effort
/// rather than closing silently.
struct EventTier {
    state: Arc<ServiceState>,
    park_tx: mpsc::Sender<Conn>,
    waker: Waker,
    queue: Arc<BoundedQueue<Work>>,
    stop: Arc<AtomicBool>,
    poller: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl EventTier {
    fn start(state: Arc<ServiceState>) -> std::io::Result<EventTier> {
        let poller = Poller::new()?;
        let waker = poller.waker();
        let (park_tx, park_rx) = mpsc::channel::<Conn>();
        let queue = Arc::new(BoundedQueue::new(
            state.config.max_connections.max(1).saturating_mul(2),
        ));
        // `admit_next` pumps shelved requests back onto this queue from
        // whichever thread releases a gate permit.
        let _ = state.ready_queue.set(Arc::clone(&queue));
        let stop = Arc::new(AtomicBool::new(false));
        let poller_thread = std::thread::Builder::new()
            .name("clb-poller".to_string())
            .spawn({
                let state = Arc::clone(&state);
                let queue = Arc::clone(&queue);
                let stop = Arc::clone(&stop);
                move || run_poller(&state, &poller, &park_rx, &queue, &stop)
            })?;
        let mut workers = Vec::new();
        for i in 0..state.io_workers() {
            workers.push(
                std::thread::Builder::new()
                    .name(format!("clb-io-{i}"))
                    .spawn({
                        let state = Arc::clone(&state);
                        let queue = Arc::clone(&queue);
                        let park_tx = park_tx.clone();
                        let waker = waker.clone();
                        move || run_worker(&state, &queue, &park_tx, &waker)
                    })?,
            );
        }
        Ok(EventTier {
            state,
            park_tx,
            waker,
            queue,
            stop,
            poller: Some(poller_thread),
            workers,
        })
    }

    /// Hands a connection to the poller for its idle phase. A park that
    /// cannot be delivered (the poller is gone — shutdown) closes the
    /// connection instead.
    fn park(&self, conn: Conn) {
        match self.park_tx.send(conn) {
            Ok(()) => self.waker.wake(),
            Err(mpsc::SendError(conn)) => self.state.finish(conn.id),
        }
    }

    /// Stops and joins the tier: the poller first (it drops every still-
    /// parked connection), then the workers (they drain the ready queue —
    /// drain/abort already shut those sockets, so each remaining serve is
    /// a quick EOF), then the gate wait room (no permit release will ever
    /// pump those shelved connections again).
    fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.waker.wake();
        if let Some(poller) = self.poller.take() {
            let _ = poller.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        loop {
            let popped = lock_recover(&self.state.wait_room, "gate wait room").pop_front();
            match popped {
                Some((conn, _pending)) => self.state.finish(conn.id),
                None => break,
            }
        }
    }
}

/// The poller thread: parks idle connections on the epoll instance,
/// reaps the ones whose [`ServiceConfig::idle_timeout`] expires, and
/// hands readable ones to the worker queue. Never reads a socket itself,
/// so one slow peer cannot stall the readiness plane.
fn run_poller(
    state: &ServiceState,
    poller: &Poller,
    park_rx: &mpsc::Receiver<Conn>,
    queue: &BoundedQueue<Work>,
    stop: &AtomicBool,
) {
    let mut parked: HashMap<RawFd, (Conn, Instant)> = HashMap::new();
    let mut ready: Vec<RawFd> = Vec::new();
    loop {
        // Intake newly parked connections. Their fds register
        // level-triggered, so bytes that arrived before this point
        // report on the next wait — no lost wakeups.
        while let Ok(conn) = park_rx.try_recv() {
            let fd = conn.fd();
            match poller.add(fd) {
                Ok(()) => {
                    let deadline = Instant::now() + state.config.idle_timeout;
                    parked.insert(fd, (conn, deadline));
                }
                Err(e) => {
                    // Registration failed (fd-watch limit, ...): this
                    // connection cannot be parked, only closed.
                    eprintln!("clb-conn-{}: cannot watch socket ({e}); closing", conn.id);
                    state.finish(conn.id);
                }
            }
        }
        if stop.load(Ordering::Relaxed) {
            for (fd, (conn, _)) in parked.drain() {
                let _ = poller.del(fd);
                state.finish(conn.id);
            }
            return;
        }
        // Sleep until the next readiness, park, stop, or idle deadline.
        let timeout = parked
            .values()
            .map(|(_, deadline)| *deadline)
            .min()
            .map(|deadline| deadline.saturating_duration_since(Instant::now()));
        if let Err(e) = poller.wait(&mut ready, timeout) {
            eprintln!("clb-poller: epoll_wait failed ({e}); backing off");
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        // Dispatch readiness *before* reaping idle deadlines: a request
        // whose bytes arrived just before the deadline must be served,
        // not reaped unanswered.
        for fd in ready.drain(..) {
            if let Some((conn, _)) = parked.remove(&fd) {
                // Deregister *before* the connection leaves this thread:
                // a worker may close the fd, and a close on a registered
                // fd (or its reuse by a new connection) corrupts the
                // interest list.
                let _ = poller.del(fd);
                if let Err(Work::Ready(conn)) = queue.try_push(Work::Ready(conn)) {
                    // Reachable during accept bursts at the connection
                    // cap (evicted connections stay parked until their
                    // EOF is observed): shed, don't close silently.
                    state.shed_unserved(conn);
                }
            }
        }
        // Reap idle timeouts that the readiness pass above did not beat.
        let now = Instant::now();
        let expired: Vec<RawFd> = parked
            .iter()
            .filter(|(_, (_, deadline))| *deadline <= now)
            .map(|(fd, _)| *fd)
            .collect();
        for fd in expired {
            if let Some((conn, _)) = parked.remove(&fd) {
                let _ = poller.del(fd);
                state.counters.idle_reaped.fetch_add(1, Ordering::Relaxed);
                state.finish(conn.id);
            }
        }
    }
}

/// One I/O worker: serves ready connections off the queue, re-parking
/// the survivors. A panicking handler costs its own connection, never
/// the worker (the thread would die with the panic) nor the server (the
/// shared tables recover from the poisoned locks).
fn run_worker(
    state: &ServiceState,
    queue: &BoundedQueue<Work>,
    park_tx: &mpsc::Sender<Conn>,
    waker: &Waker,
) {
    while let Some(work) = queue.pop() {
        let conn_id = work.conn_id();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match work {
            Work::Ready(conn) => state.serve_ready(conn),
            Work::Admit(conn, pending) => state.serve_admitted(conn, pending),
        }));
        match outcome {
            Ok(Some(conn)) => match park_tx.send(conn) {
                Ok(()) => waker.wake(),
                Err(mpsc::SendError(conn)) => state.finish(conn.id),
            },
            Ok(None) => {}
            Err(_) => {
                state.finish(conn_id);
                eprintln!("clb-conn-{conn_id}: handler panicked; connection dropped");
            }
        }
    }
}

/// A bound, not-yet-running analysis server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish()
    }
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (e.g. port already in use).
    pub fn bind(config: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((config.host, config.port))?;
        let server = Server {
            listener,
            state: Arc::new(ServiceState::new(config)),
            stop: Arc::new(AtomicBool::new(false)),
        };
        let _ = server.state.stopper.set(server.stop_handle());
        // Detached DSE job threads outlive request scope but must still
        // pump the gate wait room when their permit releases.
        let _ = server
            .state
            .self_ref
            .set(Arc::downgrade(&server.state));
        Ok(server)
    }

    /// The bound address (useful with ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket-name failure (effectively never).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    #[must_use]
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: Arc::clone(&self.stop),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// A handle onto this server's live counters ([`ServiceStats`]),
    /// usable even after shutdown — drain tests read `drain_aborted`
    /// through it once the server is gone.
    #[must_use]
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Runs the accept loop until [`StopHandle::stop`] is called, then
    /// drains: idle keep-alive connections are reaped immediately,
    /// in-flight requests finish (their responses carry
    /// `Connection: close`), and stragglers past
    /// [`ServiceConfig::drain_deadline`] are aborted.
    ///
    /// Accepted connections join the event tier (one poller thread plus
    /// a fixed I/O worker pool — an idle connection costs an fd, not a
    /// thread); concurrent *compute* is bounded by the [`Gate`], and
    /// total connections by [`ServiceConfig::max_connections`] with
    /// oldest-idle eviction.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket failures and event-tier startup
    /// failures (transient per-connection errors are tolerated).
    pub fn run(self) -> std::io::Result<()> {
        let connections = WaitGroup::new();
        let tier = EventTier::start(Arc::clone(&self.state))?;
        for connection in self.listener.incoming() {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            match connection {
                Ok(stream) => {
                    // Connection cap: evict the oldest idle connection, or
                    // shed when everyone is mid-request.
                    if self.state.table.len() >= self.state.config.max_connections.max(1) {
                        if self.state.table.evict_oldest_idle() {
                            self.state
                                .counters
                                .idle_reaped
                                .fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.state.counters.shed.fetch_add(1, Ordering::Relaxed);
                            let mut writer = &stream;
                            let _ = Response::unavailable(
                                "connection limit reached; retry with backoff",
                                RETRY_AFTER_SECS,
                            )
                            .write_conn(&mut writer, false);
                            continue;
                        }
                    }
                    // The table needs its own socket handle to evict or
                    // abort the connection from outside the event tier; a
                    // connection we cannot control that way is not served.
                    let Ok(table_handle) = stream.try_clone() else {
                        continue;
                    };
                    let conn_id = self.state.table.register(table_handle);
                    // The socket timeouts are installed once, here: the
                    // idle phase is bounded by the poller's timer, so the
                    // read timeout can stay put for the connection's whole
                    // life. A connection whose protections cannot be
                    // installed is never served — proceeding without them
                    // would reopen the slowloris hole every knob above
                    // exists to close. Log the abort (status=0), hang up.
                    if let Err(e) = stream
                        .set_read_timeout(Some(self.state.config.read_timeout))
                        .and_then(|()| {
                            stream.set_write_timeout(Some(self.state.config.write_timeout))
                        })
                    {
                        self.state.log_request(
                            "-",
                            "-",
                            0,
                            Instant::now(),
                            CacheOutcome::Uncached,
                            conn_id,
                            &LogFlags::default(),
                            None,
                        );
                        eprintln!(
                            "clb-conn-{conn_id}: socket timeouts unavailable ({e}); \
                             closing unserved"
                        );
                        self.state.finish(conn_id);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    tier.park(Conn {
                        id: conn_id,
                        reader: BufReader::new(stream),
                        served: 0,
                        _guard: connections.enter(),
                    });
                }
                // Transient accept errors (e.g. the peer reset before we
                // got to it) should not kill the server.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => {}
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
                Err(e) => {
                    self.drain(&connections);
                    tier.shutdown();
                    return Err(e);
                }
            }
        }
        self.drain(&connections);
        tier.shutdown();
        Ok(())
    }

    /// The graceful drain: reap idle connections, wait for in-flight
    /// requests up to the hard deadline, abort stragglers.
    fn drain(&self, connections: &Arc<WaitGroup>) {
        let reaped = self.state.table.begin_drain();
        self.state
            .counters
            .idle_reaped
            .fetch_add(reaped, Ordering::Relaxed);
        if !connections.wait_timeout(self.state.config.drain_deadline) {
            let aborted = self.state.table.abort_all();
            self.state
                .counters
                .drain_aborted
                .fetch_add(aborted, Ordering::Relaxed);
            // Aborted sockets unblock their threads almost instantly; a
            // short grace keeps the exit orderly without re-opening an
            // unbounded wait.
            let _ = connections.wait_timeout(Duration::from_secs(1));
        }
    }

    /// Binds-and-runs on a background thread, returning once the socket is
    /// accepting. The returned handle stops the server and joins the
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(config: ServiceConfig) -> std::io::Result<RunningServer> {
        let server = Server::bind(config)?;
        let addr = server.local_addr()?;
        let handle = server.stop_handle();
        let stats = server.stats_handle();
        let thread = std::thread::Builder::new()
            .name("clb-accept".to_string())
            .spawn(move || server.run())?;
        Ok(RunningServer {
            addr,
            handle,
            stats,
            thread,
        })
    }
}

/// Stops a running server from any thread.
#[derive(Debug, Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    addr: Option<SocketAddr>,
}

impl StopHandle {
    /// Signals the accept loop to exit, waking it with a no-op connection.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(addr) = self.addr {
            // `accept` only notices the flag when a connection arrives.
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.flush();
            }
        }
    }
}

/// Reads a server's live [`ServiceStats`] without going over HTTP — kept
/// alive by `Arc`, so it keeps working after the server shuts down (the
/// only way to observe `drain_aborted`, which is counted while the HTTP
/// surface is already draining).
#[derive(Clone)]
pub struct StatsHandle {
    state: Arc<ServiceState>,
}

impl std::fmt::Debug for StatsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsHandle").finish()
    }
}

impl StatsHandle {
    /// A point-in-time snapshot of the service counters.
    #[must_use]
    pub fn snapshot(&self) -> ServiceStats {
        self.state.service_stats()
    }
}

/// A server running on a background thread (see [`Server::spawn`]).
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    handle: StopHandle,
    stats: StatsHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl RunningServer {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A counters handle that stays valid after [`shutdown`].
    ///
    /// [`shutdown`]: RunningServer::shutdown
    #[must_use]
    pub fn stats_handle(&self) -> StatsHandle {
        self.stats.clone()
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests (hard
    /// deadline per [`ServiceConfig::drain_deadline`]), join the thread.
    ///
    /// # Errors
    ///
    /// Propagates an accept-loop failure (a panic surfaces as
    /// [`std::io::ErrorKind::Other`]).
    pub fn shutdown(self) -> std::io::Result<()> {
        self.handle.stop();
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Poisons `mutex` the way a panicking request handler would: a
    /// thread takes the guard and dies with it held.
    fn poison<T: Send + Sync + 'static>(mutex: &Arc<T>, lock: impl Fn(&T) + Send + 'static) {
        let mutex = Arc::clone(mutex);
        let poisoner = std::thread::spawn(move || lock(&mutex));
        assert!(poisoner.join().is_err(), "the poisoner must panic");
    }

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    /// The poisoned-lock regression: before lock recovery, one panicking
    /// handler poisoned the connection table and every subsequent
    /// register/mark/evict call died with "conn table poisoned" —
    /// killing all future connections. Now the table keeps working.
    #[test]
    fn conn_table_survives_a_poisoned_lock() {
        let table = Arc::new(ConnTable::default());
        poison(&table, |table: &ConnTable| {
            let _guard = table.entries.lock().unwrap();
            panic!("handler panicked while holding the conn table");
        });
        assert!(
            table.entries.lock().is_err(),
            "the lock must actually be poisoned for this test to bite"
        );

        let (_client, server) = socket_pair();
        let id = table.register(server);
        assert_eq!(table.len(), 1);
        assert!(table.mark_busy(id));
        assert!(table.mark_idle(id));
        assert!(table.evict_oldest_idle());
        assert_eq!(table.len(), 0);
        assert_eq!(table.begin_drain(), 0);
        assert_eq!(table.abort_all(), 0);
    }

    /// Same regression for the DSE job table: a poisoned lock must not
    /// take down job submission, completion, or polling.
    #[test]
    fn job_table_survives_a_poisoned_lock() {
        let jobs = Arc::new(JobTable::default());
        poison(&jobs, |jobs: &JobTable| {
            let _guard = jobs.entries.lock().unwrap();
            panic!("handler panicked while holding the job table");
        });
        assert!(jobs.entries.lock().is_err());

        assert!(matches!(jobs.begin("job-a"), JobAdmission::New { .. }));
        assert!(matches!(jobs.begin("job-a"), JobAdmission::Existing));
        jobs.complete("job-a", Response::json(200, "{}".to_string()));
        let polled = jobs.poll("job-a").expect("completed job must poll");
        assert_eq!(polled.status, 200);
        assert!(jobs.poll("job-b").is_none());
    }
}
