//! The staged `/v1/dse` surface end-to-end: hostile staged options get
//! typed errors, legacy requests stay byte-identical, the funnel accounting
//! holds on the wire, chunked streaming frames the exact sync body, and the
//! job mode runs a full accept → poll → retrieve lifecycle.
//!
//! The lossless-pruning invariant itself (staged frontier ≡ unpruned
//! oracle) is property-tested in `clb-core`'s `staged_dse_parity` suite;
//! this file pins the *service* contract wrapped around that engine.

use std::io::{Read, Write};
use std::net::TcpStream;

use accel_sim::ArchConfig;
use clb_service::{api, Server, ServiceConfig};
use serde::{Serialize, Value};

/// A minimal HTTP/1.1 client: one request, returns (status, raw head, body).
/// Sends `Connection: close` so `read_to_string` delimits the response; the
/// body is de-chunked when the server streamed it.
fn raw_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("well-formed response");
    let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
    let body = if head.contains("Transfer-Encoding: chunked") {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    (status, head.to_string(), body)
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = raw_request(addr, method, path, body);
    (status, body)
}

/// Reassembles a `Transfer-Encoding: chunked` payload, asserting correct
/// framing (hex sizes, CRLF separators, zero-length terminal chunk).
fn dechunk(payload: &str) -> String {
    let mut rest = payload;
    let mut out = String::new();
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            assert!(
                tail == "\r\n" || tail.is_empty(),
                "terminal chunk must end the stream: {tail:?}"
            );
            return out;
        }
        out.push_str(&tail[..size]);
        assert_eq!(&tail[size..size + 2], "\r\n", "chunk data ends with CRLF");
        rest = &tail[size + 2..];
    }
}

fn preset_candidates() -> String {
    let archs: Vec<Value> = (1..=5)
        .map(|i| Serialize::to_value(&ArchConfig::implementation(i)))
        .collect();
    serde_json::to_string(&Value::Array(archs)).unwrap()
}

/// A small layer-mode request body with the given extra staged fields.
fn staged_body(extra: &str) -> String {
    let sep = if extra.is_empty() { "" } else { "," };
    format!(
        "{{\"co\":32,\"size\":14,\"ci\":16,\"batch\":2,\"candidates\":{}{sep}{extra}}}",
        preset_candidates()
    )
}

fn dispatch(body: &str) -> (u16, String) {
    let parsed: Value = serde_json::from_str(body).unwrap();
    let response = api::dispatch("/v1/dse", &parsed);
    (response.status, response.body)
}

#[test]
fn hostile_staged_options_get_typed_errors() {
    // (body fragment, expected status, expected message fragment)
    let cases: &[(&str, u16, &str)] = &[
        (
            "\"objective\":\"latency\"",
            422,
            "unknown objective `latency` (expected cycles, traffic, energy or pareto)",
        ),
        ("\"objective\":3", 400, "field `objective` must be a string"),
        (
            "\"objective\":[\"cycles\"]",
            400,
            "field `objective` must be a string",
        ),
        ("\"top_k\":0", 422, "top_k must be between 1 and 1024"),
        ("\"top_k\":1025", 422, "top_k must be between 1 and 1024"),
        ("\"top_k\":2.5", 400, "field `top_k`"),
        ("\"top_k\":\"three\"", 400, "field `top_k`"),
        (
            "\"stream\":\"firehose\"",
            422,
            "unknown stream mode `firehose` (expected chunked or job)",
        ),
        (
            "\"stream\":7",
            400,
            "field `stream` must be a bool or a string",
        ),
    ];
    let server = Server::spawn(ServiceConfig::default()).expect("bind an ephemeral port");
    for (extra, want_status, fragment) in cases {
        let body = staged_body(extra);
        // Pure handler and live wire must agree byte-for-byte on the error.
        let (status, pure) = dispatch(&body);
        assert_eq!(status, *want_status, "{extra}: {pure}");
        assert!(pure.contains(fragment), "{extra}: {pure}");
        let (status, wire) = request(server.addr(), "POST", "/v1/dse", &body);
        assert_eq!(status, *want_status, "{extra}: {wire}");
        assert_eq!(wire, pure, "{extra}: wire error must match the handler");
    }
    server.shutdown().unwrap();
}

#[test]
fn legacy_requests_stay_byte_identical_with_null_staged_fields() {
    // All-null staged fields mean "not a staged request": the response must
    // be the legacy shape, byte-identical to a request without the fields.
    let legacy = staged_body("");
    let nulled = staged_body("\"objective\":null,\"top_k\":null,\"stream\":null");
    let (status, want) = dispatch(&legacy);
    assert_eq!(status, 200, "{want}");
    let (status, got) = dispatch(&nulled);
    assert_eq!(status, 200, "{got}");
    assert_eq!(
        got, want,
        "null staged fields must not perturb legacy bytes"
    );
    // Legacy shape marker: per-entry feasibility, no funnel counters.
    assert!(want.contains("\"feasible\""), "{want}");
    assert!(!want.contains("\"pruned\""), "{want}");
}

#[test]
fn staged_funnel_accounting_holds_on_the_wire() {
    let server = Server::spawn(ServiceConfig::default()).expect("bind an ephemeral port");
    let body = staged_body("\"objective\":\"traffic\",\"top_k\":2");
    let (status, wire) = request(server.addr(), "POST", "/v1/dse", &body);
    assert_eq!(status, 200, "{wire}");
    let (_, pure) = dispatch(&body);
    assert_eq!(wire, pure, "wire staged response must match the handler");
    let v: Value = serde_json::from_str(&wire).unwrap();
    let n = |k: &str| v.get_field(k).unwrap().as_number().unwrap() as u64;
    assert_eq!(
        v.get_field("objective").unwrap().as_str().unwrap(),
        "traffic"
    );
    assert_eq!(n("submitted"), 5);
    assert_eq!(n("unique"), 5);
    assert_eq!(n("pruned") + n("evaluated"), n("unique"), "{wire}");
    let results = v.get_field("results").unwrap().as_array().unwrap();
    assert_eq!(results.len() as u64, n("kept"), "{wire}");
    assert!(n("kept") <= 2, "top_k bounds the frontier: {wire}");
    server.shutdown().unwrap();
}

#[test]
fn smaller_top_k_is_a_prefix_of_the_larger_frontier() {
    // Ranking is a total order: the top-2 frontier must be the first two
    // entries of the top-5 frontier, bit-identically.
    for objective in ["cycles", "traffic", "energy", "pareto"] {
        let wide = dispatch(&staged_body(&format!(
            "\"objective\":\"{objective}\",\"top_k\":5"
        )));
        let narrow = dispatch(&staged_body(&format!(
            "\"objective\":\"{objective}\",\"top_k\":2"
        )));
        assert_eq!((wide.0, narrow.0), (200, 200));
        let wide: Value = serde_json::from_str(&wide.1).unwrap();
        let narrow: Value = serde_json::from_str(&narrow.1).unwrap();
        let wide = wide.get_field("results").unwrap().as_array().unwrap();
        let narrow = narrow.get_field("results").unwrap().as_array().unwrap();
        assert_eq!(narrow.len(), 2, "{objective}");
        assert_eq!(
            narrow,
            &wide[..2],
            "{objective}: top-2 must prefix the top-5 ranking"
        );
    }
}

#[test]
fn chunked_streaming_frames_the_exact_sync_body() {
    let server = Server::spawn(ServiceConfig::default()).expect("bind an ephemeral port");
    let body = staged_body("\"objective\":\"cycles\",\"top_k\":3,\"stream\":true");
    let (status, head, streamed) = raw_request(server.addr(), "POST", "/v1/dse", &body);
    assert_eq!(status, 200, "{streamed}");
    assert!(
        head.contains("Transfer-Encoding: chunked"),
        "streamed sweeps use chunked transport: {head}"
    );
    assert!(
        !head.contains("Content-Length"),
        "chunked responses must not declare a length: {head}"
    );
    // The concatenated payload ends with the synchronous staged body for
    // the same request; everything before it is newline-framed snapshots.
    let sync = dispatch(&staged_body(
        "\"objective\":\"cycles\",\"top_k\":3,\"stream\":false",
    ));
    assert_eq!(sync.0, 200);
    assert!(
        streamed.ends_with(&sync.1),
        "streamed payload must end with the sync body"
    );
    let snapshots = &streamed[..streamed.len() - sync.1.len()];
    assert!(!snapshots.is_empty(), "at least one frontier snapshot");
    for line in snapshots.lines() {
        let snap: Value = serde_json::from_str(line).expect("snapshot is single-line JSON");
        for field in ["processed", "pruned", "kept", "frontier"] {
            assert!(
                snap.get_field(field).is_ok(),
                "snapshot missing {field}: {line}"
            );
        }
    }

    // Invalid streamed requests never start a stream: plain framed error.
    let bad = staged_body("\"objective\":\"speed\",\"stream\":true");
    let (status, head, error) = raw_request(server.addr(), "POST", "/v1/dse", &bad);
    assert_eq!(status, 422, "{error}");
    assert!(
        head.contains("Content-Length"),
        "errors are answered as normal framed responses: {head}"
    );
    assert!(error.contains("unknown objective"), "{error}");
    server.shutdown().unwrap();
}

#[test]
fn job_mode_runs_the_full_lifecycle() {
    let server = Server::spawn(ServiceConfig::default()).expect("bind an ephemeral port");
    let addr = server.addr();
    let body = staged_body("\"objective\":\"energy\",\"top_k\":2,\"stream\":\"job\"");

    // Accept: deterministic id, poll path, and idempotent re-submission.
    let (status, accepted) = request(addr, "POST", "/v1/dse", &body);
    assert_eq!(status, 200, "{accepted}");
    let v: Value = serde_json::from_str(&accepted).unwrap();
    assert_eq!(v.get_field("status").unwrap().as_str().unwrap(), "accepted");
    let id = v.get_field("job").unwrap().as_str().unwrap().to_string();
    let poll = v.get_field("poll").unwrap().as_str().unwrap().to_string();
    assert_eq!(poll, format!("/v1/dse/jobs/{id}"));
    let (status, again) = request(addr, "POST", "/v1/dse", &body);
    assert_eq!(status, 200);
    assert_eq!(again, accepted, "re-POSTing the same job is idempotent");

    // Poll until done: the terminal body is the staged sync response.
    let sync = dispatch(&staged_body("\"objective\":\"energy\",\"top_k\":2"));
    assert_eq!(sync.0, 200);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let final_body = loop {
        let (status, body) = request(addr, "GET", &poll, "");
        assert_eq!(status, 200, "{body}");
        let v: Value = serde_json::from_str(&body).unwrap();
        match v
            .get_field("status")
            .map(|s| s.as_str().unwrap().to_string())
        {
            Ok(s) if s == "running" => {
                assert!(v.get_field("processed").is_ok(), "{body}");
                assert!(v.get_field("pruned").is_ok(), "{body}");
            }
            // The terminal poll returns the sweep response itself, which
            // has no `status` field (or a non-progress one): stop.
            _ => break body,
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job did not finish within 60s"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert_eq!(
        final_body, sync.1,
        "job result must be byte-identical to the synchronous staged sweep"
    );

    // Unknown ids 404 with the retention hint; wrong methods 405.
    let (status, missing) = request(addr, "GET", "/v1/dse/jobs/ffffffffffffffff", "");
    assert_eq!(status, 404, "{missing}");
    assert!(missing.contains("no such DSE job"), "{missing}");
    let (status, _) = request(addr, "POST", &poll, "{}");
    assert_eq!(status, 405);

    // The job shows up in the service counters.
    let (status, stats) = request(addr, "GET", "/v1/cache_stats", "");
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&stats).unwrap();
    let service = v.get_field("service").unwrap();
    assert!(
        service.get_field("dse_jobs").unwrap().as_number().unwrap() >= 1.0,
        "{stats}"
    );
    server.shutdown().unwrap();
}

#[test]
fn candidate_caps_differ_between_legacy_and_staged() {
    // A 512-point grid: over the legacy 256 cap, comfortably under the
    // staged 2^20 cap. The same request must flip from 422 to 200 when any
    // staged field is present.
    let grid = "\"grid\":{\"pe_rows\":[8,16,24,32,40,48,56,64],\
                \"pe_cols\":[8,16,24,32,40,48,56,64],\
                \"group_rows\":[1,2],\"group_cols\":[1,2],\
                \"lreg_entries_per_pe\":[32,64]}";
    let legacy = format!("{{\"co\":32,\"size\":14,\"ci\":16,\"batch\":2,{grid}}}");
    let (status, body) = dispatch(&legacy);
    assert_eq!(status, 422, "{body}");
    assert!(
        body.contains("256"),
        "legacy cap named in the error: {body}"
    );

    let staged = format!(
        "{{\"co\":32,\"size\":14,\"ci\":16,\"batch\":2,{grid},\
         \"objective\":\"cycles\",\"top_k\":1}}"
    );
    let (status, body) = dispatch(&staged);
    assert_eq!(status, 200, "{body}");
    let v: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(
        v.get_field("submitted").unwrap().as_number().unwrap(),
        512.0,
        "{body}"
    );

    // Over the staged cap: rejected before any expansion is allocated
    // (three 2^7 axes make 2^21 grid points, double the 2^20 budget).
    let axis: Vec<String> = (1..=128).map(|i| i.to_string()).collect();
    let axis = axis.join(",");
    let huge = format!(
        "{{\"co\":32,\"size\":14,\"ci\":16,\"batch\":2,\
         \"grid\":{{\"pe_rows\":[{axis}],\"pe_cols\":[{axis}],\
         \"group_rows\":[{axis}]}},\
         \"objective\":\"cycles\"}}"
    );
    let (status, body) = dispatch(&huge);
    assert_eq!(status, 422, "{body}");
    assert!(
        body.contains("grid") || body.contains("cap"),
        "over-cap grid names the budget: {body}"
    );
}
