//! The connection-lifecycle suite: keep-alive semantics, graceful drain,
//! and every fault-injection scenario from the chaos toolkit, asserted
//! against a live server with exact status codes and hard time bounds.
//!
//! The contract under test (see `docs/OPERATIONS.md`):
//!
//! - well-behaved keep-alive peers get byte-identical responses across a
//!   reused socket (the golden corpus replays over ONE connection here);
//! - hostile peers — slow-drip writers, mid-request stalls, mid-request
//!   disconnects, pipelined garbage, stalled readers — get a
//!   deterministic typed response (`408`, `400`) or a clean close within
//!   the configured deadline, never a pinned worker and never a panic;
//! - saturation sheds with `503 + Retry-After` after draining the
//!   request body, so the same socket carries the retry;
//! - shutdown drains in-flight work under a hard deadline and aborts
//!   stragglers, observably (`drain_aborted`).

use std::time::{Duration, Instant};

use clb_service::chaos::{request_bytes, ChaosClient};
use clb_service::{Server, ServiceConfig};
use proptest::prelude::*;

/// Generous client-side read timeout: a scenario that trips this has
/// already failed its server-side deadline assertion.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn spawn(config: ServiceConfig) -> clb_service::RunningServer {
    Server::spawn(config).expect("bind an ephemeral port")
}

/// A config with short, test-friendly deadlines (real defaults are tens of
/// seconds — correct for production, too slow to assert against).
fn quick_config() -> ServiceConfig {
    ServiceConfig {
        read_timeout: Duration::from_millis(400),
        request_deadline: Duration::from_millis(900),
        idle_timeout: Duration::from_millis(600),
        drain_deadline: Duration::from_secs(2),
        ..ServiceConfig::default()
    }
}

/// One-shot reference request on its own `Connection: close` socket.
fn one_shot(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    client
        .send_all(&request_bytes(method, path, body, false))
        .unwrap();
    let resp = client.read_response().expect("one-shot response");
    (resp.status, resp.body)
}

// ---------------------------------------------------------------------
// Keep-alive happy path
// ---------------------------------------------------------------------

#[test]
fn keepalive_responses_are_byte_identical_to_one_shot_connections() {
    let server = spawn(ServiceConfig::default());
    let addr = server.addr();
    let requests: [(&str, &str, &str); 4] = [
        ("GET", "/healthz", ""),
        (
            "POST",
            "/v1/bound",
            "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}",
        ),
        (
            "POST",
            "/v1/plan",
            "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}",
        ),
        ("GET", "/nope", ""),
    ];
    // References first, each on its own closed connection.
    let expected: Vec<(u16, String)> = requests
        .iter()
        .map(|(m, p, b)| one_shot(addr, m, p, b))
        .collect();
    // Then all four over ONE persistent socket.
    let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    for (i, (method, path, body)) in requests.iter().enumerate() {
        client
            .send_all(&request_bytes(method, path, body, true))
            .unwrap();
        let resp = client.read_response().expect("keep-alive response");
        assert_eq!(resp.status, expected[i].0, "{path}");
        assert_eq!(resp.body, expected[i].1, "byte parity on reuse: {path}");
        assert!(resp.keeps_alive(), "{path} must keep the connection open");
    }
    let stats = server.stats_handle().snapshot();
    assert!(
        stats.keepalive_reuses >= 3,
        "three reuses on one socket: {stats:?}"
    );
    server.shutdown().unwrap();
}

/// The acceptance criterion verbatim: the golden corpus, replayed over a
/// single persistent socket, must match the checked-in fixtures
/// byte-for-byte (parity with `golden_corpus.rs`, which replays the same
/// fixtures over one-shot connections).
#[test]
fn golden_corpus_replays_over_one_persistent_socket() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let manifest = std::fs::read_to_string(dir.join("manifest.txt")).expect("golden manifest");
    let fixtures: Vec<(String, String, u16)> = manifest
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            let case = parts.next()?.to_string();
            let method = parts.next()?;
            let path = parts.next()?.to_string();
            let status: u16 = parts.next()?.parse().ok()?;
            // GET fixtures pin live-counter *shapes*, not bytes — the
            // one-shot corpus covers those; reuse parity is about bodies.
            (method == "POST").then_some((case, path, status))
        })
        .collect();
    assert!(fixtures.len() >= 20, "corpus present: {}", fixtures.len());

    let server = spawn(ServiceConfig::default());
    let mut client = ChaosClient::connect(server.addr(), CLIENT_TIMEOUT);
    for (case, path, status) in &fixtures {
        let request = std::fs::read_to_string(dir.join(format!("{case}.req.json"))).unwrap();
        let expected = std::fs::read_to_string(dir.join(format!("{case}.resp.json"))).unwrap();
        client
            .send_all(&request_bytes("POST", path, &request, true))
            .unwrap();
        let resp = client.read_response().expect(case);
        assert_eq!(resp.status, *status, "{case}");
        assert_eq!(
            resp.body, expected,
            "golden parity over reused socket: {case}"
        );
        assert!(resp.keeps_alive(), "{case}");
    }
    let stats = server.stats_handle().snapshot();
    assert!(
        stats.keepalive_reuses >= fixtures.len() as u64 - 1,
        "{stats:?}"
    );
    server.shutdown().unwrap();
}

#[test]
fn request_bound_closes_the_connection_after_max_requests() {
    let server = spawn(ServiceConfig {
        max_requests_per_connection: 2,
        ..ServiceConfig::default()
    });
    let mut client = ChaosClient::connect(server.addr(), CLIENT_TIMEOUT);
    client
        .send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    let first = client.read_response().unwrap();
    assert_eq!(first.status, 200);
    assert!(first.keeps_alive());
    client
        .send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    let second = client.read_response().unwrap();
    assert_eq!(second.status, 200);
    assert!(
        !second.keeps_alive(),
        "the final allowed request must announce the close"
    );
    assert!(client.read_eof().unwrap(), "server closes at the bound");
    server.shutdown().unwrap();
}

#[test]
fn http10_and_explicit_close_are_honored() {
    let server = spawn(ServiceConfig::default());
    let addr = server.addr();
    // HTTP/1.0 without a Connection header defaults to close.
    let mut old = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    old.send_all(b"GET /healthz HTTP/1.0\r\nHost: chaos\r\n\r\n")
        .unwrap();
    let resp = old.read_response().unwrap();
    assert_eq!(resp.status, 200);
    assert!(!resp.keeps_alive());
    assert!(old.read_eof().unwrap());
    // HTTP/1.0 + explicit keep-alive is honored.
    let mut old_keep = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    old_keep
        .send_all(b"GET /healthz HTTP/1.0\r\nHost: chaos\r\nConnection: keep-alive\r\n\r\n")
        .unwrap();
    let resp = old_keep.read_response().unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.keeps_alive());
    // HTTP/1.1 + explicit close closes.
    let mut closer = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    closer
        .send_all(&request_bytes("GET", "/healthz", "", false))
        .unwrap();
    let resp = closer.read_response().unwrap();
    assert!(!resp.keeps_alive());
    assert!(closer.read_eof().unwrap());
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Fault injection: hostile peers
// ---------------------------------------------------------------------

#[test]
fn slow_drip_header_gets_408_within_the_request_deadline() {
    let server = spawn(quick_config());
    let addr = server.addr();
    let started = Instant::now();
    let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    // Drip a padded request 2 bytes per 100ms: every write is far inside
    // read_timeout (400ms) but the full header would take ~8s — the
    // request deadline (900ms) must cut it off with a typed 408. The drip
    // runs on a second socket handle so this thread reads the response the
    // moment it lands (a later drip write against the closed server socket
    // resets the connection and would discard an unread response).
    let padded = format!(
        "GET /healthz HTTP/1.1\r\nHost: chaos\r\nX-Pad: {}\r\n\r\n",
        "x".repeat(120)
    );
    let answered = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let drip = {
        use std::io::Write as _;
        let mut writer = client.split_writer();
        let answered = std::sync::Arc::clone(&answered);
        std::thread::spawn(move || {
            for piece in padded.as_bytes().chunks(2) {
                if answered.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                if writer
                    .write_all(piece)
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break; // the server rightfully gave up on us
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };
    let resp = client.read_response().expect("typed timeout response");
    answered.store(true, std::sync::atomic::Ordering::Relaxed);
    drip.join().unwrap();
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(!resp.keeps_alive());
    assert!(client.read_eof().unwrap(), "slow-dripper is disconnected");
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "scenario resolves promptly, not at client timeout"
    );
    // The worker is free again: a normal request succeeds immediately.
    assert_eq!(one_shot(addr, "GET", "/healthz", "").0, 200);
    server.shutdown().unwrap();
}

#[test]
fn stall_mid_header_gets_408_within_the_read_timeout() {
    let server = spawn(quick_config());
    let addr = server.addr();
    let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    client
        .send_all(b"GET /healthz HTTP/1.1\r\nHost: ch")
        .unwrap();
    let started = Instant::now();
    // Total silence mid-header: the per-read timeout (400ms) fires.
    let resp = client.read_response().expect("typed timeout response");
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "408 within the read timeout plus slack, got {:?}",
        started.elapsed()
    );
    assert!(client.read_eof().unwrap());
    server.shutdown().unwrap();
}

#[test]
fn stall_mid_body_gets_408_and_a_clean_close() {
    let server = spawn(quick_config());
    let addr = server.addr();
    let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    // Head promises 60 body bytes; deliver 10 and go silent.
    client
        .send_all(
            b"POST /v1/bound HTTP/1.1\r\nHost: chaos\r\nContent-Length: 60\r\n\r\n{\"co\":16,",
        )
        .unwrap();
    let started = Instant::now();
    let resp = client.read_response().expect("typed timeout response");
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(!resp.keeps_alive(), "a half-read body poisons the framing");
    assert!(client.read_eof().unwrap());
    assert!(started.elapsed() < Duration::from_secs(5));
    assert_eq!(one_shot(addr, "GET", "/healthz", "").0, 200);
    server.shutdown().unwrap();
}

#[test]
fn disconnect_after_the_request_line_leaves_the_server_healthy() {
    let server = spawn(quick_config());
    let addr = server.addr();
    for _ in 0..5 {
        let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
        client.send_all(b"POST /v1/plan HTTP/1.1\r\n").unwrap();
        client.disconnect();
    }
    // Give the handlers a beat to observe the EOFs, then demand service.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(one_shot(addr, "GET", "/healthz", "").0, 200);
    // The handler threads unregister asynchronously (the healthz socket
    // above included) — poll briefly rather than racing them.
    let deadline = Instant::now() + Duration::from_secs(5);
    let stats = loop {
        let stats = server.stats_handle().snapshot();
        if stats.connections_open == 0 || Instant::now() > deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        stats.connections_open, 0,
        "no leaked table entries: {stats:?}"
    );
    server.shutdown().unwrap();
}

#[test]
fn pipelined_garbage_after_a_valid_request_gets_400_then_close() {
    let server = spawn(quick_config());
    let mut client = ChaosClient::connect(server.addr(), CLIENT_TIMEOUT);
    let mut burst = request_bytes("GET", "/healthz", "", true);
    burst.extend_from_slice(b"BLURT BLURT BLURT\r\n\r\n");
    client.send_all(&burst).unwrap();
    let first = client.read_response().expect("valid request answered");
    assert_eq!(first.status, 200);
    assert!(first.keeps_alive(), "the valid half earns a keep-alive");
    let second = client.read_response().expect("garbage gets a typed error");
    assert_eq!(second.status, 400, "{}", second.body);
    assert!(!second.keeps_alive(), "garbage poisons the framing");
    assert!(client.read_eof().unwrap());
    server.shutdown().unwrap();
}

#[test]
fn a_stalled_reader_cannot_pin_the_server() {
    let server = spawn(quick_config());
    let addr = server.addr();
    let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    // Drain the response one byte at a time. The body is small enough to
    // finish fast; the point is the server never cares about our pace and
    // other clients are served meanwhile.
    client
        .send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    let resp = client
        .read_response_dribbled(Duration::from_millis(1))
        .expect("dribbled read completes");
    assert_eq!(resp.status, 200);
    assert_eq!(one_shot(addr, "GET", "/healthz", "").0, 200);
    server.shutdown().unwrap();
}

#[test]
fn idle_keepalive_connections_are_reaped_on_the_idle_timeout() {
    let server = spawn(quick_config()); // idle_timeout 600ms
    let mut client = ChaosClient::connect(server.addr(), CLIENT_TIMEOUT);
    client
        .send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    assert_eq!(client.read_response().unwrap().status, 200);
    let started = Instant::now();
    assert!(
        client.read_eof().expect("reap is a clean close"),
        "idle connection must be reaped"
    );
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(300),
        "not reaped before the idle window: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "reaped promptly: {elapsed:?}"
    );
    let stats = server.stats_handle().snapshot();
    assert!(stats.idle_reaped >= 1, "{stats:?}");
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Connection cap and load shed
// ---------------------------------------------------------------------

#[test]
fn connection_cap_evicts_the_oldest_idle_connection() {
    let server = spawn(ServiceConfig {
        max_connections: 2,
        ..ServiceConfig::default()
    });
    let addr = server.addr();
    let mut oldest = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    oldest
        .send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    assert_eq!(oldest.read_response().unwrap().status, 200);
    std::thread::sleep(Duration::from_millis(50));
    let mut second = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    second
        .send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    assert_eq!(second.read_response().unwrap().status, 200);
    // The third connection breaches the cap: the server makes room by
    // evicting `oldest` (idle the longest) and serves the newcomer.
    let (status, _) = one_shot(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(
        oldest.read_eof().expect("eviction is a clean close"),
        "oldest idle connection must be evicted"
    );
    let stats = server.stats_handle().snapshot();
    assert!(stats.idle_reaped >= 1, "{stats:?}");
    server.shutdown().unwrap();
}

#[test]
fn all_busy_connection_cap_sheds_with_retry_after() {
    let server = spawn(ServiceConfig {
        max_connections: 1,
        read_timeout: Duration::from_secs(3),
        request_deadline: Duration::from_secs(3),
        ..ServiceConfig::default()
    });
    let addr = server.addr();
    // Occupy the only slot with a connection stuck mid-body (busy, so it
    // cannot be evicted).
    let mut hog = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    hog.send_all(b"POST /v1/bound HTTP/1.1\r\nHost: chaos\r\nContent-Length: 50\r\n\r\n{")
        .unwrap();
    std::thread::sleep(Duration::from_millis(150)); // let it reach busy
    let mut shed = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    let resp = shed
        .read_response()
        .expect("over-cap connection is answered");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(
        resp.header("retry-after"),
        Some("1"),
        "every 503 carries Retry-After"
    );
    assert!(resp.body.contains("retry_after_seconds"), "{}", resp.body);
    assert!(!resp.keeps_alive());
    assert!(shed.read_eof().unwrap());
    let stats = server.stats_handle().snapshot();
    assert!(stats.shed >= 1, "{stats:?}");
    server.shutdown().unwrap();
}

/// The pool-overflow scenario end to end: with one compute permit and no
/// waiting room, a second concurrent analysis is shed with
/// `503 + Retry-After` — and because the server drained its body first,
/// the *same socket* carries the retry to a 200.
#[test]
fn saturated_gate_sheds_503_with_retry_after_and_the_same_socket_retries() {
    let server = spawn(ServiceConfig {
        threads: 1,
        queue_capacity: 0,
        ..ServiceConfig::default()
    });
    let addr = server.addr();
    // A long cold computation to hold the single permit: a whole-model
    // sweep with candidates unique to this test (cold planning keeps the
    // flight open for hundreds of ms even in release builds).
    let slow_body = "{\"target\":{\"network\":\"vgg16\",\"batch\":3},\
                     \"grid\":{\"pe_rows\":[8,24],\"pe_cols\":[8]}}";
    let hog = std::thread::spawn(move || one_shot(addr, "POST", "/v1/dse", slow_body));
    std::thread::sleep(Duration::from_millis(120)); // let the hog take the permit
    let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    let quick = "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}";
    let mut sheds = 0u32;
    let final_status = loop {
        client
            .send_all(&request_bytes("POST", "/v1/bound", quick, true))
            .unwrap();
        let resp = client.read_response().expect("shed or served, never hung");
        if resp.status == 503 {
            assert_eq!(resp.header("retry-after"), Some("1"), "{:?}", resp.headers);
            assert!(
                resp.keeps_alive(),
                "a shed must leave the connection reusable"
            );
            sheds += 1;
            assert!(sheds < 600, "hog never finished");
            client.stall(Duration::from_millis(50));
            continue;
        }
        break resp.status;
    };
    assert_eq!(final_status, 200, "the same socket carries the retry home");
    assert!(sheds >= 1, "the saturated gate must shed at least once");
    let (status, _) = hog.join().unwrap();
    assert_eq!(status, 200);
    let stats = server.stats_handle().snapshot();
    assert!(stats.shed >= u64::from(sheds), "{stats:?}");
    server.shutdown().unwrap();
}

/// Regression for the worker-starvation hazard: gated requests waiting
/// for a compute permit must not occupy I/O worker threads. With one
/// permit and a two-worker pool, one admitted hog plus *more* pending
/// analyses than workers used to park every worker in the gate's
/// waiting room, starving even `/healthz` until the computations
/// finished. Now pending requests wait in the gate wait room without a
/// thread: ungated traffic keeps flowing, and every pending request is
/// pumped to completion once a permit frees — none shed, none lost.
#[test]
fn saturated_gate_does_not_starve_ungated_traffic() {
    let server = spawn(ServiceConfig {
        threads: 1,
        io_workers: 2,
        ..ServiceConfig::default()
    });
    let addr = server.addr();
    // Calibrate one cold whole-model sweep (candidates unique to this
    // request, so nothing below can serve it from a cache).
    let calibrate = Instant::now();
    let (status, _) = one_shot(
        addr,
        "POST",
        "/v1/dse",
        "{\"target\":{\"network\":\"vgg16\",\"batch\":2},\
         \"grid\":{\"pe_rows\":[12,28],\"pe_cols\":[12]}}",
    );
    assert_eq!(status, 200);
    let slow_elapsed = calibrate.elapsed();
    // The hog takes the only permit...
    let hog = std::thread::spawn(move || {
        one_shot(
            addr,
            "POST",
            "/v1/dse",
            "{\"target\":{\"network\":\"vgg16\",\"batch\":7},\
             \"grid\":{\"pe_rows\":[20,44],\"pe_cols\":[20]}}",
        )
    });
    std::thread::sleep(Duration::from_millis(120));
    // ...and more slow analyses than there are I/O workers go pending,
    // each cold (unique batch, PE dims divisible by the default 4x4
    // grouping).
    let pending: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let body = format!(
                    "{{\"target\":{{\"network\":\"vgg16\",\"batch\":{}}},\
                     \"grid\":{{\"pe_rows\":[{},{}],\"pe_cols\":[20]}}}}",
                    4 + i,
                    20 + 4 * i,
                    36 + 4 * i,
                );
                one_shot(addr, "POST", "/v1/dse", &body)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150)); // let them frame and shelve
    // Ungated traffic must answer promptly even though the gate stays
    // saturated for several more slow computations.
    let probe = Instant::now();
    let (status, _) = one_shot(addr, "GET", "/healthz", "");
    let healthz_elapsed = probe.elapsed();
    assert_eq!(status, 200);
    assert!(
        healthz_elapsed < slow_elapsed.max(Duration::from_millis(250)),
        "healthz took {healthz_elapsed:?} with the gate saturated \
         (one cold sweep computes in {slow_elapsed:?})"
    );
    // Every pending analysis is pumped to completion once the permit
    // frees: the wait room holds them without a thread, and nothing in
    // its default capacity sheds.
    let (status, _) = hog.join().unwrap();
    assert_eq!(status, 200);
    for handle in pending {
        let (status, _) = handle.join().unwrap();
        assert_eq!(status, 200, "shelved requests must complete, not shed");
    }
    let stats = server.stats_handle().snapshot();
    assert_eq!(stats.shed, 0, "{stats:?}");
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------

#[test]
fn shutdown_drains_in_flight_requests_and_reaps_idle_sockets() {
    let server = spawn(ServiceConfig {
        drain_deadline: Duration::from_secs(5),
        ..ServiceConfig::default()
    });
    let addr = server.addr();
    let stats = server.stats_handle();
    // One idle keep-alive socket to be reaped...
    let mut idle = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    idle.send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    assert_eq!(idle.read_response().unwrap().status, 200);
    // ...and one request in flight when the drain begins.
    let inflight = std::thread::spawn(move || {
        let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
        let request = request_bytes(
            "POST",
            "/v1/bound",
            "{\"co\":24,\"size\":14,\"ci\":12,\"batch\":1}",
            true,
        );
        // Drip the body so the request straddles the shutdown call.
        client
            .send_dripped(&request, 8, Duration::from_millis(20))
            .expect("drain must let the in-flight request finish");
        client.read_response()
    });
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown().expect("accept loop exits cleanly");
    let resp = inflight
        .join()
        .unwrap()
        .expect("in-flight request completes through the drain");
    assert_eq!(resp.status, 200);
    assert!(
        !resp.keeps_alive(),
        "responses during drain announce the close"
    );
    assert!(
        idle.read_eof().unwrap(),
        "idle socket reaped at drain start"
    );
    let snapshot = stats.snapshot();
    assert!(snapshot.idle_reaped >= 1, "{snapshot:?}");
    assert_eq!(snapshot.drain_aborted, 0, "nothing straggled: {snapshot:?}");
    assert_eq!(snapshot.connections_open, 0, "{snapshot:?}");
}

#[test]
fn drain_hard_deadline_aborts_stragglers() {
    let server = spawn(ServiceConfig {
        read_timeout: Duration::from_secs(20),
        request_deadline: Duration::from_secs(20),
        drain_deadline: Duration::from_millis(300),
        ..ServiceConfig::default()
    });
    let addr = server.addr();
    let stats = server.stats_handle();
    // A connection stuck mid-body with a 20s read timeout: it cannot
    // finish inside the 300ms drain window.
    let mut straggler = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    straggler
        .send_all(b"POST /v1/bound HTTP/1.1\r\nHost: chaos\r\nContent-Length: 500\r\n\r\n{")
        .unwrap();
    std::thread::sleep(Duration::from_millis(100)); // reach the body read
    let started = Instant::now();
    server
        .shutdown()
        .expect("accept loop exits despite the straggler");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown returns near the hard deadline, got {:?}",
        started.elapsed()
    );
    let snapshot = stats.snapshot();
    assert!(snapshot.drain_aborted >= 1, "{snapshot:?}");
    // The straggler observes the abort, not a hang.
    assert!(straggler.read_eof().is_ok());
}

#[test]
fn shutdown_endpoint_is_gated_and_drains_when_allowed() {
    // Disabled by default: 403, server keeps serving.
    let server = spawn(ServiceConfig::default());
    let (status, body) = one_shot(server.addr(), "POST", "/v1/shutdown", "{}");
    assert_eq!(status, 403, "{body}");
    assert_eq!(one_shot(server.addr(), "GET", "/healthz", "").0, 200);
    server.shutdown().unwrap();

    // Enabled: 200 + drain; the server stops answering new connections.
    let server = spawn(ServiceConfig {
        allow_shutdown: true,
        drain_deadline: Duration::from_secs(2),
        ..ServiceConfig::default()
    });
    let addr = server.addr();
    let (status, body) = one_shot(addr, "POST", "/v1/shutdown", "{}");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("draining"), "{body}");
    server
        .shutdown()
        .expect("already-draining server joins cleanly");
    // Nobody answers anymore.
    let probe_ok = match std::net::TcpStream::connect(addr) {
        Ok(stream) => {
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let mut reader = std::io::BufReader::new(stream);
            use std::io::Read as _;
            let mut buf = [0u8; 1];
            !matches!(reader.read(&mut buf), Ok(1..))
        }
        Err(_) => true,
    };
    assert!(probe_ok, "a drained server must not serve new connections");
}

// ---------------------------------------------------------------------
// Lifecycle bugfix regressions (PR 9)
// ---------------------------------------------------------------------

/// A log sink that collects every line for later assertions.
fn collector() -> (
    clb_service::LogSink,
    std::sync::Arc<std::sync::Mutex<Vec<String>>>,
) {
    let lines = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink_lines = std::sync::Arc::clone(&lines);
    let sink: clb_service::LogSink = std::sync::Arc::new(move |line: &str| {
        sink_lines.lock().unwrap().push(line.to_string());
    });
    (sink, lines)
}

/// The ignored-`set_read_timeout` regression: a zero `read_timeout` makes
/// `set_read_timeout` fail (`InvalidInput`, before any syscall) — the
/// exact class of sockopt failure the old code discarded with `let _ =`,
/// silently serving the connection without slowloris protection. The
/// sockopt policy demands the opposite: log `status=0` and close the
/// connection unserved. On the pre-fix code this test fails because the
/// request is answered `200`.
#[test]
fn sockopt_failure_closes_the_connection_unserved_with_a_status_zero_log() {
    let (sink, lines) = collector();
    let server = spawn(ServiceConfig {
        read_timeout: Duration::ZERO,
        log: Some(sink),
        ..quick_config()
    });
    let mut client = ChaosClient::connect(server.addr(), CLIENT_TIMEOUT);
    client
        .send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    assert!(
        client.read_eof().expect("a clean close, not a response"),
        "a connection whose socket timeouts cannot be installed must close unserved"
    );
    let logged = lines.lock().unwrap().join("\n");
    assert!(
        logged.contains("method=- path=- status=0"),
        "the abort must be logged with status=0, got: {logged:?}"
    );
    let stats = server.stats_handle().snapshot();
    assert_eq!(stats.requests, 0, "nothing was served: {stats:?}");
    assert_eq!(stats.connections_open, 0, "no leaked entry: {stats:?}");
    server.shutdown().unwrap();
}

/// The poisoned-lock regression, end to end: a handler that panics
/// mid-request (a panicking log sink stands in for any handler bug)
/// costs its own connection and nothing else — the next connections are
/// served normally and no table entry leaks. Unit tests in the server
/// module pin the lock-recovery itself.
#[test]
fn a_panicking_handler_leaves_the_server_serving() {
    let tripped = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sink_tripped = std::sync::Arc::clone(&tripped);
    let sink: clb_service::LogSink = std::sync::Arc::new(move |_line: &str| {
        if !sink_tripped.swap(true, std::sync::atomic::Ordering::SeqCst) {
            panic!("deliberately panicking handler (chaos)");
        }
    });
    let server = spawn(ServiceConfig {
        log: Some(sink),
        ..ServiceConfig::default()
    });
    let addr = server.addr();
    // First request trips the panic (after its response is written); its
    // connection is dropped by the worker's panic handler.
    let mut victim = ChaosClient::connect(addr, CLIENT_TIMEOUT);
    victim
        .send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    // Whether or not the response made it out before the panic, the
    // socket must end up closed, not hung.
    let _ = victim.read_response();
    assert!(victim.read_eof().unwrap_or(true));
    assert!(tripped.load(std::sync::atomic::Ordering::SeqCst));
    // The server — including the worker pool and the shared tables — must
    // keep serving new connections afterwards.
    for _ in 0..3 {
        assert_eq!(one_shot(addr, "GET", "/healthz", "").0, 200);
    }
    assert_eq!(
        one_shot(
            addr,
            "POST",
            "/v1/bound",
            "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}"
        )
        .0,
        200
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    let stats = loop {
        let stats = server.stats_handle().snapshot();
        if stats.connections_open == 0 || Instant::now() > deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(stats.connections_open, 0, "no leaked entries: {stats:?}");
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Event-loop cases (PR 9): parked connections under load and drain
// ---------------------------------------------------------------------

/// The event-tier liveness case: one connection busy dripping its body
/// (pinning an I/O worker) plus N idle connections parked on the poller.
/// An idle socket that turns readable mid-way through the busy drain
/// must be served promptly — readiness dispatch cannot sit behind the
/// busy worker. Then a graceful drain reaps every parked socket, lets
/// the busy request finish, and leaves nothing open or aborted.
#[test]
fn idle_parked_connections_are_served_and_drained_alongside_a_busy_one() {
    const N_IDLE: usize = 8;
    let server = spawn(ServiceConfig {
        idle_timeout: Duration::from_secs(30), // parked sockets stay parked
        drain_deadline: Duration::from_secs(5),
        ..ServiceConfig::default()
    });
    let addr = server.addr();
    // N idle keep-alive connections, all parked on the poller.
    let mut idlers: Vec<ChaosClient> = (0..N_IDLE)
        .map(|_| {
            let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
            client
                .send_all(&request_bytes("GET", "/healthz", "", true))
                .unwrap();
            assert_eq!(client.read_response().unwrap().status, 200);
            client
        })
        .collect();
    // One busy connection dripping a request body for a while.
    let busy = std::thread::spawn(move || {
        let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
        let request = request_bytes(
            "POST",
            "/v1/bound",
            "{\"co\":24,\"size\":14,\"ci\":12,\"batch\":1}",
            true,
        );
        client
            .send_dripped(&request, 4, Duration::from_millis(25))
            .expect("the dripped request must be accepted");
        client.read_response()
    });
    std::thread::sleep(Duration::from_millis(100)); // the drip is mid-flight
                                                    // A parked idle socket turns readable now: it must be dispatched and
                                                    // answered while the busy connection still drips.
    let mut woken = idlers.pop().unwrap();
    let asked = Instant::now();
    woken
        .send_all(&request_bytes("GET", "/healthz", "", true))
        .unwrap();
    let resp = woken.read_response().expect("woken idler is served");
    assert_eq!(resp.status, 200);
    assert!(
        asked.elapsed() < Duration::from_secs(2),
        "readiness dispatch must not wait out the busy connection: {:?}",
        asked.elapsed()
    );
    {
        let stats = server.stats_handle().snapshot();
        assert_eq!(
            stats.connections_open,
            N_IDLE as u64 + 1,
            "all parked + busy connections stay open: {stats:?}"
        );
    }
    // Graceful drain with the drip still in flight: parked sockets are
    // reaped immediately, the busy request finishes, nothing is aborted.
    server.shutdown().expect("drain completes");
    let resp = busy
        .join()
        .unwrap()
        .expect("in-flight request survives the drain");
    assert_eq!(resp.status, 200);
    assert!(!resp.keeps_alive(), "drain announces the close");
    for (i, idler) in idlers.iter_mut().enumerate() {
        assert!(
            idler.read_eof().expect("reap is a clean close"),
            "parked connection {i} must be reaped at drain start"
        );
    }
    assert!(
        woken.read_eof().unwrap(),
        "the woken idler is parked again by then and reaped too"
    );
}

// ---------------------------------------------------------------------
// Segmentation proptest (satellite): arbitrary TCP segment boundaries
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two back-to-back valid requests, split across arbitrary segment
    /// boundaries with small pauses, must produce exactly the same two
    /// responses as sequential one-shot connections — the parser state
    /// machine cannot care where TCP fragments the stream.
    #[test]
    fn segmented_keepalive_requests_match_one_shot_responses(
        cuts in prop::collection::vec(1usize..200, 0..8),
        second_is_garbage in prop::bool::ANY,
    ) {
        // Default config: segments pause 5ms, every deadline is seconds
        // away, so the only variable under test is the fragmentation.
        let server = spawn(ServiceConfig::default());
        let addr = server.addr();
        let first_req = ("POST", "/v1/bound", "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}");
        let mut bytes = request_bytes(first_req.0, first_req.1, first_req.2, true);
        let second_req = ("POST", "/v1/plan", "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}");
        if second_is_garbage {
            bytes.extend_from_slice(b"NONSENSE NOISE HTTP/9.9\r\nqqq\r\n\r\n");
        } else {
            bytes.extend_from_slice(&request_bytes(second_req.0, second_req.1, second_req.2, true));
        }
        // References on their own connections.
        let expected_first = one_shot(addr, first_req.0, first_req.1, first_req.2);
        let expected_second = if second_is_garbage {
            None
        } else {
            Some(one_shot(addr, second_req.0, second_req.1, second_req.2))
        };

        // Send the concatenated stream in randomly-cut segments.
        let mut cut_points: Vec<usize> = cuts.iter().map(|c| c % bytes.len()).collect();
        cut_points.sort_unstable();
        cut_points.dedup();
        let mut client = ChaosClient::connect(addr, CLIENT_TIMEOUT);
        let mut sent = 0usize;
        for cut in cut_points.into_iter().filter(|&c| c > 0) {
            client.send_all(&bytes[sent..cut]).unwrap();
            client.stall(Duration::from_millis(5));
            sent = cut;
        }
        client.send_all(&bytes[sent..]).unwrap();

        let first = client.read_response().expect("first response");
        prop_assert_eq!(first.status, expected_first.0);
        prop_assert_eq!(&first.body, &expected_first.1);
        match expected_second {
            Some((status, body)) => {
                let second = client.read_response().expect("second response");
                prop_assert_eq!(second.status, status);
                prop_assert_eq!(&second.body, &body);
            }
            None => {
                let second = client.read_response().expect("garbage answered");
                prop_assert_eq!(second.status, 400);
                prop_assert!(!second.keeps_alive());
                prop_assert!(client.read_eof().unwrap());
            }
        }
        server.shutdown().unwrap();
    }
}

// ---------------------------------------------------------------------
// Interleaved-readiness proptest (PR 9): park/unpark cycles across
// connections preserve byte parity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Several keep-alive connections issue requests in an arbitrary
    /// interleaving, with stalls between them so each connection is
    /// parked on the poller and re-dispatched many times. Every response
    /// must be byte-identical to the same request on a fresh one-shot
    /// connection: readiness wakeup order, parking, and re-dispatch must
    /// be invisible in the bytes.
    #[test]
    fn interleaved_readiness_wakeups_preserve_byte_parity(
        schedule in prop::collection::vec((0usize..3, 0usize..3, 0u64..30), 4..14),
    ) {
        let server = spawn(ServiceConfig::default());
        let addr = server.addr();
        let requests: [(&str, &str, &str); 3] = [
            ("GET", "/healthz", ""),
            ("POST", "/v1/bound", "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}"),
            ("POST", "/v1/plan", "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}"),
        ];
        // References, each on its own closed connection.
        let expected: Vec<(u16, String)> = requests
            .iter()
            .map(|(m, p, b)| one_shot(addr, m, p, b))
            .collect();
        let mut clients: Vec<ChaosClient> = (0..3)
            .map(|_| ChaosClient::connect(addr, CLIENT_TIMEOUT))
            .collect();
        for (conn, req, stall_ms) in schedule {
            let (method, path, body) = requests[req];
            clients[conn]
                .send_all(&request_bytes(method, path, body, true))
                .unwrap();
            let resp = clients[conn].read_response().expect("interleaved response");
            prop_assert_eq!(resp.status, expected[req].0, "{} on conn {}", path, conn);
            prop_assert_eq!(&resp.body, &expected[req].1, "{} on conn {}", path, conn);
            prop_assert!(resp.keeps_alive());
            // Let the connection park on the poller before its next turn.
            if stall_ms > 0 {
                std::thread::sleep(Duration::from_millis(stall_ms));
            }
        }
        server.shutdown().unwrap();
    }
}
