//! End-to-end tests: a real server on an ephemeral port, real TCP clients.
//!
//! The acceptance property pinned here is the ISSUE's: the server handles
//! ≥ 64 concurrent in-flight requests and every response body is
//! bit-identical to what a direct, single-threaded library call produces.

use std::io::{Read, Write};
use std::net::TcpStream;

use clb_core::Accelerator;
use clb_service::{api, PlanResponse, Server, ServiceConfig};
use conv_model::ConvLayer;
use serde::Value;

/// A minimal HTTP/1.1 client: one request, returns (status, body).
/// Sends `Connection: close` — this suite tests the request surface, not
/// connection reuse (that's `connection_lifecycle.rs`), and `read_to_string`
/// needs the server to close the socket to delimit the response.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

/// Extracts one `key=value` field from a structured request-log line.
fn log_field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split(' ')
        .find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
        .unwrap_or_else(|| panic!("no {key}= field in {line}"))
}

fn parse_response(raw: &str) -> (u16, String) {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response must have a blank line");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("status code is numeric");
    // Content-Length must describe the body exactly.
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("response carries Content-Length")
        .parse()
        .unwrap();
    assert_eq!(declared, body.len(), "Content-Length must match the body");
    (status, body.to_string())
}

fn spawn_server() -> clb_service::RunningServer {
    Server::spawn(ServiceConfig::default()).expect("bind an ephemeral port")
}

#[test]
fn healthz_and_cache_stats_respond() {
    let server = spawn_server();
    let (status, body) = request(server.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\": \"ok\"}");

    let (status, body) = request(server.addr(), "GET", "/v1/cache_stats", "");
    assert_eq!(status, 200);
    let stats: clb_service::CacheStatsResponse = serde_json::from_str(&body).unwrap();
    assert!(stats.service.requests >= 1);
    server.shutdown().unwrap();
}

#[test]
fn cache_stats_report_per_route_latency_histograms() {
    let server = spawn_server();
    let addr = server.addr();
    let body = "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}";
    for _ in 0..3 {
        let (status, _) = request(addr, "POST", "/v1/bound", body);
        assert_eq!(status, 200);
    }
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, stats_body) = request(addr, "GET", "/v1/cache_stats", "");
    assert_eq!(status, 200);
    server.shutdown().unwrap();

    let stats: clb_service::CacheStatsResponse = serde_json::from_str(&stats_body).unwrap();
    // Every route always appears, in the fixed LATENCY_ROUTES order —
    // including routes that served nothing (stable scrape schema).
    let routes: Vec<&str> = stats.latency.iter().map(|r| r.route.as_str()).collect();
    assert_eq!(routes, clb_service::LATENCY_ROUTES.to_vec());
    let by_route = |route: &str| {
        stats
            .latency
            .iter()
            .find(|r| r.route == route)
            .unwrap()
            .clone()
    };
    let bound = by_route("/v1/bound");
    assert_eq!(bound.count, 3);
    // Percentiles are log2-bucket upper bounds: 2^i - 1 for some i, with
    // p50 <= p99, and the exact max inside the p99 bucket's range or above
    // the p50 bucket's lower bound.
    for p in [bound.p50_micros, bound.p99_micros] {
        assert!((p + 1).is_power_of_two(), "bucket bound: {p}");
    }
    assert!(bound.p50_micros <= bound.p99_micros);
    assert!(bound.max_micros <= 60_000_000, "{}", bound.max_micros);
    // The 404 lands in the trailing `other` bucket; the stats request
    // itself was still in flight when its snapshot was taken.
    assert_eq!(by_route("other").count, 1);
    assert_eq!(by_route("/v1/simulate").count, 0);
    assert_eq!(by_route("/v1/cache_stats").count, 0);
    let total: u64 = stats.latency.iter().map(|r| r.count).sum();
    assert_eq!(total, 4);
}

#[test]
fn sixty_four_concurrent_requests_are_bit_identical_to_library_output() {
    let server = spawn_server();
    let addr = server.addr();

    // Eight distinct queries across three endpoints; the expected body for
    // each is computed by a direct library call (plan) or the pure handler
    // (bound/sweep) — both are single-threaded reference paths.
    let mut queries: Vec<(&str, String, String)> = Vec::new();
    for (co, size, ci) in [(16, 14, 8), (32, 28, 16), (24, 10, 12)] {
        let body = format!("{{\"co\":{co},\"size\":{size},\"ci\":{ci},\"batch\":1}}");
        let layer = ConvLayer::square(1, co, size, ci, 3, 1).unwrap();
        let report = Accelerator::implementation(1)
            .analyze_layer("layer", &layer)
            .unwrap();
        let expected = serde_json::to_string_pretty(&PlanResponse {
            implementation: 1,
            report,
        })
        .unwrap();
        queries.push(("/v1/plan", body, expected));
    }
    for (co, size, ci) in [(16, 14, 8), (48, 7, 24)] {
        let body = format!("{{\"co\":{co},\"size\":{size},\"ci\":{ci},\"batch\":1}}");
        let parsed: Value = serde_json::from_str(&body).unwrap();
        let expected = api::bound_response(&parsed).unwrap();
        queries.push(("/v1/bound", body.clone(), expected));
        let expected = api::sweep_response(&parsed).unwrap();
        queries.push(("/v1/sweep", body, expected));
    }
    assert_eq!(queries.len(), 7);

    // 64 client threads, each issuing several requests; every in-flight
    // wave covers all queries, so identical requests overlap and exercise
    // the coalescing map and response cache as well as raw concurrency.
    let barrier = std::sync::Barrier::new(64);
    std::thread::scope(|scope| {
        for t in 0..64 {
            let (barrier, queries) = (&barrier, &queries);
            scope.spawn(move || {
                barrier.wait(); // all 64 fire together
                for round in 0..3 {
                    let (path, body, expected) = &queries[(t + round) % queries.len()];
                    let (status, got) = request(addr, "POST", path, body);
                    assert_eq!(status, 200, "{path} {body}");
                    assert_eq!(&got, expected, "response must be bit-identical: {path}");
                }
            });
        }
    });

    // The stats endpoint must show the warm layers actually short-circuited
    // repeated work: 192 requests for 7 distinct queries.
    let (status, body) = request(addr, "GET", "/v1/cache_stats", "");
    assert_eq!(status, 200);
    let stats: clb_service::CacheStatsResponse = serde_json::from_str(&body).unwrap();
    // The stats request itself is only counted after its response renders,
    // so it sees exactly the 192 POSTs.
    assert_eq!(stats.service.requests, 64 * 3);
    assert!(
        stats.service.responses_cached + stats.service.coalesced >= 64 * 3 - 7,
        "identical queries must be coalesced or cached, got {:?}",
        stats.service
    );
    server.shutdown().unwrap();
}

#[test]
fn simulate_endpoint_round_trips_and_validates() {
    let server = spawn_server();
    let addr = server.addr();

    // Valid explicit tiling: the wire response must be bit-identical to the
    // pure handler (which itself is pinned against the library call).
    let valid = "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1,\
                 \"tiling\":{\"b\":1,\"z\":8,\"y\":7,\"x\":7}}";
    let parsed: Value = serde_json::from_str(valid).unwrap();
    let expected = api::simulate_response(&parsed).unwrap();
    let (status, got) = request(addr, "POST", "/v1/simulate", valid);
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, expected);

    // Zero-dimension tilings must come back 422 promptly — before the fix,
    // `block_grid` would spin forever and this request would hang a worker
    // until the read timeout.
    let zero = "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1,\
                \"tiling\":{\"b\":1,\"z\":0,\"y\":7,\"x\":7}}";
    let (status, body) = request(addr, "POST", "/v1/simulate", zero);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("nonzero"), "{body}");

    // Missing tiling object → 400, oversized dimension → 422.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/simulate",
        "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}",
    );
    assert_eq!(status, 400, "{body}");
    let oversized = "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1,\
                     \"tiling\":{\"b\":1,\"z\":8,\"y\":7,\"x\":700}}";
    let (status, body) = request(addr, "POST", "/v1/simulate", oversized);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("exceeds"), "{body}");
    server.shutdown().unwrap();
}

#[test]
fn network_endpoint_matches_direct_network_analysis() {
    let server = spawn_server();
    let expected = {
        let net = conv_model::workloads::alexnet(1);
        let report = Accelerator::implementation(1)
            .analyze_network(&net)
            .unwrap();
        serde_json::to_string_pretty(&report).unwrap()
    };
    let (status, got) = request(
        server.addr(),
        "POST",
        "/v1/network",
        "{\"net\":\"alexnet\",\"batch\":1}",
    );
    assert_eq!(status, 200);
    assert_eq!(got, expected);
    server.shutdown().unwrap();
}

#[test]
fn equivalent_json_bodies_share_one_cache_entry() {
    let server = spawn_server();
    let addr = server.addr();
    // Same query, different formatting and key order.
    let spellings = [
        "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}",
        "{ \"size\": 14, \"ci\": 8, \"co\": 16, \"batch\": 1 }",
    ];
    let (status, first) = request(addr, "POST", "/v1/bound", spellings[0]);
    assert_eq!(status, 200);
    let (_, second) = request(addr, "POST", "/v1/bound", spellings[1]);
    assert_eq!(first, second);
    let (_, body) = request(addr, "GET", "/v1/cache_stats", "");
    let stats: clb_service::CacheStatsResponse = serde_json::from_str(&body).unwrap();
    assert!(
        stats.service.responses_cached >= 1,
        "the re-ordered spelling must hit the canonicalized cache key"
    );
    server.shutdown().unwrap();
}

#[test]
fn http_errors_over_the_wire() {
    let server = spawn_server();
    let addr = server.addr();

    // Unknown endpoint.
    let (status, body) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\""));

    // Wrong method for a known endpoint.
    let (status, _) = request(addr, "GET", "/v1/plan", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/healthz", "{}");
    assert_eq!(status, 405);

    // Bad JSON body.
    let (status, _) = request(addr, "POST", "/v1/plan", "{not json");
    assert_eq!(status, 400);

    // Unprocessable layer.
    let (status, _) = request(addr, "POST", "/v1/plan", "{\"co\":0,\"size\":1,\"ci\":1}");
    assert_eq!(status, 422);

    // Declared-oversized payload is refused up front.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "POST /v1/plan HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 413 "), "got: {raw}");

    // A malformed request line never kills the server.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "BLURT\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 400 "), "got: {raw}");

    // …and the server still answers.
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    server.shutdown().unwrap();
}

#[test]
fn dse_endpoint_round_trips_a_vgg16_layer_sweep() {
    let server = spawn_server();
    let addr = server.addr();
    // VGG-16 conv4_1 (batch 1 keeps the debug-build sweep quick) over a
    // 2×2 grid of custom candidates: the wire bytes must match the pure
    // handler, which the dse_and_arch tests pin against the serial
    // /v1/plan + /v1/simulate oracle.
    let body = "{\"co\":512,\"size\":28,\"ci\":256,\"batch\":1,\
                \"grid\":{\"pe_rows\":[16,32],\"lreg_entries_per_pe\":[64,128]}}";
    let parsed: Value = serde_json::from_str(body).unwrap();
    let expected = api::dse_response(&parsed).unwrap();
    let (status, got) = request(addr, "POST", "/v1/dse", body);
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, expected, "wire response must be bit-identical");
    let v: Value = serde_json::from_str(&got).unwrap();
    assert_eq!(v.get_field("unique").unwrap().as_number().unwrap(), 4.0);

    // Hostile candidate over the wire: typed 422 naming the invariant.
    let hostile = "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1,\
                   \"candidates\":[{\"pe_rows\":0}]}";
    let (status, body) = request(addr, "POST", "/v1/dse", hostile);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("non-empty"), "{body}");
    server.shutdown().unwrap();
}

#[test]
fn request_log_lines_have_the_pinned_shape() {
    let lines = std::sync::Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
    let sink_lines = std::sync::Arc::clone(&lines);
    let config = ServiceConfig {
        log: Some(std::sync::Arc::new(move |line: &str| {
            sink_lines.lock().unwrap().push(line.to_string());
        })),
        ..ServiceConfig::default()
    };
    let server = Server::spawn(config).expect("bind an ephemeral port");
    let addr = server.addr();

    let body = "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1}";
    let (status, _) = request(addr, "POST", "/v1/bound", body);
    assert_eq!(status, 200);
    let (status, _) = request(addr, "POST", "/v1/bound", body); // warm: cache hit
    assert_eq!(status, 200);
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    // The trace-capable endpoints carry a trailing trace= field: `on` when
    // the body holds a non-null `trace`, `off` otherwise.
    let traced = "{\"co\":16,\"size\":14,\"ci\":8,\"batch\":1,\
         \"tiling\":{\"b\":1,\"z\":8,\"y\":7,\"x\":7},\"trace\":{}}";
    let (status, _) = request(addr, "POST", "/v1/simulate", traced);
    assert_eq!(status, 200);
    let (status, _) = request(addr, "POST", "/v1/plan", body);
    assert_eq!(status, 200);
    // /v1/network lines end with a net= tag: the preset name, `custom` for
    // a network object, sanitized so hostile names cannot forge extra
    // key=value pairs in the line.
    let (status, _) = request(addr, "POST", "/v1/network", "{\"net\":\"alexnet\",\"batch\":1}");
    assert_eq!(status, 200);
    let custom = "{\"net\":{\"name\":\"t\",\"batch\":1,\
         \"layers\":[{\"co\":8,\"ci\":3,\"size\":14}]}}";
    let (status, _) = request(addr, "POST", "/v1/network", custom);
    assert_eq!(status, 200);
    let (status, _) = request(addr, "POST", "/v1/network", "{\"net\":\"a b=c d\"}");
    assert_eq!(status, 422);
    server.shutdown().unwrap();

    let lines = lines.lock().unwrap();
    assert_eq!(lines.len(), 9, "one line per completed request: {lines:?}");
    // Shape: space-separated key=value pairs in fixed order, micros numeric;
    // /v1/simulate and /v1/plan lines end with the extra trace= field,
    // /v1/network lines with the extra net= tag.
    for line in lines.iter() {
        let fields: Vec<(&str, &str)> = line
            .split(' ')
            .map(|kv| kv.split_once('=').expect("key=value"))
            .collect();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        let path = fields[1].1;
        if path == "/v1/simulate" || path == "/v1/plan" {
            assert_eq!(
                keys,
                ["method", "path", "status", "micros", "cache", "conn", "trace"],
                "{line}"
            );
            assert!(
                matches!(fields[6].1, "on" | "off"),
                "trace must be on|off: {line}"
            );
        } else if path == "/v1/network" {
            assert_eq!(
                keys,
                ["method", "path", "status", "micros", "cache", "conn", "net"],
                "{line}"
            );
        } else {
            assert_eq!(
                keys,
                ["method", "path", "status", "micros", "cache", "conn"],
                "{line}"
            );
        }
        let micros: u64 = fields[3].1.parse().expect("micros numeric");
        assert!(micros < 60_000_000, "{line}");
        fields[2].1.parse::<u16>().expect("status numeric");
        fields[5].1.parse::<u64>().expect("conn numeric");
    }
    assert_eq!(log_field(&lines[4], "trace"), "on", "{}", lines[4]);
    assert_eq!(log_field(&lines[5], "trace"), "off", "{}", lines[5]);
    assert_eq!(log_field(&lines[6], "net"), "alexnet", "{}", lines[6]);
    assert_eq!(log_field(&lines[7], "net"), "custom", "{}", lines[7]);
    // The hostile name still logs — 422, sanitized so the shape holds.
    assert!(lines[8].contains("status=422"), "{}", lines[8]);
    assert_eq!(log_field(&lines[8], "net"), "a_b_c_d", "{}", lines[8]);
    assert_eq!(
        lines[0],
        format!(
            "method=POST path=/v1/bound status=200 {} cache=miss conn={}",
            lines[0].split(' ').nth(3).unwrap(),
            log_field(&lines[0], "conn"),
        )
    );
    assert!(lines[1].contains("cache=hit"), "{}", lines[1]);
    assert!(
        lines[2].starts_with("method=GET path=/healthz status=200"),
        "{}",
        lines[2]
    );
    assert_eq!(log_field(&lines[2], "cache"), "-", "{}", lines[2]);
    assert!(lines[3].contains("status=404"), "{}", lines[3]);
    // Close-per-request clients get a fresh connection id every time.
    let conns: std::collections::BTreeSet<&str> =
        lines.iter().map(|l| log_field(l, "conn")).collect();
    assert_eq!(conns.len(), 9, "{lines:?}");
}

/// Network-mode `/v1/dse` through the request log: the pinned line shape
/// must hold for 200s *and* 422s, and the `cache=` field must report the
/// real outcome — one `miss` leader per burst of identical concurrent
/// sweeps, everyone else `coalesced` (or `hit` once the leader retired),
/// and `miss` every time for uncacheable 422s. Successful sweep lines
/// additionally carry the staged funnel (`candidates= pruned= kept=
/// objective=`); legacy sweeps log `objective=-`, error lines keep the
/// base shape (there is no funnel to report).
#[test]
fn request_log_covers_network_mode_dse() {
    let lines = std::sync::Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
    let sink_lines = std::sync::Arc::clone(&lines);
    let config = ServiceConfig {
        threads: 4,
        log: Some(std::sync::Arc::new(move |line: &str| {
            sink_lines.lock().unwrap().push(line.to_string());
        })),
        ..ServiceConfig::default()
    };
    let server = Server::spawn(config).expect("bind an ephemeral port");
    let addr = server.addr();

    // 422 path: a network-mode request naming an unknown model. Errors are
    // never cached, so both issues must log cache=miss.
    let hostile = "{\"target\":{\"network\":\"lenet\"},\"grid\":{\"pe_rows\":[16]}}";
    for _ in 0..2 {
        let (status, _) = request(addr, "POST", "/v1/dse", hostile);
        assert_eq!(status, 422);
    }

    // 200 path: four identical whole-model sweeps fired together. The
    // candidates are unique to this test, so the leader's cold planning
    // (~hundreds of ms in debug builds) keeps the flight open while the
    // followers arrive — they must share it, not recompute.
    let sweep = "{\"target\":{\"network\":\"vgg16\",\"batch\":3},\
                 \"grid\":{\"pe_rows\":[8,24],\"pe_cols\":[8]}}";
    let barrier = std::sync::Barrier::new(4);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                barrier.wait();
                let (status, _) = request(addr, "POST", "/v1/dse", sweep);
                assert_eq!(status, 200);
            });
        }
    });

    // A staged sweep logs the requested objective by name.
    let staged = "{\"target\":{\"network\":\"vgg16\",\"batch\":3},\
                  \"grid\":{\"pe_rows\":[8,24],\"pe_cols\":[8]},\
                  \"objective\":\"traffic\",\"top_k\":1}";
    let (status, _) = request(addr, "POST", "/v1/dse", staged);
    assert_eq!(status, 200);
    server.shutdown().unwrap();

    let lines = lines.lock().unwrap();
    assert_eq!(lines.len(), 7, "one line per completed request: {lines:?}");
    // Every line keeps the pinned key order regardless of mode or status:
    // successful sweeps append the staged funnel, errors stay base-shaped.
    for line in lines.iter() {
        let fields: Vec<(&str, &str)> = line
            .split(' ')
            .map(|kv| kv.split_once('=').expect("key=value"))
            .collect();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        if line.contains("status=200") {
            assert_eq!(
                keys,
                [
                    "method",
                    "path",
                    "status",
                    "micros",
                    "cache",
                    "conn",
                    "candidates",
                    "pruned",
                    "kept",
                    "objective"
                ],
                "{line}"
            );
            fields[6].1.parse::<u64>().expect("candidates numeric");
            fields[7].1.parse::<u64>().expect("pruned numeric");
            fields[8].1.parse::<u64>().expect("kept numeric");
        } else {
            assert_eq!(
                keys,
                ["method", "path", "status", "micros", "cache", "conn"],
                "{line}"
            );
        }
        assert!(line.contains("path=/v1/dse"), "{line}");
    }
    let count = |needle: &str| lines.iter().filter(|l| l.contains(needle)).count();
    assert_eq!(count("status=422"), 2, "{lines:?}");
    assert_eq!(count("status=200"), 5, "{lines:?}");
    // Legacy sweeps have no ranking objective — the funnel logs `-`; the
    // staged sweep names its objective. Both report the 2-candidate grid.
    for line in lines.iter().filter(|l| l.contains("status=200")) {
        assert_eq!(log_field(line, "candidates"), "2", "{line}");
    }
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("status=200") && log_field(l, "objective") == "-")
            .count(),
        4,
        "{lines:?}"
    );
    assert_eq!(log_field(&lines[6], "objective"), "traffic", "{}", lines[6]);
    assert_eq!(log_field(&lines[6], "kept"), "1", "{}", lines[6]);
    // Both 422s recomputed: error responses never enter the cache.
    for line in lines.iter().filter(|l| l.contains("status=422")) {
        assert_eq!(log_field(line, "cache"), "miss", "{line}");
    }
    // The burst shares one computation: exactly one miss; followers either
    // coalesced onto the in-flight leader or (having arrived after it
    // retired) hit the response cache it populated. (The staged sweep on
    // line 6 is a distinct cache key — its own miss — so exclude it.)
    let ok_lines: Vec<&String> = lines[..6]
        .iter()
        .filter(|l| l.contains("status=200"))
        .collect();
    assert_eq!(
        ok_lines
            .iter()
            .filter(|l| log_field(l, "cache") == "miss")
            .count(),
        1,
        "{ok_lines:?}"
    );
    assert!(
        ok_lines
            .iter()
            .all(|l| ["miss", "coalesced", "hit"].contains(&log_field(l, "cache"))),
        "{ok_lines:?}"
    );
    assert!(
        ok_lines
            .iter()
            .any(|l| log_field(l, "cache") == "coalesced"),
        "identical concurrent sweeps must coalesce: {ok_lines:?}"
    );
}

#[test]
fn graceful_shutdown_joins_cleanly() {
    let server = spawn_server();
    let addr = server.addr();
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    server.shutdown().expect("accept loop exits cleanly");
    // The socket must actually be released.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A connect may still succeed briefly on some platforms (TIME_WAIT
            // accept backlog); what matters is that nobody answers.
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            s.set_read_timeout(Some(std::time::Duration::from_secs(2)))
                .unwrap();
            s.read_to_string(&mut out).unwrap_or(0) == 0
        }
    );
}
