//! Custom-network acceptance tests:
//!
//! * **Parity** — a custom network object whose layer list equals a
//!   preset's must produce the byte-identical response, on `/v1/network`
//!   and on network-mode `/v1/dse` alike (the tentpole invariant: the
//!   custom path may not fork the analysis pipeline).
//! * **Hostility** — adversarial network objects (type confusion, absurd
//!   dimensions, deep junk) must never panic or hang the pure handlers:
//!   always a typed 4xx.
//! * **Caps** — every violation is a 422 naming the violated invariant,
//!   checked before any layer is constructed.

use clb_service::api::{self, limits};
use conv_model::workloads::{self, Network};
use proptest::prelude::*;
use serde::Value;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

/// Renders a preset's layer list as the equivalent custom-network JSON,
/// spelling every field explicitly (no defaults), purely from the public
/// [`ConvLayer`] accessors — so the test cannot share a code path with the
/// parser it checks.
fn network_json(net: &Network, batch: usize) -> Value {
    let layers: Vec<Value> = net
        .conv_layers()
        .map(|named| {
            let l = &named.layer;
            assert_eq!(
                l.kernel_height(),
                l.kernel_width(),
                "the custom schema only spells square kernels"
            );
            let pad = l.padding();
            assert_eq!(
                pad.vertical, pad.horizontal,
                "the custom schema only spells symmetric padding"
            );
            obj(vec![
                ("name", s(&named.name)),
                ("co", num(l.out_channels() as f64)),
                ("ci", num(l.in_channels() as f64)),
                ("h", num(l.in_height() as f64)),
                ("w", num(l.in_width() as f64)),
                ("kernel", num(l.kernel_width() as f64)),
                ("stride", num(l.stride() as f64)),
                ("padding", num(pad.vertical as f64)),
            ])
        })
        .collect();
    obj(vec![
        ("name", s(net.name())),
        ("batch", num(batch as f64)),
        ("layers", Value::Array(layers)),
    ])
}

/// The tentpole acceptance criterion on `/v1/network`: a custom layer list
/// identical to a preset's produces the byte-identical response bytes.
#[test]
fn custom_network_matches_its_preset_byte_for_byte() {
    for preset in ["vgg16", "alexnet", "inception", "fc"] {
        let net = api::network_by_name(preset, 1).unwrap();
        let preset_req = obj(vec![("net", s(preset)), ("batch", num(1.0))]);
        let custom_req = obj(vec![("net", network_json(&net, 1))]);
        let expected = api::dispatch("/v1/network", &preset_req);
        let got = api::dispatch("/v1/network", &custom_req);
        assert_eq!(expected.status, 200, "{preset}: {}", expected.body);
        assert_eq!(
            got.body, expected.body,
            "{preset}: custom layer list must reproduce the preset bytes"
        );
    }
}

/// The same invariant on network-mode `/v1/dse`: sweeping the custom
/// object equals sweeping the preset, byte for byte.
#[test]
fn custom_network_matches_its_preset_in_dse_network_mode() {
    let grid = obj(vec![("pe_rows", Value::Array(vec![num(16.0), num(32.0)]))]);
    let preset_req = obj(vec![
        (
            "target",
            obj(vec![("network", s("vgg16")), ("batch", num(1.0))]),
        ),
        ("grid", grid.clone()),
    ]);
    let custom_req = obj(vec![
        (
            "target",
            obj(vec![("network", network_json(&workloads::vgg16(1), 1))]),
        ),
        ("grid", grid),
    ]);
    let expected = api::dispatch("/v1/dse", &preset_req);
    let got = api::dispatch("/v1/dse", &custom_req);
    assert_eq!(expected.status, 200, "{}", expected.body);
    assert_eq!(got.body, expected.body);
}

/// Cap violations are 422s naming the violated invariant, and the caps are
/// checked on the raw numbers — dimensions that would overflow `u64` MACs
/// must be refused, not wrapped.
#[test]
fn cap_violations_are_typed_422s() {
    let layer = |co: f64, ci: f64, size: f64| {
        obj(vec![("co", num(co)), ("ci", num(ci)), ("size", num(size))])
    };
    let net = |layers: Vec<Value>| {
        obj(vec![
            ("net",
             obj(vec![("batch", num(1.0)), ("layers", Value::Array(layers))])),
        ])
    };
    let cases: Vec<(Value, &str)> = vec![
        (net(vec![layer(1e9, 3.0, 14.0)]), "co must be"),
        (net(vec![layer(8.0, 0.0, 14.0)]), "ci must be"),
        (net(vec![layer(8.0, 3.0, 1e6)]), "input size must be"),
        (
            net(vec![obj(vec![
                ("co", num(8.0)),
                ("ci", num(3.0)),
                ("size", num(14.0)),
                ("kernel", num(64.0)),
            ])]),
            "kernel must be",
        ),
        (
            net(vec![obj(vec![
                ("co", num(8.0)),
                ("ci", num(3.0)),
                ("size", num(14.0)),
                ("stride", num(64.0)),
            ])]),
            "stride must be",
        ),
        (
            net(vec![obj(vec![
                ("co", num(8.0)),
                ("ci", num(3.0)),
                ("size", num(4.0)),
                ("kernel", num(9.0)),
                ("padding", s("none")),
            ])]),
            "kernel does not fit",
        ),
        (net(vec![]), "at least one layer"),
    ];
    for (body, naming) in cases {
        let response = api::dispatch("/v1/network", &body);
        assert_eq!(response.status, 422, "{}", response.body);
        assert!(
            response.body.contains(naming),
            "422 must name the invariant `{naming}`: {}",
            response.body
        );
    }
    // The aggregate MAC cap: every layer individually inside the per-layer
    // caps, the u128 total over MAX_NETWORK_MACS.
    let big: Vec<Value> = (0..64)
        .map(|_| layer(4096.0, 4096.0, 128.0))
        .collect();
    let response = api::dispatch("/v1/network", &net(big));
    assert_eq!(response.status, 422, "{}", response.body);
    assert!(response.body.contains("total MACs"), "{}", response.body);
}

/// One strategy for a hostile "layer": each field drawn independently from
/// in-range numbers, absurd numbers, negatives, fractions, wrong types and
/// absence — the cross-product covers type confusion and cap violations in
/// the same shape real clients would send them.
fn hostile_field() -> impl Strategy<Value = Option<Value>> {
    (0usize..7).prop_map(|pick| match pick {
        0 => None,
        1 => Some(num(8.0)),
        2 => Some(num(1e18)),
        3 => Some(num(-3.0)),
        4 => Some(num(2.5)),
        5 => Some(s("huge")),
        6 => Some(Value::Array(vec![num(1.0)])),
        _ => unreachable!(),
    })
}

fn hostile_layer() -> impl Strategy<Value = Value> {
    (
        hostile_field(),
        hostile_field(),
        hostile_field(),
        hostile_field(),
        hostile_field(),
        hostile_field(),
    )
        .prop_map(|(co, ci, size, kernel, stride, padding)| {
            let mut fields = Vec::new();
            let mut push = |key: &str, v: Option<Value>| {
                if let Some(v) = v {
                    fields.push((key.to_string(), v));
                }
            };
            push("co", co);
            push("ci", ci);
            push("size", size);
            push("kernel", kernel);
            push("stride", stride);
            push("padding", padding);
            Value::Object(fields)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hostile layer arrays through the service boundary: whatever the
    /// combination, the pure handler answers — a 200 only when every field
    /// landed in range, otherwise a typed 4xx; never a panic. Both
    /// endpoints that accept network objects are exercised.
    #[test]
    fn hostile_networks_never_panic(
        layers in prop::collection::vec(hostile_layer(), 1..=4),
    ) {
        let network = obj(vec![
            ("batch", num(1.0)),
            ("layers", Value::Array(layers)),
        ]);
        let body = obj(vec![("net", network.clone())]);
        let response = api::dispatch("/v1/network", &body);
        prop_assert!(
            response.status == 200 || (400..=422).contains(&response.status),
            "unexpected status {}: {}", response.status, response.body
        );
        let dse = obj(vec![
            ("target", obj(vec![("network", network)])),
            ("grid", obj(vec![("pe_rows", Value::Array(vec![num(16.0)]))])),
        ]);
        let response = api::dispatch("/v1/dse", &dse);
        prop_assert!(
            response.status == 200 || (400..=422).contains(&response.status),
            "unexpected status {}: {}", response.status, response.body
        );
    }

    /// Type confusion on the *network* object itself: `net` as a number,
    /// string-in-array, deeply nested junk — every non-object spelling that
    /// is not a known preset name is a 4xx, never a panic.
    #[test]
    fn type_confused_network_objects_are_4xx(pick in 0usize..6) {
        let net = match pick {
            0 => num(7.0),
            1 => Value::Array(vec![s("vgg16")]),
            2 => Value::Bool(true),
            3 => obj(vec![("layers", s("conv1"))]),
            4 => obj(vec![("layers", Value::Array(vec![s("conv1")]))]),
            5 => obj(vec![("unknown_field", num(1.0))]),
            _ => unreachable!(),
        };
        let response = api::dispatch("/v1/network", &obj(vec![("net", net)]));
        prop_assert!(
            (400..=422).contains(&response.status),
            "unexpected status {}: {}", response.status, response.body
        );
    }
}

/// Batch caps apply to custom networks exactly as to presets, and the
/// custom object refuses a competing top-level `batch`.
#[test]
fn custom_batch_rules() {
    let layers = Value::Array(vec![obj(vec![
        ("co", num(8.0)),
        ("ci", num(3.0)),
        ("size", num(14.0)),
    ])]);
    let over = obj(vec![(
        "net",
        obj(vec![
            ("batch", num(limits::MAX_BATCH as f64 + 1.0)),
            ("layers", layers.clone()),
        ]),
    )]);
    let response = api::dispatch("/v1/network", &over);
    assert_eq!(response.status, 422, "{}", response.body);
    assert!(response.body.contains("batch must be"), "{}", response.body);

    let conflicted = obj(vec![
        ("net", obj(vec![("batch", num(1.0)), ("layers", layers)])),
        ("batch", num(2.0)),
    ]);
    let response = api::dispatch("/v1/network", &conflicted);
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.body.contains("drop the top-level"), "{}", response.body);
}
