//! Pins the `/v1/dse` candidate-dedup fix: a candidate named by *both* the
//! explicit `candidates` list and the `grid` expansion is one candidate —
//! planned and simulated exactly once — with the process-wide plan-cache
//! statistics as the witness.
//!
//! This file deliberately holds a single `#[test]`: integration-test files
//! build into their own binary (own process), so nothing else touches the
//! plan cache and the miss counter is an exact evaluation count rather
//! than a lower bound.

use clb_service::api;
use serde::Value;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

#[test]
fn candidate_in_both_forms_is_evaluated_once() {
    clb_core::clear_plan_cache();
    let baseline = clb_core::plan_cache_stats();
    assert_eq!(
        (baseline.hits, baseline.misses),
        (0, 0),
        "fresh process, cleared cache"
    );

    // The explicit empty object *is* Table I implementation 1 (every arch
    // field defaults to it), and the grid names implementation 1 again via
    // pe_rows 16 alongside one genuinely new candidate (pe_rows 32).
    let body = obj(vec![
        ("co", num(24.0)),
        ("size", num(10.0)),
        ("ci", num(12.0)),
        ("batch", num(1.0)),
        ("candidates", Value::Array(vec![obj(vec![])])),
        (
            "grid",
            obj(vec![("pe_rows", Value::Array(vec![num(16.0), num(32.0)]))]),
        ),
    ]);
    let raw = api::dse_response(&body).expect("valid combined request");
    let v: Value = serde_json::from_str(&raw).unwrap();
    assert_eq!(
        v.get_field("submitted").unwrap().as_number().unwrap(),
        3.0,
        "explicit list + grid points, before dedup"
    );
    assert_eq!(
        v.get_field("unique").unwrap().as_number().unwrap(),
        2.0,
        "the duplicate across forms must collapse"
    );
    assert_eq!(v.get_field("results").unwrap().as_array().unwrap().len(), 2);

    let stats = clb_core::plan_cache_stats();
    assert_eq!(
        stats.misses, 2,
        "each distinct candidate planned exactly once; a third miss means \
         the cross-form duplicate was evaluated twice: {stats:?}"
    );
    assert_eq!(
        stats.hits, 0,
        "nothing may even *look up* a duplicate plan: {stats:?}"
    );

    // Re-sweeping the identical request is all plan-cache hits — the warm
    // path the dse_network bench gates.
    let again = api::dse_response(&body).unwrap();
    assert_eq!(raw, again, "responses must be byte-identical");
    let warm = clb_core::plan_cache_stats();
    assert_eq!(warm.misses, 2, "no new planning on a warm re-sweep");
    assert_eq!(warm.hits, 2, "both candidates replanned from cache");
}
