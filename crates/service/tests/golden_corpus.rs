//! The golden end-to-end regression corpus: canonical request/response
//! fixture pairs for every `/v1/*` endpoint on the five Table I presets,
//! checked in under `tests/golden/` and replayed **byte-for-byte** — any
//! wire-format drift (a renamed field, a reordered key, a reformatted
//! float, a changed status code) fails tier-1 instead of being discovered
//! by a production client.
//!
//! Every fixture is replayed two ways in one test:
//!
//! 1. through the pure handlers ([`api::dispatch`]), pinning the handler
//!    layer itself, and
//! 2. over real TCP against a spawned server, pinning the full wire path
//!    (HTTP parsing, canonicalization, caching, serialization).
//!
//! `GET /v1/cache_stats` carries live counters, so its fixture pins the
//! *shape* (the exact key tree with values replaced by their JSON types)
//! rather than bytes.
//!
//! Regenerate the corpus after an intentional format change with
//!
//! ```text
//! CLB_GOLDEN_BLESS=1 cargo test -p clb-service --test golden_corpus
//! ```
//!
//! and review the fixture diff like any other code change. See
//! `docs/TESTING.md`.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;

use accel_sim::ArchConfig;
use clb_service::{api, Server, ServiceConfig};
use serde::{Serialize, Value};

/// One corpus entry, as listed in `tests/golden/manifest.txt`
/// (`case method path status`, space-separated, one per line).
struct Fixture {
    case: String,
    method: String,
    path: String,
    status: u16,
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn read_fixture_file(name: &str) -> String {
    let path = golden_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {} ({e}); bless the corpus", name))
}

fn manifest() -> Vec<Fixture> {
    read_fixture_file("manifest.txt")
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|line| {
            let mut parts = line.split_whitespace();
            let fixture = Fixture {
                case: parts.next().expect("manifest case").to_string(),
                method: parts.next().expect("manifest method").to_string(),
                path: parts.next().expect("manifest path").to_string(),
                status: parts.next().expect("manifest status").parse().unwrap(),
            };
            assert!(parts.next().is_none(), "manifest line has 4 fields: {line}");
            fixture
        })
        .collect()
}

/// The request value's JSON tree with every scalar replaced by its type
/// name — the byte-stable "shape" used for the live-counter endpoint.
fn shape_of(v: &Value) -> Value {
    match v {
        Value::Null => Value::String("null".to_string()),
        Value::Bool(_) => Value::String("bool".to_string()),
        Value::Number(_) => Value::String("number".to_string()),
        Value::String(_) => Value::String("string".to_string()),
        Value::Array(items) => Value::Array(items.iter().map(shape_of).collect()),
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .map(|(k, field)| (k.clone(), shape_of(field)))
                .collect(),
        ),
    }
}

/// Byte-for-byte comparison, as a `Result` so the corruption meta-test can
/// assert the failure path without a panic.
fn verify_bytes(case: &str, what: &str, expected: &str, got: &str) -> Result<(), String> {
    if expected == got {
        return Ok(());
    }
    let diverge = expected
        .bytes()
        .zip(got.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or(expected.len().min(got.len()));
    Err(format!(
        "golden fixture `{case}` drifted ({what}): first divergence at byte {diverge}\n\
         expected: {:?}\n\
         got:      {:?}",
        &expected[diverge.saturating_sub(40)..(diverge + 40).min(expected.len())],
        &got[diverge.saturating_sub(40)..(diverge + 40).min(got.len())],
    ))
}

/// A minimal HTTP/1.1 client: one request, returns (status, body).
fn wire_request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("well-formed response");
    let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
    (status, body.to_string())
}

// ---------------------------------------------------------------------
// Corpus definition (used only when blessing): the canonical requests.
// ---------------------------------------------------------------------

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

/// A mid-size layer every preset plans quickly in debug builds.
fn small_layer() -> Vec<(&'static str, Value)> {
    vec![
        ("co", num(32.0)),
        ("size", num(14.0)),
        ("ci", num(16.0)),
        ("batch", num(2.0)),
    ]
}

/// VGG-16 conv4_1 at the paper's batch 3 — bounds are closed-form, so the
/// big layer costs nothing.
fn conv4_1() -> Vec<(&'static str, Value)> {
    vec![
        ("co", num(512.0)),
        ("size", num(28.0)),
        ("ci", num(256.0)),
        ("batch", num(3.0)),
    ]
}

/// Each preset expressed as a full `arch` object (every field explicit), so
/// `/v1/dse` fixtures sweep exactly the five Table I implementations.
fn preset_archs() -> Vec<Value> {
    (1..=5)
        .map(|i| Serialize::to_value(&ArchConfig::implementation(i)))
        .collect()
}

/// The canonical corpus: `(case, method, path, request)`. Presets appear as
/// `implem` indices (plan/simulate/network), as their derived effective
/// memory (bound/sweep, which take a memory size), and as explicit `arch`
/// candidates (both `/v1/dse` modes).
fn corpus() -> Vec<(String, &'static str, &'static str, Option<Value>)> {
    let mut entries: Vec<(String, &'static str, &'static str, Option<Value>)> = Vec::new();
    for i in 1..=5usize {
        let mem_kib = ArchConfig::implementation(i).effective_onchip_bytes() as f64 / 1024.0;
        let mut bound = conv4_1();
        bound.push(("mem_kib", num(mem_kib)));
        entries.push((
            format!("bound_implem{i}"),
            "POST",
            "/v1/bound",
            Some(obj(bound)),
        ));
        let mut sweep = small_layer();
        sweep.push(("mem_kib", num(mem_kib)));
        entries.push((
            format!("sweep_implem{i}"),
            "POST",
            "/v1/sweep",
            Some(obj(sweep)),
        ));
        let mut plan = small_layer();
        plan.push(("implem", num(i as f64)));
        entries.push((
            format!("plan_implem{i}"),
            "POST",
            "/v1/plan",
            Some(obj(plan)),
        ));
        let mut simulate = small_layer();
        simulate.push(("implem", num(i as f64)));
        simulate.push((
            "tiling",
            obj(vec![
                ("b", num(1.0)),
                ("z", num(8.0)),
                ("y", num(7.0)),
                ("x", num(7.0)),
            ]),
        ));
        entries.push((
            format!("simulate_implem{i}"),
            "POST",
            "/v1/simulate",
            Some(obj(simulate)),
        ));
        entries.push((
            format!("network_implem{i}"),
            "POST",
            "/v1/network",
            Some(obj(vec![
                ("net", Value::String("alexnet".to_string())),
                ("batch", num(1.0)),
                ("implem", num(i as f64)),
            ])),
        ));
    }
    let mut dse_layer = small_layer();
    dse_layer.push(("candidates", Value::Array(preset_archs())));
    entries.push((
        "dse_layer_presets".to_string(),
        "POST",
        "/v1/dse",
        Some(obj(dse_layer)),
    ));
    entries.push((
        "dse_network_presets".to_string(),
        "POST",
        "/v1/dse",
        Some(obj(vec![
            (
                "target",
                obj(vec![
                    ("network", Value::String("alexnet".to_string())),
                    ("batch", num(1.0)),
                ]),
            ),
            ("candidates", Value::Array(preset_archs())),
        ])),
    ));
    // Staged sweeps: pin the bound-pruned, objective-ranked `/v1/dse`
    // wire formats — a layer-mode energy ranking, a network-mode Pareto
    // frontier, and a job-mode acceptance (whose id is a deterministic
    // hash of the canonical body, hence byte-stable).
    let mut dse_energy = small_layer();
    dse_energy.push(("candidates", Value::Array(preset_archs())));
    dse_energy.push(("objective", Value::String("energy".to_string())));
    dse_energy.push(("top_k", num(3.0)));
    entries.push((
        "dse_layer_objective".to_string(),
        "POST",
        "/v1/dse",
        Some(obj(dse_energy)),
    ));
    entries.push((
        "dse_network_objective".to_string(),
        "POST",
        "/v1/dse",
        Some(obj(vec![
            (
                "target",
                obj(vec![
                    ("network", Value::String("alexnet".to_string())),
                    ("batch", num(1.0)),
                ]),
            ),
            ("candidates", Value::Array(preset_archs())),
            ("objective", Value::String("pareto".to_string())),
            ("top_k", num(2.0)),
        ])),
    ));
    let mut dse_job = small_layer();
    dse_job.push(("candidates", Value::Array(preset_archs())));
    dse_job.push(("stream", Value::String("job".to_string())));
    entries.push((
        "dse_layer_job".to_string(),
        "POST",
        "/v1/dse",
        Some(obj(dse_job)),
    ));
    // Execution traces: pin the trace wire formats byte-for-byte — an
    // expanded JSON trace and a VCD waveform on `/v1/simulate`, and a
    // compact (class-only) JSON trace on `/v1/plan`, all on implem 1.
    let tiling = || {
        obj(vec![
            ("b", num(1.0)),
            ("z", num(8.0)),
            ("y", num(7.0)),
            ("x", num(7.0)),
        ])
    };
    let mut trace_json = small_layer();
    trace_json.push(("implem", num(1.0)));
    trace_json.push(("tiling", tiling()));
    trace_json.push(("trace", obj(vec![("expand", Value::Bool(true))])));
    entries.push((
        "simulate_trace_json".to_string(),
        "POST",
        "/v1/simulate",
        Some(obj(trace_json)),
    ));
    let mut trace_vcd = small_layer();
    trace_vcd.push(("implem", num(1.0)));
    trace_vcd.push(("tiling", tiling()));
    trace_vcd.push((
        "trace",
        obj(vec![("format", Value::String("vcd".to_string()))]),
    ));
    entries.push((
        "simulate_trace_vcd".to_string(),
        "POST",
        "/v1/simulate",
        Some(obj(trace_vcd)),
    ));
    let mut plan_trace = small_layer();
    plan_trace.push(("implem", num(1.0)));
    plan_trace.push(("trace", obj(vec![])));
    entries.push((
        "plan_trace_json".to_string(),
        "POST",
        "/v1/plan",
        Some(obj(plan_trace)),
    ));
    // Custom networks: a small two-layer object (200), the same object
    // pushed over the MAC cap (422 — bless records the actual status), and
    // the two presets the vocabulary grew.
    let custom_layer = |co: f64, ci: f64, size: f64| {
        obj(vec![
            ("co", num(co)),
            ("ci", num(ci)),
            ("size", num(size)),
            ("kernel", num(3.0)),
            ("stride", num(1.0)),
        ])
    };
    entries.push((
        "network_custom".to_string(),
        "POST",
        "/v1/network",
        Some(obj(vec![(
            "net",
            obj(vec![
                ("name", Value::String("tiny-2".to_string())),
                ("batch", num(1.0)),
                (
                    "layers",
                    Value::Array(vec![
                        custom_layer(8.0, 3.0, 14.0),
                        custom_layer(16.0, 8.0, 14.0),
                    ]),
                ),
            ]),
        )])),
    ));
    entries.push((
        "network_custom_overcap".to_string(),
        "POST",
        "/v1/network",
        Some(obj(vec![(
            "net",
            obj(vec![
                ("batch", num(64.0)),
                (
                    "layers",
                    Value::Array(
                        (0..64).map(|_| custom_layer(4096.0, 4096.0, 128.0)).collect(),
                    ),
                ),
            ]),
        )])),
    ));
    for preset in ["inception", "fc"] {
        entries.push((
            format!("network_{preset}"),
            "POST",
            "/v1/network",
            Some(obj(vec![
                ("net", Value::String(preset.to_string())),
                ("batch", num(1.0)),
            ])),
        ));
    }
    entries.push(("cache_stats".to_string(), "GET", "/v1/cache_stats", None));
    entries
}

fn bless() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    let server = Server::spawn(ServiceConfig::default()).expect("bind an ephemeral port");
    let mut manifest_lines = Vec::new();
    for (case, method, path, request) in corpus() {
        let (status, resp) = match &request {
            Some(req) => {
                let body = serde_json::to_string_pretty(req).unwrap();
                std::fs::write(dir.join(format!("{case}.req.json")), &body)
                    .expect("write request fixture");
                let response = api::dispatch(path, req);
                (response.status, response.body)
            }
            None => {
                // Live-counter endpoint: bless the shape, not the bytes.
                let (status, body) = wire_request(server.addr(), method, path, "");
                let parsed: Value = serde_json::from_str(&body).unwrap();
                (
                    status,
                    serde_json::to_string_pretty(&shape_of(&parsed)).unwrap(),
                )
            }
        };
        std::fs::write(dir.join(format!("{case}.resp.json")), &resp)
            .expect("write response fixture");
        manifest_lines.push(format!("{case} {method} {path} {status}"));
    }
    std::fs::write(dir.join("manifest.txt"), manifest_lines.join("\n") + "\n")
        .expect("write manifest");
    server.shutdown().unwrap();
    eprintln!("blessed {} golden fixtures", manifest_lines.len());
}

/// Replays one fixture through the pure handler and over the wire.
fn replay(fixture: &Fixture, addr: std::net::SocketAddr) -> Result<(), String> {
    let expected = read_fixture_file(&format!("{}.resp.json", fixture.case));
    if fixture.method == "GET" {
        let (status, body) = wire_request(addr, &fixture.method, &fixture.path, "");
        if status != fixture.status {
            return Err(format!(
                "golden fixture `{}`: live status {status}, expected {}",
                fixture.case, fixture.status
            ));
        }
        let parsed: Value = serde_json::from_str(&body)
            .map_err(|e| format!("golden fixture `{}`: unparsable body: {e}", fixture.case))?;
        let shape = serde_json::to_string_pretty(&shape_of(&parsed)).unwrap();
        return verify_bytes(&fixture.case, "live shape", &expected, &shape);
    }
    let request_body = read_fixture_file(&format!("{}.req.json", fixture.case));
    let request: Value = serde_json::from_str(&request_body).expect("request fixture parses");

    // 1. The pure handler layer.
    let response = api::dispatch(&fixture.path, &request);
    if response.status != fixture.status {
        return Err(format!(
            "golden fixture `{}`: handler status {}, expected {}",
            fixture.case, response.status, fixture.status
        ));
    }
    verify_bytes(&fixture.case, "pure handler", &expected, &response.body)?;

    // 2. The full wire path against the live server.
    let (status, body) = wire_request(addr, &fixture.method, &fixture.path, &request_body);
    if status != fixture.status {
        return Err(format!(
            "golden fixture `{}`: live status {status}, expected {}",
            fixture.case, fixture.status
        ));
    }
    verify_bytes(&fixture.case, "live server", &expected, &body)
}

fn blessing() -> bool {
    std::env::var("CLB_GOLDEN_BLESS").is_ok_and(|v| v == "1" || v == "true")
}

#[test]
fn golden_corpus_replays_byte_for_byte() {
    if blessing() {
        bless();
        return;
    }
    let fixtures = manifest();
    // Coverage guard: the corpus must keep covering the whole wire surface
    // on all five presets — deleting fixtures is drift too.
    let paths: std::collections::BTreeSet<&str> =
        fixtures.iter().map(|f| f.path.as_str()).collect();
    for endpoint in [
        "/v1/bound",
        "/v1/sweep",
        "/v1/plan",
        "/v1/simulate",
        "/v1/network",
        "/v1/dse",
        "/v1/cache_stats",
    ] {
        assert!(
            paths.contains(endpoint),
            "corpus lost coverage of {endpoint}"
        );
    }
    for prefix in ["bound", "sweep", "plan", "simulate", "network"] {
        for i in 1..=5 {
            let case = format!("{prefix}_implem{i}");
            assert!(
                fixtures.iter().any(|f| f.case == case),
                "corpus lost preset coverage: {case}"
            );
        }
    }
    for case in [
        "dse_layer_presets",
        "dse_network_presets",
        "dse_layer_objective",
        "dse_network_objective",
        "dse_layer_job",
    ] {
        assert!(
            fixtures.iter().any(|f| f.case == case),
            "corpus lost DSE coverage: {case}"
        );
    }
    for case in [
        "simulate_trace_json",
        "simulate_trace_vcd",
        "plan_trace_json",
    ] {
        assert!(
            fixtures.iter().any(|f| f.case == case),
            "corpus lost trace coverage: {case}"
        );
    }

    let server = Server::spawn(ServiceConfig::default()).expect("bind an ephemeral port");
    let mut failures = Vec::new();
    for fixture in &fixtures {
        if let Err(e) = replay(fixture, server.addr()) {
            failures.push(e);
        }
    }
    server.shutdown().unwrap();
    assert!(
        failures.is_empty(),
        "{} of {} golden fixtures drifted:\n{}",
        failures.len(),
        fixtures.len(),
        failures.join("\n")
    );
}

/// Satellite pin: the load-shed `503` wire rendering — status line,
/// `Retry-After` header, connection handling and body — golden-pinned in
/// both connection modes so the retry contract cannot drift silently.
/// (A *live* saturated-gate 503 is asserted in `connection_lifecycle.rs`;
/// this pins the exact bytes, which saturation cannot do deterministically.)
#[test]
fn shed_503_wire_rendering_is_pinned() {
    use clb_service::{Response, RETRY_AFTER_SECS};
    let shed = Response::unavailable("server is saturated; retry with backoff", RETRY_AFTER_SECS);
    let rendered = format!(
        "=== keep-alive ===\n{}\n=== close ===\n{}",
        shed.render(true),
        shed.render(false)
    );
    if blessing() {
        std::fs::write(golden_dir().join("shed_503.http"), &rendered).unwrap();
        return;
    }
    let expected = read_fixture_file("shed_503.http");
    verify_bytes("shed_503", "rendered wire bytes", &expected, &rendered).unwrap();
    // The contract itself, independent of fixture bytes: every shed names
    // its retry hint in both the header and the JSON body.
    assert!(rendered.contains(&format!("Retry-After: {RETRY_AFTER_SECS}\r\n")));
    assert!(rendered.contains("\"retry_after_seconds\""));
}

/// Satellite pin: the chunked-transport `/v1/dse` payload — every frontier
/// snapshot line plus the final body, exactly as the server frames them
/// into `Transfer-Encoding: chunked` — golden-pinned through the pure
/// [`api::dse_stream_chunks`] helper (the wire framing around these bytes
/// is covered by the integration tests; the chunk *contents* are what a
/// streaming client parses). The final chunk must equal the synchronous
/// staged response for the same request, by construction and by pin.
#[test]
fn streamed_dse_chunks_are_pinned() {
    let mut request = small_layer();
    request.push(("candidates", Value::Array(preset_archs())));
    request.push(("objective", Value::String("cycles".to_string())));
    request.push(("top_k", num(3.0)));
    request.push(("stream", Value::Bool(true)));
    let request = obj(request);
    let chunks = api::dse_stream_chunks(&request).expect("streamed sweep succeeds");
    assert!(
        chunks.len() >= 2,
        "a 5-candidate sweep must emit at least one snapshot and the final body"
    );
    let rendered = chunks.join("");
    if blessing() {
        std::fs::write(golden_dir().join("dse_stream_chunks.txt"), &rendered).unwrap();
        return;
    }
    let expected = read_fixture_file("dse_stream_chunks.txt");
    verify_bytes("dse_stream_chunks", "chunk payload", &expected, &rendered).unwrap();
    // The transport contract, independent of fixture bytes: the last chunk
    // is byte-identical to the synchronous response for the same sweep.
    let mut sync_request = request.clone();
    if let Value::Object(fields) = &mut sync_request {
        for (k, v) in fields.iter_mut() {
            if k == "stream" {
                *v = Value::Bool(false);
            }
        }
    }
    let sync = api::dispatch("/v1/dse", &sync_request);
    assert_eq!(sync.status, 200);
    assert_eq!(
        chunks.last().unwrap(),
        &sync.body,
        "final streamed chunk must equal the synchronous staged body"
    );
    // And every snapshot line before it is single-line JSON with the
    // funnel fields.
    for line in &chunks[..chunks.len() - 1] {
        assert!(line.ends_with('\n'), "snapshot lines are newline-framed");
        let parsed: Value = serde_json::from_str(line.trim_end()).expect("snapshot parses");
        for field in ["processed", "pruned", "kept", "frontier"] {
            assert!(
                matches!(&parsed, Value::Object(fields) if fields.iter().any(|(k, _)| k == field)),
                "snapshot line missing `{field}`: {line}"
            );
        }
    }
}

#[test]
fn corrupted_fixture_fails_the_replay() {
    if blessing() {
        return; // fixtures are being rewritten concurrently
    }
    // The corpus only protects anyone if a drifted byte actually fails the
    // suite: corrupt one response in memory and check the comparison trips.
    let fixtures = manifest();
    let post = fixtures
        .iter()
        .find(|f| f.method == "POST")
        .expect("corpus has POST fixtures");
    let pristine = read_fixture_file(&format!("{}.resp.json", post.case));
    let corrupted = pristine.replacen('1', "2", 1);
    assert_ne!(pristine, corrupted, "corruption must change a byte");
    let err = verify_bytes(&post.case, "corruption check", &pristine, &corrupted)
        .expect_err("a corrupted fixture must fail byte comparison");
    assert!(err.contains("drifted"), "{err}");
}
