//! Custom-architecture and `/v1/dse` acceptance tests:
//!
//! * **Parity** — a `/v1/dse` sweep's per-candidate results must be
//!   bit-identical to issuing the same candidates one-by-one through
//!   `/v1/plan` + `/v1/simulate` serially (the oracle loop), for random
//!   layers × random valid candidate grids.
//! * **Hostility** — adversarial `arch` objects through `/v1/simulate` and
//!   `/v1/dse` must never panic or hang: always a typed 4xx naming the
//!   violated invariant.
//! * **Regression** — `implem`-preset requests must keep their exact
//!   pre-existing wire bytes now that the handlers also accept `arch`.

use clb_core::Accelerator;
use clb_service::api::{self, limits};
use clb_service::{PlanResponse, SimulateResponse};
use conv_model::ConvLayer;
use proptest::prelude::*;
use serde::Value;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

fn layer_fields(layer: &ConvLayer) -> Vec<(&'static str, Value)> {
    vec![
        ("co", num(layer.out_channels() as f64)),
        ("size", num(layer.output_width() as f64)),
        ("ci", num(layer.in_channels() as f64)),
        ("k", num(layer.kernel_width() as f64)),
        ("stride", num(layer.stride() as f64)),
        ("batch", num(layer.batch() as f64)),
    ]
}

/// Small random layers (square, unpadded — exactly what the layer-spec
/// endpoints construct).
fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..=2,  // batch
        4usize..=24, // out channels
        6usize..=18, // output size
        1usize..=8,  // in channels
        1usize..=3,  // kernel
        1usize..=2,  // stride
    )
        .prop_filter_map("valid layer", |(b, co, size, ci, k, s)| {
            ConvLayer::square(b, co, size, ci, k, s).ok()
        })
}

/// Random *valid* candidate architectures: structurally coherent (groups
/// divide the array) so sweeps exercise the feasible/infeasible planning
/// boundary rather than request validation.
fn candidate_strategy() -> impl Strategy<Value = Value> {
    (
        0usize..4, // pe_rows in {8,16,24,32}
        0usize..2, // pe_cols in {8,16}
        0usize..2, // groups in {2,4}
        0usize..3, // lreg in {32,64,128}
        0usize..3, // igbuf in {512,1024,2048}
        0usize..2, // wgbuf in {128,256}
    )
        .prop_map(|(pr, pc, g, lr, ig, wg)| {
            let pe_rows = [8usize, 16, 24, 32][pr];
            let pe_cols = [8usize, 16][pc];
            let group = [2usize, 4][g];
            obj(vec![
                ("pe_rows", num(pe_rows as f64)),
                ("pe_cols", num(pe_cols as f64)),
                ("group_rows", num(group as f64)),
                ("group_cols", num(group as f64)),
                ("lreg_entries_per_pe", num([32usize, 64, 128][lr] as f64)),
                ("igbuf_entries", num([512usize, 1024, 2048][ig] as f64)),
                ("wgbuf_entries", num([128usize, 256][wg] as f64)),
            ])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The acceptance oracle: sweep results == serial per-candidate
    /// `/v1/plan` + `/v1/simulate`, bit-identical (compared as parsed JSON
    /// trees, which the shared pretty-printer maps 1:1 to bytes).
    #[test]
    fn dse_matches_serial_plan_simulate_oracle(
        layer in layer_strategy(),
        candidates in prop::collection::vec(candidate_strategy(), 1..=6),
    ) {
        let mut fields = layer_fields(&layer);
        fields.push(("candidates", Value::Array(candidates.clone())));
        let body = obj(fields);
        let dse_raw = api::dse_response(&body).expect("valid dse request");
        let dse: Value = serde_json::from_str(&dse_raw).unwrap();
        let results = dse.get_field("results").unwrap().as_array().unwrap();
        prop_assert!(!results.is_empty());

        for entry in results {
            let arch_echo = entry.get_field("arch").unwrap().clone();
            let mut plan_fields = layer_fields(&layer);
            plan_fields.push(("arch", arch_echo.clone()));
            let plan_req = obj(plan_fields);

            match entry.get_field("error").unwrap() {
                Value::Null => {
                    // Oracle step 1: /v1/plan with the same arch.
                    let plan_raw = api::plan_response(&plan_req).expect("feasible candidate");
                    let plan: Value = serde_json::from_str(&plan_raw).unwrap();
                    prop_assert_eq!(
                        entry.get_field("report").unwrap(),
                        plan.get_field("report").unwrap(),
                        "dse report must be bit-identical to /v1/plan"
                    );
                    // Oracle step 2: /v1/simulate on the planned tiling.
                    let tiling = plan
                        .get_field("report").unwrap()
                        .get_field("tiling").unwrap()
                        .clone();
                    let mut sim_fields = layer_fields(&layer);
                    sim_fields.push(("arch", arch_echo));
                    sim_fields.push(("tiling", tiling));
                    let sim_raw = api::simulate_response(&obj(sim_fields)).unwrap();
                    let sim: Value = serde_json::from_str(&sim_raw).unwrap();
                    prop_assert_eq!(
                        entry.get_field("report").unwrap().get_field("stats").unwrap(),
                        sim.get_field("stats").unwrap(),
                        "dse stats must be bit-identical to /v1/simulate"
                    );
                    prop_assert_eq!(
                        entry.get_field("total_cycles").unwrap(),
                        sim.get_field("total_cycles").unwrap()
                    );
                    prop_assert_eq!(
                        entry.get_field("seconds").unwrap(),
                        sim.get_field("seconds").unwrap()
                    );
                }
                Value::String(reason) => {
                    // Infeasible candidates must fail /v1/plan identically.
                    let err = api::plan_response(&plan_req).unwrap_err();
                    let api::ApiError::Unprocessable(msg) = err else {
                        panic!("oracle failed differently: {err:?}");
                    };
                    prop_assert_eq!(reason, &msg);
                }
                other => panic!("error field must be null or string, got {other:?}"),
            }
        }
    }

    /// Shuffling the candidate list never changes a response byte.
    #[test]
    fn dse_is_enumeration_order_independent(
        layer in layer_strategy(),
        candidates in prop::collection::vec(candidate_strategy(), 2..=5),
    ) {
        let request = |cands: Vec<Value>| {
            let mut fields = layer_fields(&layer);
            fields.push(("candidates", Value::Array(cands)));
            api::dse_response(&obj(fields)).unwrap()
        };
        let forward = request(candidates.clone());
        let mut reversed_cands = candidates;
        reversed_cands.reverse();
        let reversed = request(reversed_cands);
        prop_assert_eq!(forward, reversed);
    }
}

/// Hostile field palette: type confusion and overflow magnets (NaN/inf
/// cannot appear — they are not valid JSON, and the HTTP layer rejects
/// bodies that fail to parse).
fn hostile_value() -> impl Strategy<Value = Value> {
    (0usize..8, 0usize..7).prop_map(|(kind, n)| {
        let number = [-1e300, -7.0, -0.5, 0.0, 0.5, 1e9, 1e300][n];
        match kind {
            0 => Value::Null,
            1 => Value::Bool(true),
            2 => num(number),
            3 => Value::String("evil".to_string()),
            4 => Value::Array(vec![num(number)]),
            5 => obj(vec![("x", num(number))]),
            6 => num(f64::MAX),
            _ => num(number),
        }
    })
}

const ARCH_FIELDS: [&str; 10] = [
    "pe_rows",
    "pe_cols",
    "group_rows",
    "group_cols",
    "lreg_entries_per_pe",
    "igbuf_entries",
    "wgbuf_entries",
    "greg_bytes",
    "greg_segment_entries",
    "core_freq_hz",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Adversarial arch objects through `/v1/simulate` and `/v1/dse`:
    /// always a clean 4xx (typed, non-empty diagnosis), never a panic,
    /// hang or 500.
    #[test]
    fn hostile_arch_objects_get_typed_4xx(
        picks in prop::collection::vec((0usize..ARCH_FIELDS.len(), hostile_value()), 1..=4),
        latency in hostile_value(),
        via_dse in prop::bool::ANY,
    ) {
        let mut arch_fields: Vec<(&str, Value)> = picks
            .into_iter()
            .map(|(i, v)| (ARCH_FIELDS[i], v))
            .collect();
        arch_fields.push(("dram", obj(vec![("latency_cycles", latency)])));
        let arch = obj(arch_fields);

        let response = if via_dse {
            let mut fields = vec![
                ("co", num(8.0)),
                ("size", num(6.0)),
                ("ci", num(4.0)),
                ("batch", num(1.0)),
            ];
            fields.push(("candidates", Value::Array(vec![arch])));
            api::dispatch("/v1/dse", &obj(fields))
        } else {
            let fields = vec![
                ("co", num(8.0)),
                ("size", num(6.0)),
                ("ci", num(4.0)),
                ("batch", num(1.0)),
                ("arch", arch),
                ("tiling", obj(vec![
                    ("b", num(1.0)),
                    ("z", num(4.0)),
                    ("y", num(3.0)),
                    ("x", num(3.0)),
                ])),
            ];
            api::dispatch("/v1/simulate", &obj(fields))
        };
        prop_assert!(
            response.status == 200 || response.status == 400 || response.status == 422,
            "hostile arch produced status {}: {}",
            response.status,
            response.body
        );
        if response.status != 200 {
            prop_assert!(response.body.contains("error"), "{}", response.body);
        }
    }
}

#[test]
fn hostile_arch_422_names_the_violated_invariant() {
    let with_arch = |arch: Value| {
        obj(vec![
            ("co", num(8.0)),
            ("size", num(6.0)),
            ("ci", num(4.0)),
            ("batch", num(1.0)),
            (
                "tiling",
                obj(vec![
                    ("b", num(1.0)),
                    ("z", num(4.0)),
                    ("y", num(3.0)),
                    ("x", num(3.0)),
                ]),
            ),
            ("arch", arch),
        ])
    };
    for (arch, needle) in [
        (obj(vec![("pe_rows", num(0.0))]), "non-empty"),
        (obj(vec![("pe_rows", num(1e18))]), "cap"),
        (obj(vec![("group_rows", num(5.0))]), "divide"),
        (
            obj(vec![("lreg_entries_per_pe", num(-3.0))]),
            "at least one",
        ),
        (obj(vec![("core_freq_hz", num(-1.0))]), "frequency"),
        (
            obj(vec![(
                "dram",
                obj(vec![("bandwidth_bytes_per_s", num(0.0))]),
            )]),
            "bandwidth",
        ),
    ] {
        let resp = api::dispatch("/v1/simulate", &with_arch(arch));
        assert_eq!(resp.status, 422, "{}", resp.body);
        assert!(resp.body.contains(needle), "{}", resp.body);
    }
    // Type confusion is a 400, also named.
    let resp = api::dispatch("/v1/simulate", &with_arch(num(5.0)));
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("arch"), "{}", resp.body);
}

#[test]
fn typoed_arch_fields_are_rejected_not_defaulted() {
    // Every arch field is optional, so a typo would otherwise silently
    // evaluate the default implementation-1 design and the caller would
    // trust numbers for a machine it never specified.
    let body = obj(vec![
        ("co", num(16.0)),
        ("size", num(14.0)),
        ("ci", num(8.0)),
        ("batch", num(1.0)),
        ("arch", obj(vec![("pe_row", num(64.0))])), // typo: pe_row
    ]);
    let resp = api::dispatch("/v1/plan", &body);
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("pe_row"), "{}", resp.body);
    let body = obj(vec![
        ("co", num(16.0)),
        ("size", num(14.0)),
        ("ci", num(8.0)),
        ("batch", num(1.0)),
        (
            "arch",
            obj(vec![("dram", obj(vec![("latency", num(50.0))]))]), // typo
        ),
    ]);
    let resp = api::dispatch("/v1/plan", &body);
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("latency"), "{}", resp.body);
}

#[test]
fn dse_request_validation() {
    let base = || {
        vec![
            ("co", num(16.0)),
            ("size", num(14.0)),
            ("ci", num(8.0)),
            ("batch", num(1.0)),
        ]
    };
    // Neither candidates nor grid → 400.
    let resp = api::dispatch("/v1/dse", &obj(base()));
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("candidates"), "{}", resp.body);
    // Both forms together: the union, deduped — the explicit empty object
    // is implementation 1, which the grid also names via pe_rows 16.
    let mut fields = base();
    fields.push(("candidates", Value::Array(vec![obj(vec![])])));
    fields.push((
        "grid",
        obj(vec![("pe_rows", Value::Array(vec![num(16.0), num(32.0)]))]),
    ));
    let resp = api::dispatch("/v1/dse", &obj(fields));
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v: Value = serde_json::from_str(&resp.body).unwrap();
    assert_eq!(v.get_field("submitted").unwrap().as_number().unwrap(), 3.0);
    assert_eq!(v.get_field("unique").unwrap().as_number().unwrap(), 2.0);
    // The combined request shares one cap: a grid that would fit alone is
    // refused when the explicit list has already spent the budget.
    let mut fields = base();
    fields.push((
        "candidates",
        Value::Array(vec![obj(vec![]); limits::MAX_DSE_CANDIDATES]),
    ));
    fields.push((
        "grid",
        obj(vec![("pe_rows", Value::Array(vec![num(16.0)]))]),
    ));
    let resp = api::dispatch("/v1/dse", &obj(fields));
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("cap"), "{}", resp.body);
    // Over-cap explicit list → 422 naming the cap.
    let mut fields = base();
    fields.push((
        "candidates",
        Value::Array(vec![obj(vec![]); limits::MAX_DSE_CANDIDATES + 1]),
    ));
    let resp = api::dispatch("/v1/dse", &obj(fields));
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("cap"), "{}", resp.body);
    // Over-cap grid → 422 *before* expansion (cardinality ≈ 10^9).
    let axis = Value::Array((1..=32).map(|i| num(f64::from(i))).collect::<Vec<_>>());
    let mut fields = base();
    fields.push((
        "grid",
        obj(vec![
            ("pe_rows", axis.clone()),
            ("pe_cols", axis.clone()),
            ("lreg_entries_per_pe", axis.clone()),
            ("igbuf_entries", axis.clone()),
            ("wgbuf_entries", axis.clone()),
            ("greg_bytes", axis),
        ]),
    ));
    let resp = api::dispatch("/v1/dse", &obj(fields));
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("cap"), "{}", resp.body);
    // Unknown grid axis → 400 naming it.
    let mut fields = base();
    fields.push((
        "grid",
        obj(vec![("pe_rowz", Value::Array(vec![num(16.0)]))]),
    ));
    let resp = api::dispatch("/v1/dse", &obj(fields));
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("pe_rowz"), "{}", resp.body);
    // Invalid candidate inside a grid names the candidate and invariant.
    let mut fields = base();
    fields.push((
        "grid",
        obj(vec![("pe_rows", Value::Array(vec![num(18.0)]))]),
    ));
    let resp = api::dispatch("/v1/dse", &obj(fields));
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("divide"), "{}", resp.body);
}

fn network_target(net: &str, batch: f64) -> (&'static str, Value) {
    (
        "target",
        obj(vec![
            ("network", Value::String(net.to_string())),
            ("batch", num(batch)),
        ]),
    )
}

/// The network-mode acceptance oracle: every candidate's `report` in a
/// `"target": {"network": ...}` sweep must be bit-identical to the serial
/// `/v1/network` response for that architecture, and infeasible candidates
/// must carry the exact diagnosis `/v1/network` would 422 with.
#[test]
fn network_mode_dse_matches_serial_network_oracle() {
    let candidates = vec![
        obj(vec![]), // implementation 1
        obj(vec![
            ("pe_rows", num(8.0)),
            ("pe_cols", num(8.0)),
            ("group_rows", num(2.0)),
            ("group_cols", num(2.0)),
        ]),
        // Valid config, but one AlexNet window overflows its IGBuf: the
        // error-path parity.
        obj(vec![("igbuf_entries", num(2.0))]),
    ];
    let body = obj(vec![
        network_target("alexnet", 1.0),
        ("candidates", Value::Array(candidates.clone())),
    ]);
    let raw = api::dse_response(&body).expect("valid network-mode request");
    let dse: Value = serde_json::from_str(&raw).unwrap();
    assert_eq!(
        dse.get_field("network").unwrap().as_str().unwrap(),
        "AlexNet"
    );
    assert_eq!(dse.get_field("batch").unwrap().as_number().unwrap(), 1.0);
    let results = dse.get_field("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    let mut feasible = 0;
    let mut infeasible = 0;
    for entry in results {
        let net_req = obj(vec![
            ("net", Value::String("alexnet".to_string())),
            ("batch", num(1.0)),
            ("arch", entry.get_field("arch").unwrap().clone()),
        ]);
        match entry.get_field("error").unwrap() {
            Value::Null => {
                feasible += 1;
                let oracle_raw = api::network_response(&net_req).expect("feasible candidate");
                let oracle: Value = serde_json::from_str(&oracle_raw).unwrap();
                assert_eq!(
                    entry.get_field("report").unwrap(),
                    &oracle,
                    "dse network report must be bit-identical to /v1/network"
                );
                assert_eq!(
                    entry
                        .get_field("total_cycles")
                        .unwrap()
                        .as_number()
                        .unwrap(),
                    oracle
                        .get_field("totals")
                        .unwrap()
                        .get_field("compute_cycles")
                        .unwrap()
                        .as_number()
                        .unwrap()
                        + oracle
                            .get_field("totals")
                            .unwrap()
                            .get_field("stall_cycles")
                            .unwrap()
                            .as_number()
                            .unwrap()
                );
                assert_eq!(
                    entry.get_field("seconds").unwrap(),
                    oracle.get_field("seconds").unwrap()
                );
            }
            Value::String(reason) => {
                infeasible += 1;
                let err = api::network_response(&net_req).unwrap_err();
                let api::ApiError::Unprocessable(msg) = err else {
                    panic!("oracle failed differently: {err:?}");
                };
                assert_eq!(reason, &msg, "diagnoses must match /v1/network");
            }
            other => panic!("error must be null or string, got {other:?}"),
        }
    }
    assert_eq!((feasible, infeasible), (2, 1));

    // Enumeration-order independence at the wire level: shuffling (and
    // duplicating) the candidate list changes `submitted` but nothing else.
    let mut reversed = candidates;
    reversed.reverse();
    let body = obj(vec![
        network_target("alexnet", 1.0),
        ("candidates", Value::Array(reversed)),
    ]);
    let shuffled = api::dse_response(&body).unwrap();
    assert_eq!(raw, shuffled, "responses must be byte-identical");
}

#[test]
fn network_mode_dse_target_validation() {
    let grid = || {
        (
            "grid",
            obj(vec![("pe_rows", Value::Array(vec![num(16.0)]))]),
        )
    };
    // Unknown network name → 422.
    let resp = api::dispatch("/v1/dse", &obj(vec![network_target("lenet", 1.0), grid()]));
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("lenet"), "{}", resp.body);
    // Out-of-limit batch → 422.
    let resp = api::dispatch(
        "/v1/dse",
        &obj(vec![network_target("alexnet", 0.0), grid()]),
    );
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("batch"), "{}", resp.body);
    let resp = api::dispatch(
        "/v1/dse",
        &obj(vec![
            network_target("alexnet", limits::MAX_BATCH as f64 + 1.0),
            grid(),
        ]),
    );
    assert_eq!(resp.status, 422, "{}", resp.body);
    // Typoed target field → 400 naming it.
    let resp = api::dispatch(
        "/v1/dse",
        &obj(vec![
            (
                "target",
                obj(vec![("nettwork", Value::String("alexnet".to_string()))]),
            ),
            grid(),
        ]),
    );
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("nettwork"), "{}", resp.body);
    // target must be an object, and must name the network.
    let resp = api::dispatch("/v1/dse", &obj(vec![("target", num(3.0)), grid()]));
    assert_eq!(resp.status, 400, "{}", resp.body);
    let resp = api::dispatch(
        "/v1/dse",
        &obj(vec![("target", obj(vec![("batch", num(1.0))])), grid()]),
    );
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("network"), "{}", resp.body);
    // Mixing target with layer fields is ambiguous → 400.
    let resp = api::dispatch(
        "/v1/dse",
        &obj(vec![
            ("co", num(16.0)),
            network_target("alexnet", 1.0),
            grid(),
        ]),
    );
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("either"), "{}", resp.body);
    // Hostile arch inside a network-mode sweep: typed 4xx, never a panic.
    let resp = api::dispatch(
        "/v1/dse",
        &obj(vec![
            network_target("alexnet", 1.0),
            (
                "candidates",
                Value::Array(vec![obj(vec![("pe_rows", num(0.0))])]),
            ),
        ]),
    );
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("non-empty"), "{}", resp.body);
}

#[test]
fn implem_preset_requests_keep_their_exact_bytes() {
    // Regression: now that every endpoint also accepts `arch`, preset
    // requests must serialize through the identical pre-existing structs.
    let layer = ConvLayer::square(1, 16, 14, 8, 3, 1).unwrap();
    let body = obj(vec![
        ("co", num(16.0)),
        ("size", num(14.0)),
        ("ci", num(8.0)),
        ("batch", num(1.0)),
        ("implem", num(2.0)),
    ]);
    let report = Accelerator::implementation(2)
        .analyze_layer("layer", &layer)
        .unwrap();
    let expected = serde_json::to_string_pretty(&PlanResponse {
        implementation: 2,
        report,
    })
    .unwrap();
    assert_eq!(api::plan_response(&body).unwrap(), expected);
    assert!(expected.contains("\"implementation\": 2"));
    assert!(!expected.contains("\"arch\""));

    let mut sim_fields = vec![
        ("co", num(16.0)),
        ("size", num(14.0)),
        ("ci", num(8.0)),
        ("batch", num(1.0)),
        ("implem", num(1.0)),
    ];
    sim_fields.push((
        "tiling",
        obj(vec![
            ("b", num(1.0)),
            ("z", num(8.0)),
            ("y", num(7.0)),
            ("x", num(7.0)),
        ]),
    ));
    let arch = accel_sim::ArchConfig::implementation(1);
    let tiling = dataflow::Tiling {
        b: 1,
        z: 8,
        y: 7,
        x: 7,
    };
    let stats = accel_sim::simulate(&layer, &tiling, &arch).unwrap();
    let expected = serde_json::to_string_pretty(&SimulateResponse {
        implementation: 1,
        layer,
        tiling,
        stats,
        total_cycles: stats.total_cycles(),
        seconds: stats.seconds(arch.core_freq_hz),
    })
    .unwrap();
    assert_eq!(api::simulate_response(&obj(sim_fields)).unwrap(), expected);
}

#[test]
fn custom_arch_plan_echoes_the_arch_and_matches_the_library() {
    let layer = ConvLayer::square(1, 16, 14, 8, 3, 1).unwrap();
    let arch_json = obj(vec![
        ("pe_rows", num(8.0)),
        ("pe_cols", num(8.0)),
        ("group_rows", num(2.0)),
        ("group_cols", num(2.0)),
    ]);
    let mut fields = vec![
        ("co", num(16.0)),
        ("size", num(14.0)),
        ("ci", num(8.0)),
        ("batch", num(1.0)),
    ];
    fields.push(("arch", arch_json));
    let raw = api::plan_response(&obj(fields)).unwrap();
    let arch = accel_sim::ArchConfig {
        pe_rows: 8,
        pe_cols: 8,
        group_rows: 2,
        group_cols: 2,
        ..accel_sim::ArchConfig::implementation(1)
    };
    let report = Accelerator::new(arch)
        .analyze_layer("layer", &layer)
        .unwrap();
    let expected =
        serde_json::to_string_pretty(&clb_service::ArchPlanResponse { arch, report }).unwrap();
    assert_eq!(raw, expected, "service must be bit-identical");
    assert!(raw.contains("\"arch\""));
    // `implem` alongside `arch` is rejected.
    let mut fields = vec![
        ("co", num(16.0)),
        ("size", num(14.0)),
        ("ci", num(8.0)),
        ("implem", num(2.0)),
    ];
    fields.push(("arch", obj(vec![])));
    let resp = api::dispatch("/v1/plan", &obj(fields));
    assert_eq!(resp.status, 400, "{}", resp.body);
}

#[test]
fn bound_and_sweep_derive_memory_from_arch() {
    // implementation 2 as an explicit arch object: same effective memory,
    // same bound as mem_kib = 66.5.
    let arch = obj(vec![
        ("pe_rows", num(32.0)),
        ("pe_cols", num(16.0)),
        ("lreg_entries_per_pe", num(64.0)),
        ("greg_bytes", num(15360.0)),
    ]);
    let mut fields = vec![("co", num(16.0)), ("size", num(14.0)), ("ci", num(8.0))];
    fields.push(("arch", arch.clone()));
    let raw = api::bound_response(&obj(fields)).unwrap();
    let v: Value = serde_json::from_str(&raw).unwrap();
    assert_eq!(v.get_field("mem_kib").unwrap().as_number().unwrap(), 66.5);
    // mem_kib + arch together are rejected.
    let mut fields = vec![("co", num(16.0)), ("size", num(14.0)), ("ci", num(8.0))];
    fields.push(("arch", arch));
    fields.push(("mem_kib", num(32.0)));
    let resp = api::dispatch("/v1/sweep", &obj(fields));
    assert_eq!(resp.status, 400, "{}", resp.body);
}
