//! Staged-sweep acceptance properties — the lossless-pruning invariant:
//!
//! * **Oracle parity** — for random layers/networks × random candidate
//!   grids × *every* objective and several top-K values, the staged
//!   engine's kept frontier must be bit-identical (at the serialized-report
//!   level, which is what reaches the wire) to [`rank_entries`] over the
//!   serial unpruned full sweep. The bound stage must never discard a true
//!   optimum.
//! * **Admissibility** — every [`candidate_bounds`] floor must under-state
//!   the candidate's actual cycles / DRAM words / energy, and a
//!   `provably_infeasible` verdict must always coincide with an error
//!   outcome.
//! * **Funnel accounting** — `pruned + evaluated == unique`, always.

use clb_core::{
    candidate_bounds, rank_entries, staged_sweep_archs, staged_sweep_archs_network, sweep_archs,
    sweep_archs_network, Accelerator, ArchConfig, ArchSweepEntry, Objective, SweepCost,
};
use conv_model::workloads::Network;
use conv_model::ConvLayer;
use proptest::prelude::*;

/// Random small layers with `same` padding, so halo clipping is exercised.
fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..=2,  // batch
        4usize..=24, // out channels
        6usize..=18, // output size
        1usize..=8,  // in channels
        1usize..=3,  // kernel
        1usize..=2,  // stride
    )
        .prop_filter_map("valid layer", |(b, co, size, ci, k, s)| {
            ConvLayer::square(b, co, size, ci, k, s).ok()
        })
}

fn network_strategy() -> impl Strategy<Value = Network> {
    prop::collection::vec(layer_strategy(), 1..=3).prop_map(|layers| {
        Network::new(
            "prop-net",
            layers
                .into_iter()
                .enumerate()
                .map(|(i, l)| (format!("conv{i}"), l))
                .collect(),
        )
    })
}

/// Random candidates around the Table I design space. Tiny IGBuf choices
/// make some layers provably infeasible (the bound stage's strongest
/// verdict); an invalid group size exercises the `InvalidArch` path.
fn candidate_strategy() -> impl Strategy<Value = ArchConfig> {
    (
        0usize..4, // pe_rows in {8,16,24,32}
        0usize..2, // pe_cols in {8,16}
        0usize..3, // groups in {2,4,7} — 7 fails validation
        0usize..3, // lreg in {32,64,128}
        0usize..4, // igbuf in {8,512,1024,2048}
        0usize..2, // wgbuf in {128,256}
    )
        .prop_map(|(pr, pc, g, lr, ig, wg)| {
            let group = [2usize, 4, 7][g];
            ArchConfig {
                pe_rows: [8usize, 16, 24, 32][pr],
                pe_cols: [8usize, 16][pc],
                group_rows: group,
                group_cols: 2,
                lreg_entries_per_pe: [32usize, 64, 128][lr],
                igbuf_entries: [8usize, 512, 1024, 2048][ig],
                wgbuf_entries: [128usize, 256][wg],
                ..ArchConfig::implementation(1)
            }
        })
}

fn objective_strategy() -> impl Strategy<Value = Objective> {
    (0usize..Objective::ALL.len()).prop_map(|i| Objective::ALL[i])
}

/// The serialized form of a kept frontier — byte equality of this string is
/// exactly wire-level bit identity.
fn rendered<R: SweepCost + serde::Serialize>(entries: &[ArchSweepEntry<R>]) -> String {
    entries
        .iter()
        .map(|entry| match &entry.outcome {
            Ok(report) => format!(
                "{}=>{}",
                serde_json::to_string_pretty(&entry.arch).unwrap(),
                serde_json::to_string_pretty(report).unwrap()
            ),
            Err(e) => format!(
                "{}=>error:{e}",
                serde_json::to_string_pretty(&entry.arch).unwrap()
            ),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Layer mode: staged frontier == unpruned oracle ranking, for every
    /// objective, bit for bit.
    #[test]
    fn staged_layer_sweep_equals_unpruned_oracle(
        layer in layer_strategy(),
        candidates in prop::collection::vec(candidate_strategy(), 1..=24),
        objective in objective_strategy(),
        top_k in 1usize..=8,
    ) {
        let staged = staged_sweep_archs("layer", &layer, &candidates, objective, top_k, |_| {});
        let oracle = rank_entries(sweep_archs("layer", &layer, &candidates), objective, top_k);
        prop_assert_eq!(rendered(&staged.entries), rendered(&oracle));
        prop_assert_eq!(staged.pruned + staged.evaluated, staged.unique as u64);
    }

    /// Network mode: staged frontier == unpruned oracle ranking.
    #[test]
    fn staged_network_sweep_equals_unpruned_oracle(
        net in network_strategy(),
        candidates in prop::collection::vec(candidate_strategy(), 1..=8),
        objective in objective_strategy(),
        top_k in 1usize..=4,
    ) {
        let staged = staged_sweep_archs_network(&net, &candidates, objective, top_k, |_| {});
        let oracle = rank_entries(sweep_archs_network(&net, &candidates), objective, top_k);
        prop_assert_eq!(rendered(&staged.entries), rendered(&oracle));
        prop_assert_eq!(staged.pruned + staged.evaluated, staged.unique as u64);
    }

    /// Every floor under-states the candidate's actual costs; the
    /// infeasibility verdict is never wrong.
    #[test]
    fn bounds_are_admissible(
        layer in layer_strategy(),
        candidates in prop::collection::vec(candidate_strategy(), 1..=12),
    ) {
        let bounds = candidate_bounds(std::slice::from_ref(&layer), &candidates);
        for (arch, bound) in candidates.iter().zip(&bounds) {
            let outcome = Accelerator::new(*arch).analyze_layer("layer", &layer);
            // Any floor is admissible for an error outcome; only feasible
            // candidates constrain the bounds.
            if let Ok(report) = outcome {
                prop_assert!(!bound.provably_infeasible,
                    "feasible candidate declared provably infeasible: {arch:?}");
                prop_assert!(bound.cycles_lb <= report.sweep_cycles(),
                    "cycles floor {} above actual {}", bound.cycles_lb, report.sweep_cycles());
                prop_assert!(bound.dram_lb <= report.sweep_dram_words(),
                    "DRAM floor {} above actual {}", bound.dram_lb, report.sweep_dram_words());
                let actual_bits = report.sweep_energy_pj().max(0.0).to_bits();
                prop_assert!(bound.energy_lb_bits <= actual_bits,
                    "energy floor above actual");
            }
        }
    }

    /// The streamed snapshots are monotone (processed counts increase) and
    /// the last snapshot's frontier equals the final kept set.
    #[test]
    fn progress_snapshots_converge_to_the_final_frontier(
        layer in layer_strategy(),
        candidates in prop::collection::vec(candidate_strategy(), 2..=16),
        objective in objective_strategy(),
    ) {
        let mut snapshots: Vec<(usize, u64, String)> = Vec::new();
        let staged = staged_sweep_archs("layer", &layer, &candidates, objective, 4, |p| {
            // A Pareto frontier may exceed top-K mid-run; the kept set is
            // truncated only on extraction, so compare the head.
            let head = &p.frontier[..p.frontier.len().min(4)];
            snapshots.push((p.processed, p.pruned, rendered(head)));
        });
        prop_assert!(snapshots.windows(2).all(|w| w[0].0 < w[1].0));
        if let Some((_, _, last)) = snapshots.last() {
            prop_assert_eq!(last, &rendered(&staged.entries));
        } else {
            prop_assert!(staged.entries.is_empty());
        }
    }
}
