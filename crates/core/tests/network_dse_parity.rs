//! Network-mode DSE acceptance properties:
//!
//! * **Parity** — [`sweep_archs_network`]'s per-candidate results must be
//!   bit-identical (at the serialized-report level, which is what reaches
//!   the wire) to the serial per-candidate
//!   [`Accelerator::analyze_network`] oracle loop, for random small
//!   networks × random valid candidate grids — including candidates that
//!   cannot run a layer, whose typed error must match the oracle's.
//! * **Enumeration-order independence** — shuffling and duplicating the
//!   candidate list never changes a single byte of the ordered results.

use clb_core::{sweep_archs_network, Accelerator, ArchConfig};
use conv_model::workloads::Network;
use conv_model::ConvLayer;
use proptest::prelude::*;

/// Random small networks: 1–3 square layers whose geometry keeps debug
/// builds fast, stitched into a [`Network`] the way the named workloads
/// are.
fn network_strategy() -> impl Strategy<Value = Network> {
    let layer = (
        1usize..=2,  // batch
        4usize..=24, // out channels
        6usize..=18, // output size
        1usize..=8,  // in channels
        1usize..=3,  // kernel
        1usize..=2,  // stride
    )
        .prop_filter_map("valid layer", |(b, co, size, ci, k, s)| {
            ConvLayer::square(b, co, size, ci, k, s).ok()
        });
    prop::collection::vec(layer, 1..=3).prop_map(|layers| {
        Network::new(
            "prop-net",
            layers
                .into_iter()
                .enumerate()
                .map(|(i, l)| (format!("conv{i}"), l))
                .collect(),
        )
    })
}

/// Random structurally-valid candidates around the Table I design space;
/// small IGBuf choices deliberately include values that make some layers
/// infeasible, so the error path is exercised too.
fn candidate_strategy() -> impl Strategy<Value = ArchConfig> {
    (
        0usize..4, // pe_rows in {8,16,24,32}
        0usize..2, // pe_cols in {8,16}
        0usize..2, // groups in {2,4}
        0usize..3, // lreg in {32,64,128}
        0usize..4, // igbuf in {8,512,1024,2048}
        0usize..2, // wgbuf in {128,256}
    )
        .prop_map(|(pr, pc, g, lr, ig, wg)| {
            let group = [2usize, 4][g];
            ArchConfig {
                pe_rows: [8usize, 16, 24, 32][pr],
                pe_cols: [8usize, 16][pc],
                group_rows: group,
                group_cols: group,
                lreg_entries_per_pe: [32usize, 64, 128][lr],
                igbuf_entries: [8usize, 512, 1024, 2048][ig],
                wgbuf_entries: [128usize, 256][wg],
                ..ArchConfig::implementation(1)
            }
        })
}

/// The serialized form of one sweep, in canonical order — byte equality of
/// this string is exactly wire-level bit identity.
fn rendered(sweep: &[clb_core::ArchSweepEntry<clb_core::NetworkReport>]) -> String {
    sweep
        .iter()
        .map(|entry| match &entry.outcome {
            Ok(report) => format!(
                "{}=>{}",
                serde_json::to_string_pretty(&entry.arch).unwrap(),
                serde_json::to_string_pretty(report).unwrap()
            ),
            Err(e) => format!(
                "{}=>error:{e}",
                serde_json::to_string_pretty(&entry.arch).unwrap()
            ),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance oracle: sweep results == serial per-candidate
    /// `analyze_network`, bit-identical at the serialized level.
    #[test]
    fn network_sweep_matches_serial_oracle(
        net in network_strategy(),
        candidates in prop::collection::vec(candidate_strategy(), 1..=4),
    ) {
        let sweep = sweep_archs_network(&net, &candidates);
        prop_assert!(!sweep.is_empty());
        for entry in &sweep {
            let oracle = Accelerator::new(entry.arch).analyze_network(&net);
            match (&entry.outcome, &oracle) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    serde_json::to_string_pretty(a).unwrap(),
                    serde_json::to_string_pretty(b).unwrap(),
                    "sweep report must be bit-identical to analyze_network"
                ),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => panic!("sweep {a:?} disagrees with oracle {b:?}"),
            }
        }
    }

    /// Shuffled (and duplicated) candidate lists produce identical ordered
    /// results, byte for byte.
    #[test]
    fn network_sweep_is_enumeration_order_independent(
        net in network_strategy(),
        candidates in prop::collection::vec(candidate_strategy(), 2..=4),
    ) {
        let forward = sweep_archs_network(&net, &candidates);
        let mut shuffled = candidates.clone();
        shuffled.reverse();
        shuffled.extend(candidates); // every candidate twice
        let reversed = sweep_archs_network(&net, &shuffled);
        prop_assert_eq!(rendered(&forward), rendered(&reversed));
    }
}
