//! Analysis reports produced by [`Accelerator`](crate::Accelerator).

use accel_sim::SimStats;
use comm_bound::BoundSummary;
use conv_model::ConvLayer;
use dataflow::Tiling;
use energy_model::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// Everything measured and bounded for one layer on one accelerator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name (e.g. `"conv3_1"`).
    pub name: String,
    /// Layer geometry.
    pub layer: ConvLayer,
    /// The tiling the planner chose.
    pub tiling: Tiling,
    /// Simulator counters.
    pub stats: SimStats,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Analytic lower bounds at the accelerator's effective memory.
    pub bounds: BoundSummary,
}

impl LayerReport {
    /// Ratio of simulated DRAM traffic to the practical lower bound.
    #[must_use]
    pub fn dram_vs_bound(&self) -> f64 {
        self.stats.dram.total_words() as f64 / self.bounds.dram_words
    }

    /// Energy efficiency in pJ/MAC.
    #[must_use]
    pub fn pj_per_mac(&self) -> f64 {
        self.energy.pj_per_mac(self.layer.macs())
    }
}

/// Aggregated report over all layers of a network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// Per-layer reports, in layer order.
    pub layers: Vec<LayerReport>,
    /// Combined simulator counters.
    pub totals: SimStats,
    /// Combined energy.
    pub energy: EnergyBreakdown,
    /// End-to-end execution time in seconds.
    pub seconds: f64,
}

impl NetworkReport {
    /// Assembles the report from per-layer reports in network order: totals
    /// reduced in layer order, energies summed, end-to-end seconds at the
    /// given clock. Both [`Accelerator::analyze_network`] and
    /// `sweep_archs_network` build their reports through this constructor,
    /// so the sweep's aggregation cannot drift from the serial oracle's.
    ///
    /// [`Accelerator::analyze_network`]: crate::Accelerator::analyze_network
    #[must_use]
    pub fn from_layer_reports(network: &str, layers: Vec<LayerReport>, core_freq_hz: f64) -> Self {
        let totals = layers
            .iter()
            .map(|l| l.stats)
            .reduce(|a, b| a.combined(&b))
            .unwrap_or_default();
        let energy = layers.iter().map(|l| l.energy).sum();
        let seconds = totals.seconds(core_freq_hz);
        NetworkReport {
            network: network.to_string(),
            layers,
            totals,
            energy,
            seconds,
        }
    }

    /// Total MACs over all layers, saturating at `u64::MAX` — accumulated in
    /// `u128` like [`conv_model::workloads::Network::total_macs`], so a huge
    /// network cannot overflow the sum (the service additionally caps
    /// accepted networks at [`crate::network_caps::MAX_NETWORK_MACS`]).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        let total: u128 = self.layers.iter().map(|l| u128::from(l.layer.macs())).sum();
        u64::try_from(total).unwrap_or(u64::MAX)
    }

    /// Network-level energy efficiency in pJ/MAC (the Fig. 18 metric).
    #[must_use]
    pub fn pj_per_mac(&self) -> f64 {
        self.energy.pj_per_mac(self.total_macs())
    }

    /// Average power in watts (the Fig. 19 metric).
    #[must_use]
    pub fn power_w(&self) -> f64 {
        self.energy.power_w(self.seconds)
    }

    /// Compute-only seconds (Fig. 19's "computing time").
    #[must_use]
    pub fn compute_seconds(&self, core_freq_hz: f64) -> f64 {
        self.totals.compute_cycles as f64 / core_freq_hz
    }

    /// Stall seconds (Fig. 19's "waiting time").
    #[must_use]
    pub fn waiting_seconds(&self, core_freq_hz: f64) -> f64 {
        self.totals.stall_cycles as f64 / core_freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_derived_metrics() {
        // Construct a minimal synthetic report and exercise the arithmetic.
        let layer = ConvLayer::square(1, 2, 4, 2, 3, 1).unwrap();
        let stats = SimStats {
            compute_cycles: 1000,
            stall_cycles: 500,
            ..SimStats::default()
        };
        let energy = EnergyBreakdown {
            mac_pj: layer.macs() as f64 * 2.0,
            ..EnergyBreakdown::default()
        };
        let report = NetworkReport {
            network: "test".into(),
            layers: vec![LayerReport {
                name: "l0".into(),
                layer,
                tiling: Tiling::clamped(&layer, 1, 2, 4, 4),
                stats,
                energy,
                bounds: BoundSummary::of(&layer, comm_bound::OnChipMemory::from_kib(16.0)),
            }],
            totals: stats,
            energy,
            seconds: 3e-6,
        };
        assert_eq!(report.total_macs(), layer.macs());
        assert!((report.pj_per_mac() - 2.0).abs() < 1e-12);
        assert!((report.compute_seconds(500e6) - 2e-6).abs() < 1e-18);
        assert!((report.waiting_seconds(500e6) - 1e-6).abs() < 1e-18);
        assert!(report.power_w() > 0.0);
    }
}
