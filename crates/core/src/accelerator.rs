//! The top-level [`Accelerator`] API: plan → simulate → bound → energy.

use accel_sim::{ArchConfig, SimError, SimStats};
use comm_bound::BoundSummary;
use conv_model::fixed::Q8_8;
use conv_model::workloads::Network;
use conv_model::{ConvLayer, Tensor4};
use dataflow::Tiling;
use energy_model::EnergyParams;

use crate::energy::energy_of;
use crate::planner::plan_for_arch;
use crate::report::{LayerReport, NetworkReport};

/// A configured instance of the communication-optimal accelerator.
///
/// Bundles an architecture with an energy model and exposes the analysis
/// pipeline used by every figure reproduction: tiling planning, cycle
/// simulation, bound evaluation and energy accounting.
///
/// ```
/// use clb_core::Accelerator;
/// use conv_model::ConvLayer;
///
/// let acc = Accelerator::implementation(1);
/// let layer = ConvLayer::square(1, 64, 28, 64, 3, 1).unwrap();
/// let report = acc.analyze_layer("demo", &layer).unwrap();
/// assert!(report.dram_vs_bound() < 1.6);
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    arch: ArchConfig,
    energy_params: EnergyParams,
}

impl Accelerator {
    /// Creates an accelerator from an architecture with default energy
    /// parameters.
    #[must_use]
    pub fn new(arch: ArchConfig) -> Self {
        Accelerator {
            arch,
            energy_params: EnergyParams::default(),
        }
    }

    /// One of the five Table I implementations.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `1..=5`.
    #[must_use]
    pub fn implementation(index: usize) -> Self {
        Accelerator::new(ArchConfig::implementation(index))
    }

    /// Replaces the energy parameters.
    #[must_use]
    pub fn with_energy_params(mut self, params: EnergyParams) -> Self {
        self.energy_params = params;
        self
    }

    /// The architecture.
    #[must_use]
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The energy parameters.
    #[must_use]
    pub fn energy_params(&self) -> &EnergyParams {
        &self.energy_params
    }

    /// Plans the DRAM-minimal feasible tiling for a layer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when no tiling of the Fig. 7 dataflow fits the
    /// architecture (see [`plan_for_arch`]).
    pub fn plan(&self, layer: &ConvLayer) -> Result<Tiling, SimError> {
        plan_for_arch(layer, &self.arch)
    }

    /// Simulates a layer under its planned tiling.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] (cannot occur for tilings from [`Self::plan`]).
    pub fn simulate(&self, layer: &ConvLayer) -> Result<SimStats, SimError> {
        let tiling = self.plan(layer)?;
        accel_sim::simulate(layer, &tiling, &self.arch)
    }

    /// Full analysis of one layer: plan, simulate, bound, energy.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn analyze_layer(&self, name: &str, layer: &ConvLayer) -> Result<LayerReport, SimError> {
        let tiling = self.plan(layer)?;
        let stats = accel_sim::simulate(layer, &tiling, &self.arch)?;
        let energy = energy_of(&stats, &self.arch, &self.energy_params);
        let bounds = BoundSummary::of(layer, accel_sim::effective_memory(&self.arch));
        Ok(LayerReport {
            name: name.to_string(),
            layer: *layer,
            tiling,
            stats,
            energy,
            bounds,
        })
    }

    /// Full analysis of one layer plus an execution trace of its planned
    /// simulation (see [`accel_sim::trace`]).
    ///
    /// The trace rides the exact simulation the report describes — the
    /// planned tiling is simulated once, traced — so the report's
    /// `stats` and the trace's interval sums are bit-identical by the
    /// simulator's construction.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`], including
    /// [`SimError::TraceTooLarge`] when the planned grid exceeds the
    /// trace caps for the requested options.
    pub fn analyze_layer_traced(
        &self,
        name: &str,
        layer: &ConvLayer,
        options: &accel_sim::TraceOptions,
    ) -> Result<(LayerReport, accel_sim::ExecutionTrace), SimError> {
        let tiling = self.plan(layer)?;
        let (stats, trace) = accel_sim::simulate_traced(layer, &tiling, &self.arch, options)?;
        let energy = energy_of(&stats, &self.arch, &self.energy_params);
        let bounds = BoundSummary::of(layer, accel_sim::effective_memory(&self.arch));
        Ok((
            LayerReport {
                name: name.to_string(),
                layer: *layer,
                tiling,
                stats,
                energy,
                bounds,
            },
            trace,
        ))
    }

    /// Full analysis of a network (the Fig. 14–20 pipeline).
    ///
    /// The per-layer plan → simulate → bound → energy pipelines are
    /// independent, so they fan out across threads (`rayon::par_map`); the
    /// report keeps layers in network order and the result is bit-identical
    /// to a serial run (planning is deterministic under parallelism and the
    /// search cache only memoizes deterministic values).
    ///
    /// # Errors
    ///
    /// Propagates the first (in layer order) [`SimError`] encountered.
    pub fn analyze_network(&self, network: &Network) -> Result<NetworkReport, SimError> {
        let named: Vec<_> = network.conv_layers().collect();
        // `par_map` preserves item order, so `?` below still surfaces the
        // first failing layer in network order, matching the serial loop.
        // Deliberate trade: unlike the serial loop, the remaining layers
        // are still analyzed when an early one fails — failures only occur
        // for structurally unmappable layers (rare, caller-visible 4xx),
        // and short-circuiting across workers would make which error
        // surfaces depend on thread timing.
        let results = rayon::par_map(&named, |n| self.analyze_layer(&n.name, &n.layer));
        let mut layers = Vec::with_capacity(results.len());
        for result in results {
            layers.push(result?);
        }
        Ok(NetworkReport::from_layer_reports(
            network.name(),
            layers,
            self.arch.core_freq_hz,
        ))
    }

    /// Runs the functional simulation of one layer (Q8.8 datapath) under the
    /// planned tiling, returning the computed outputs and the stats.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor shapes disagree with `layer`.
    pub fn run_functional(
        &self,
        layer: &ConvLayer,
        input: &Tensor4<Q8_8>,
        weights: &Tensor4<Q8_8>,
    ) -> Result<(Tensor4<Q8_8>, SimStats), SimError> {
        let tiling = self.plan(layer)?;
        accel_sim::simulate_functional(layer, &tiling, &self.arch, input, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    #[test]
    fn analyze_layer_produces_consistent_report() {
        let acc = Accelerator::implementation(1);
        let layer = workloads::vgg16(1).layer(7).unwrap().layer; // conv4_1
        let report = acc.analyze_layer("conv4_1", &layer).unwrap();
        assert_eq!(report.stats.useful_macs, layer.macs());
        assert!(report.energy.total_pj() > 0.0);
        assert!(report.dram_vs_bound() >= 0.95);
        assert!(report.pj_per_mac() > energy_model::table::MAC_PJ);
    }

    #[test]
    fn traced_analysis_matches_untraced() {
        let acc = Accelerator::implementation(1);
        let layer = workloads::vgg16(1).layer(7).unwrap().layer; // conv4_1
        let report = acc.analyze_layer("conv4_1", &layer).unwrap();
        let (traced, trace) = acc
            .analyze_layer_traced("conv4_1", &layer, &accel_sim::TraceOptions::default())
            .unwrap();
        assert_eq!(report.stats, traced.stats);
        assert_eq!(report.tiling, traced.tiling);
        assert_eq!(trace.totals.compute_cycles, report.stats.compute_cycles);
        assert_eq!(trace.totals.stall_cycles, report.stats.stall_cycles);
        assert_eq!(trace.totals.blocks, report.stats.blocks);
        assert_eq!(trace.totals.iterations, report.stats.iterations);
    }

    #[test]
    fn functional_run_matches_counting_run() {
        let acc = Accelerator::implementation(1);
        let layer = ConvLayer::square(1, 4, 10, 3, 3, 1).unwrap();
        let input = Tensor4::from_fn(1, 3, 10, 10, |_, c, h, w| {
            Q8_8::from_f64(((c * h + w) % 5) as f64 * 0.5 - 1.0)
        });
        let weights = Tensor4::from_fn(4, 3, 3, 3, |n, c, h, w| {
            Q8_8::from_f64(((n + c * h * w) % 3) as f64 * 0.25)
        });
        let (out, stats) = acc.run_functional(&layer, &input, &weights).unwrap();
        let counted = acc.simulate(&layer).unwrap();
        assert_eq!(stats, counted);
        assert_eq!(out.shape(), (1, 4, 10, 10));
    }

    #[test]
    fn network_report_aggregates() {
        let acc = Accelerator::implementation(1);
        let net = workloads::resnet_bottleneck(1, 14, 64, 16);
        let report = acc.analyze_network(&net).unwrap();
        assert_eq!(report.layers.len(), 3);
        assert_eq!(report.total_macs(), net.total_macs());
        assert!(report.seconds > 0.0);
        assert!(report.power_w() > 0.0);
    }

    #[test]
    fn builder_style_energy_params() {
        let params = EnergyParams {
            other_fraction: 0.0,
            ..EnergyParams::default()
        };
        let acc = Accelerator::implementation(2).with_energy_params(params);
        assert_eq!(acc.energy_params().other_fraction, 0.0);
        assert_eq!(acc.arch().pe_count(), 512);
    }
}
