//! Architecture design-space sweeps — the custom-design "what if" engine.
//!
//! The paper fixes five concrete implementations (Table I), but its
//! analytical model ranks *any* communication-lower-bound-driven design
//! point. [`sweep_archs`] makes that executable: it evaluates one layer on
//! a capped list of candidate [`ArchConfig`]s through the full
//! plan → simulate → bound → energy pipeline, fanning candidates across
//! threads (`rayon::par_map`) with each candidate's planning amortized by
//! the process-wide `(layer, arch)` plan cache — a warm re-sweep is cache
//! hits plus cheap class-based simulation.
//!
//! Results are **enumeration-order independent**: duplicate configurations
//! are collapsed (by [`ArchConfig::cache_key`]) and the output is sorted by
//! a canonical total order — feasible candidates first, by
//! `(total cycles, DRAM words, architecture key)`; infeasible ones after,
//! by architecture key — so shuffling the request's candidate list cannot
//! change a single output byte. Per-candidate results are exactly what
//! [`Accelerator::analyze_layer`] produces, which is what pins the sweep
//! bit-identical to a serial per-candidate plan + simulate oracle loop.

use accel_sim::{ArchCacheKey, ArchConfig, SimError};
use conv_model::ConvLayer;

use crate::accelerator::Accelerator;
use crate::report::LayerReport;

/// One candidate's outcome in an architecture sweep.
#[derive(Debug, Clone)]
pub struct ArchSweepEntry {
    /// The evaluated configuration.
    pub arch: ArchConfig,
    /// The full layer report, or why the candidate cannot run this layer
    /// (e.g. a single sliding window already overflows its IGBuf).
    pub outcome: Result<LayerReport, SimError>,
}

impl ArchSweepEntry {
    /// The canonical sort key: feasible before infeasible, then fewest
    /// total cycles, then least DRAM traffic, then the architecture's own
    /// total order. A total order over distinct candidates, so sweep output
    /// never depends on enumeration order.
    #[must_use]
    pub fn sort_key(&self) -> (u8, u64, u64, ArchCacheKey) {
        match &self.outcome {
            Ok(report) => (
                0,
                report.stats.total_cycles(),
                report.stats.dram.total_words(),
                self.arch.cache_key(),
            ),
            Err(_) => (1, 0, 0, self.arch.cache_key()),
        }
    }
}

/// Evaluates `layer` on every distinct candidate architecture, in parallel,
/// returning canonically-ordered per-candidate results.
///
/// Candidates must already satisfy [`ArchConfig::validate`]; invalid ones
/// are *not* filtered here — they surface as
/// [`SimError::InvalidArch`] outcomes, exactly as a direct
/// [`Accelerator::analyze_layer`] call would report them. Exact duplicates
/// (same [`ArchConfig::cache_key`]) are evaluated once.
///
/// `name` is the layer name echoed in each report (the service uses
/// `"layer"`, matching `/v1/plan`).
#[must_use]
pub fn sweep_archs(
    name: &str,
    layer: &ConvLayer,
    candidates: &[ArchConfig],
) -> Vec<ArchSweepEntry> {
    let mut unique: Vec<ArchConfig> = Vec::with_capacity(candidates.len());
    let mut seen: std::collections::HashSet<ArchCacheKey> =
        std::collections::HashSet::with_capacity(candidates.len());
    for arch in candidates {
        if seen.insert(arch.cache_key()) {
            unique.push(*arch);
        }
    }
    let mut entries = rayon::par_map(&unique, |arch| ArchSweepEntry {
        arch: *arch,
        outcome: Accelerator::new(*arch).analyze_layer(name, layer),
    });
    entries.sort_by_key(ArchSweepEntry::sort_key);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    fn table1() -> Vec<ArchConfig> {
        (1..=5).map(ArchConfig::implementation).collect()
    }

    #[test]
    fn sweep_matches_serial_oracle() {
        let archs = table1();
        let sweep = sweep_archs("layer", &layer(), &archs);
        assert_eq!(sweep.len(), 5);
        for entry in &sweep {
            let oracle = Accelerator::new(entry.arch).analyze_layer("layer", &layer());
            match (&entry.outcome, &oracle) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.tiling, b.tiling);
                    assert_eq!(a.stats, b.stats);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("sweep {a:?} disagrees with oracle {b:?}"),
            }
        }
    }

    #[test]
    fn sweep_is_enumeration_order_independent_and_dedups() {
        let forward = table1();
        let mut shuffled = table1();
        shuffled.reverse();
        shuffled.extend(table1()); // duplicates of every candidate
        let a = sweep_archs("layer", &layer(), &forward);
        let b = sweep_archs("layer", &layer(), &shuffled);
        assert_eq!(a.len(), 5, "duplicates must collapse");
        assert_eq!(b.len(), 5, "duplicates must collapse");
        let keys_a: Vec<_> = a.iter().map(ArchSweepEntry::sort_key).collect();
        let keys_b: Vec<_> = b.iter().map(ArchSweepEntry::sort_key).collect();
        assert_eq!(keys_a, keys_b);
        assert!(keys_a.windows(2).all(|w| w[0] < w[1]), "strict total order");
    }

    #[test]
    fn invalid_candidates_surface_as_typed_errors() {
        let mut bad = ArchConfig::example();
        bad.group_rows = 7;
        let sweep = sweep_archs("layer", &layer(), &[bad, ArchConfig::example()]);
        assert_eq!(sweep.len(), 2);
        // Canonical order puts the feasible candidate first.
        assert!(sweep[0].outcome.is_ok());
        assert!(
            matches!(&sweep[1].outcome, Err(SimError::InvalidArch(m)) if m.contains("group rows")),
            "{:?}",
            sweep[1].outcome
        );
    }
}
