//! Architecture design-space sweeps — the custom-design "what if" engine.
//!
//! The paper fixes five concrete implementations (Table I), but its
//! analytical model ranks *any* communication-lower-bound-driven design
//! point. Two entry points make that executable:
//!
//! * [`sweep_archs`] evaluates one **layer** on a capped list of candidate
//!   [`ArchConfig`]s through the full plan → simulate → bound → energy
//!   pipeline, fanning candidates across threads (`rayon::par_map`);
//! * [`sweep_archs_network`] evaluates a whole **network** per candidate,
//!   fanning the flat `(candidate × layer)` unit list across threads so an
//!   expensive layer of one candidate never serializes behind another
//!   candidate's cheap layers.
//!
//! Both amortize planning through the process-wide `(layer, arch)` plan
//! cache — a warm re-sweep is cache hits plus cheap class-based simulation,
//! and layers that repeat inside a network (VGG-16 has several identical
//! geometries) are planned once per candidate.
//!
//! Results are **enumeration-order independent**: duplicate configurations
//! are collapsed (by [`ArchConfig::cache_key`]) and the output is sorted by
//! a canonical total order — feasible candidates first, by
//! `(total cycles, DRAM words, architecture key)`; infeasible ones after,
//! by architecture key — so shuffling the request's candidate list cannot
//! change a single output byte. Per-candidate results are exactly what
//! [`Accelerator::analyze_layer`] / [`Accelerator::analyze_network`]
//! produce, which is what pins each sweep bit-identical to a serial
//! per-candidate oracle loop. The dedup, the sort key and the entry shape
//! are shared between the two modes, so they cannot drift.

use std::collections::HashMap;

use accel_sim::{ArchCacheKey, ArchConfig, SimError};
use comm_bound::filter::FloorCache;
use conv_model::workloads::{NamedLayer, Network};
use conv_model::ConvLayer;
use energy_model::table;

use crate::accelerator::Accelerator;
use crate::report::{LayerReport, NetworkReport};

/// What a sweep outcome must expose for the canonical result ordering:
/// the headline cycle count, the DRAM traffic, and the energy used by the
/// selectable ranking objectives.
pub trait SweepCost {
    /// Total execution cycles (compute + unhidden stalls).
    fn sweep_cycles(&self) -> u64;
    /// Total DRAM words moved.
    fn sweep_dram_words(&self) -> u64;
    /// Total energy in picojoules.
    fn sweep_energy_pj(&self) -> f64;
}

impl SweepCost for LayerReport {
    fn sweep_cycles(&self) -> u64 {
        self.stats.total_cycles()
    }

    fn sweep_dram_words(&self) -> u64 {
        self.stats.dram.total_words()
    }

    fn sweep_energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }
}

impl SweepCost for NetworkReport {
    fn sweep_cycles(&self) -> u64 {
        self.totals.total_cycles()
    }

    fn sweep_dram_words(&self) -> u64 {
        self.totals.dram.total_words()
    }

    fn sweep_energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }
}

/// One candidate's outcome in an architecture sweep. `R` is the report a
/// feasible candidate produces: [`LayerReport`] for layer sweeps
/// ([`sweep_archs`]), [`NetworkReport`] for network sweeps
/// ([`sweep_archs_network`]).
#[derive(Debug, Clone)]
pub struct ArchSweepEntry<R = LayerReport> {
    /// The evaluated configuration.
    pub arch: ArchConfig,
    /// The full report, or why the candidate cannot run the workload
    /// (e.g. a single sliding window already overflows its IGBuf).
    pub outcome: Result<R, SimError>,
}

impl<R: SweepCost> ArchSweepEntry<R> {
    /// The canonical sort key: feasible before infeasible, then fewest
    /// total cycles, then least DRAM traffic, then the architecture's own
    /// total order. A total order over distinct candidates, so sweep output
    /// never depends on enumeration order.
    #[must_use]
    pub fn sort_key(&self) -> (u8, u64, u64, ArchCacheKey) {
        match &self.outcome {
            Ok(report) => (
                0,
                report.sweep_cycles(),
                report.sweep_dram_words(),
                self.arch.cache_key(),
            ),
            Err(_) => (1, 0, 0, self.arch.cache_key()),
        }
    }
}

/// Collapses exact duplicates (same [`ArchConfig::cache_key`]), keeping the
/// first occurrence of each — shared by both sweep modes so "evaluated
/// once" means the same thing everywhere.
fn dedup_candidates(candidates: &[ArchConfig]) -> Vec<ArchConfig> {
    let mut unique: Vec<ArchConfig> = Vec::with_capacity(candidates.len());
    let mut seen: std::collections::HashSet<ArchCacheKey> =
        std::collections::HashSet::with_capacity(candidates.len());
    for arch in candidates {
        if seen.insert(arch.cache_key()) {
            unique.push(*arch);
        }
    }
    unique
}

/// Pairs each candidate with its outcome and applies the canonical order —
/// the shared tail of both sweep modes.
fn canonical_entries<R: SweepCost>(
    archs: Vec<ArchConfig>,
    outcomes: Vec<Result<R, SimError>>,
) -> Vec<ArchSweepEntry<R>> {
    debug_assert_eq!(archs.len(), outcomes.len());
    let mut entries: Vec<ArchSweepEntry<R>> = archs
        .into_iter()
        .zip(outcomes)
        .map(|(arch, outcome)| ArchSweepEntry { arch, outcome })
        .collect();
    entries.sort_by_key(ArchSweepEntry::sort_key);
    entries
}

/// Evaluates `layer` on every distinct candidate architecture, in parallel,
/// returning canonically-ordered per-candidate results.
///
/// Candidates must already satisfy [`ArchConfig::validate`]; invalid ones
/// are *not* filtered here — they surface as
/// [`SimError::InvalidArch`] outcomes, exactly as a direct
/// [`Accelerator::analyze_layer`] call would report them. Exact duplicates
/// (same [`ArchConfig::cache_key`]) are evaluated once.
///
/// `name` is the layer name echoed in each report (the service uses
/// `"layer"`, matching `/v1/plan`).
#[must_use]
pub fn sweep_archs(
    name: &str,
    layer: &ConvLayer,
    candidates: &[ArchConfig],
) -> Vec<ArchSweepEntry> {
    let unique = dedup_candidates(candidates);
    let outcomes = rayon::par_map(&unique, |arch| {
        Accelerator::new(*arch).analyze_layer(name, layer)
    });
    canonical_entries(unique, outcomes)
}

/// Evaluates `network` on every distinct candidate architecture, returning
/// canonically-ordered per-candidate [`NetworkReport`]s.
///
/// The work is fanned as flat `(candidate × layer)` units across the
/// thread pool (not per-candidate with a nested per-layer fan), so load
/// balances across candidates whose layers differ wildly in cost; planning
/// is amortized by the process-wide `(layer, arch)` plan cache, so layer
/// geometries that repeat within the network are planned once per
/// candidate. Per-candidate reports are reassembled in network layer order
/// and aggregated through the same [`NetworkReport::from_layer_reports`]
/// constructor [`Accelerator::analyze_network`] uses
/// (first-error-in-layer-order semantics included), so each entry is
/// structurally bit-identical to a serial per-candidate `analyze_network`
/// oracle call.
#[must_use]
pub fn sweep_archs_network(
    network: &Network,
    candidates: &[ArchConfig],
) -> Vec<ArchSweepEntry<NetworkReport>> {
    let unique = dedup_candidates(candidates);
    let layers: Vec<&NamedLayer> = network.conv_layers().collect();
    let units: Vec<(usize, usize)> = (0..unique.len())
        .flat_map(|c| (0..layers.len()).map(move |l| (c, l)))
        .collect();
    let results = rayon::par_map(&units, |&(c, l)| {
        Accelerator::new(unique[c]).analyze_layer(&layers[l].name, &layers[l].layer)
    });
    let mut results = results.into_iter();
    let outcomes: Vec<Result<NetworkReport, SimError>> = unique
        .iter()
        .map(|arch| {
            // This candidate's slice of the flat unit list, in layer order.
            let mut reports = Vec::with_capacity(layers.len());
            let mut first_error: Option<SimError> = None;
            for _ in 0..layers.len() {
                match results.next().expect("one result per (candidate, layer)") {
                    Ok(report) => reports.push(report),
                    Err(e) => first_error = first_error.or(Some(e)),
                }
            }
            if let Some(e) = first_error {
                return Err(e);
            }
            Ok(NetworkReport::from_layer_reports(
                network.name(),
                reports,
                arch.core_freq_hz,
            ))
        })
        .collect();
    canonical_entries(unique, outcomes)
}

/// Ranking objective of a staged sweep.
///
/// Scalar objectives (`Cycles`, `Traffic`, `Energy`) keep the global top-K
/// by a total order whose primary component is the named cost; `Pareto`
/// keeps the set of feasible candidates not dominated on
/// `(cycles, DRAM words, energy)`. The legacy `/v1/dse` ordering is exactly
/// [`Objective::Cycles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Fewest total cycles (ties: DRAM words, then architecture key) —
    /// the legacy canonical order.
    Cycles,
    /// Fewest DRAM words (ties: cycles, then architecture key).
    Traffic,
    /// Least energy in pJ (ties: cycles, DRAM words, architecture key).
    Energy,
    /// The non-dominated set over `(cycles, DRAM words, energy)`, listed in
    /// cycle order. Infeasible candidates are never part of a Pareto
    /// frontier.
    Pareto,
}

impl Objective {
    /// Every objective, in documentation order.
    pub const ALL: [Objective; 4] = [
        Objective::Cycles,
        Objective::Traffic,
        Objective::Energy,
        Objective::Pareto,
    ];

    /// Parses the wire spelling (`"cycles" | "traffic" | "energy" |
    /// "pareto"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cycles" => Some(Objective::Cycles),
            "traffic" => Some(Objective::Traffic),
            "energy" => Some(Objective::Energy),
            "pareto" => Some(Objective::Pareto),
            _ => None,
        }
    }

    /// The wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Objective::Cycles => "cycles",
            Objective::Traffic => "traffic",
            Objective::Energy => "energy",
            Objective::Pareto => "pareto",
        }
    }
}

/// Total energy as an order-preserving integer: `f64::to_bits` is monotone
/// over the non-negative range, so ranking by these bits ranks by energy.
fn energy_bits(pj: f64) -> u64 {
    pj.max(0.0).to_bits()
}

/// Relative slack applied to floating-point floors before integer
/// comparison, so summation-order and rounding noise can never push an
/// otherwise-admissible floor above the true cost.
const FLOAT_SLACK: f64 = 1.0 - 1e-9;

/// The canonical total order under `objective`: feasible before infeasible,
/// then the objective's primary cost, then its tie-breakers, then the
/// architecture's own total order. `Pareto` uses the `Cycles` order for its
/// listing (membership is decided by dominance, not by this key).
#[must_use]
pub fn objective_key<R: SweepCost>(
    entry: &ArchSweepEntry<R>,
    objective: Objective,
) -> (u8, u64, u64, u64, ArchCacheKey) {
    let key = entry.arch.cache_key();
    match &entry.outcome {
        Ok(r) => {
            let c = r.sweep_cycles();
            let d = r.sweep_dram_words();
            match objective {
                Objective::Cycles | Objective::Pareto => (0, c, d, 0, key),
                Objective::Traffic => (0, d, c, 0, key),
                Objective::Energy => (0, energy_bits(r.sweep_energy_pj()), c, d, key),
            }
        }
        Err(_) => (1, 0, 0, 0, key),
    }
}

/// `(cycles, DRAM words, energy bits)` of a feasible entry.
fn cost_triple<R: SweepCost>(entry: &ArchSweepEntry<R>) -> Option<(u64, u64, u64)> {
    entry.outcome.as_ref().ok().map(|r| {
        (
            r.sweep_cycles(),
            r.sweep_dram_words(),
            energy_bits(r.sweep_energy_pj()),
        )
    })
}

/// `a` dominates `b`: no worse on every cost, strictly better on one.
fn dominates(a: (u64, u64, u64), b: (u64, u64, u64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
}

/// The unpruned oracle ranking: what a staged sweep must reproduce
/// bit-for-bit from any full sweep's entries.
///
/// Scalar objectives sort by [`objective_key`] and keep the first `top_k`.
/// `Pareto` keeps the feasible non-dominated set, listed in cycle order,
/// truncated to `top_k`.
#[must_use]
pub fn rank_entries<R: SweepCost>(
    entries: Vec<ArchSweepEntry<R>>,
    objective: Objective,
    top_k: usize,
) -> Vec<ArchSweepEntry<R>> {
    let mut ranked = match objective {
        Objective::Pareto => {
            let triples: Vec<Option<(u64, u64, u64)>> = entries.iter().map(cost_triple).collect();
            entries
                .into_iter()
                .enumerate()
                .filter(|(i, _)| match triples[*i] {
                    Some(t) => !triples.iter().flatten().any(|&o| dominates(o, t)),
                    None => false,
                })
                .map(|(_, e)| e)
                .collect()
        }
        _ => entries,
    };
    ranked.sort_by_key(|e| objective_key(e, objective));
    ranked.truncate(top_k);
    ranked
}

/// An admissible lower bound on one candidate's sweep costs, used by the
/// bound stage to discard candidates before planning them.
///
/// Every field under-states (never over-states) what the candidate would
/// actually score, so discarding on a *strict* comparison against an
/// already-evaluated entry is lossless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateBound {
    /// Floor on total cycles (compute floor vs. transfer floor, per layer).
    pub cycles_lb: u64,
    /// Floor on total DRAM words.
    pub dram_lb: u64,
    /// Floor on total energy, as order-preserving [`f64::to_bits`].
    pub energy_lb_bits: u64,
    /// The candidate provably cannot run the workload (a sliding window
    /// overflows its IGBuf, or the configuration fails validation): its
    /// outcome is certain to be an error.
    pub provably_infeasible: bool,
}

impl CandidateBound {
    fn infeasible() -> Self {
        CandidateBound {
            cycles_lb: u64::MAX,
            dram_lb: u64::MAX,
            energy_lb_bits: u64::MAX,
            provably_infeasible: true,
        }
    }
}

/// Computes the admissible [`CandidateBound`] of every candidate for a
/// workload, sharing one [`FloorCache`] so candidates that agree on buffer
/// geometry cost a hash lookup each.
///
/// The floors compose the structural DRAM floor
/// ([`comm_bound::filter::LayerFloor`]) with two simulator identities: a
/// layer's cycles are at least `⌈MACs / PEs⌉` (compute) and at least
/// `reads / link words-per-cycle + DRAM latency` (transfer), and its energy
/// is at least `DRAM words · DRAM pJ + MACs · MAC pJ` (the two dominant
/// components of the energy model, both with exact per-unit costs).
#[must_use]
pub fn candidate_bounds(layers: &[ConvLayer], candidates: &[ArchConfig]) -> Vec<CandidateBound> {
    let mut cache = FloorCache::new(layers);
    let macs: Vec<u64> = layers.iter().map(ConvLayer::macs).collect();
    let total_macs = macs.iter().fold(0u64, |a, &m| a.saturating_add(m));
    candidates
        .iter()
        .map(|arch| {
            if arch.validate().is_err() {
                return CandidateBound::infeasible();
            }
            let floors = cache.floors(arch.igbuf_entries, arch.wgbuf_entries);
            if floors.iter().any(|f| f.provably_infeasible) {
                return CandidateBound::infeasible();
            }
            let pe = arch.pe_count().max(1) as u64;
            let wpc = arch.dram_words_per_cycle();
            let latency = arch.dram.latency_cycles;
            let mut cycles_lb = 0u64;
            let mut dram_lb = 0u64;
            for (f, &m) in floors.iter().zip(&macs) {
                let compute_lb = m.div_ceil(pe);
                let transfer_lb = if wpc > 0.0 {
                    ((f.read_words as f64 / wpc) * FLOAT_SLACK) as u64
                } else {
                    0
                };
                cycles_lb =
                    cycles_lb.saturating_add(compute_lb.max(transfer_lb.saturating_add(latency)));
                dram_lb = dram_lb.saturating_add(f.total_words);
            }
            let energy_lb =
                (dram_lb as f64 * table::DRAM_PJ + total_macs as f64 * table::MAC_PJ) * FLOAT_SLACK;
            CandidateBound {
                cycles_lb,
                dram_lb,
                energy_lb_bits: energy_bits(energy_lb),
                provably_infeasible: false,
            }
        })
        .collect()
}

impl CandidateBound {
    /// The bound on the objective's primary cost.
    fn primary_lb(&self, objective: Objective) -> u64 {
        match objective {
            Objective::Cycles | Objective::Pareto => self.cycles_lb,
            Objective::Traffic => self.dram_lb,
            Objective::Energy => self.energy_lb_bits,
        }
    }

    /// Deterministic processing order: cheapest bound first (most likely to
    /// anchor the frontier early), provably-infeasible candidates last.
    fn order_key(&self, objective: Objective) -> (u8, u64, u64, u64) {
        (
            u8::from(self.provably_infeasible),
            self.primary_lb(objective),
            self.cycles_lb,
            self.dram_lb,
        )
    }
}

/// A frontier snapshot handed to the progress callback after every chunk
/// that changed the kept set.
#[derive(Debug)]
pub struct StagedProgress<'a, R> {
    /// Candidates decided so far (pruned or evaluated).
    pub processed: usize,
    /// Candidates discarded by the bound stage so far.
    pub pruned: u64,
    /// The kept entries, in the objective's canonical order.
    pub frontier: &'a [ArchSweepEntry<R>],
}

/// The result of a staged sweep: the final frontier plus the funnel counts.
#[derive(Debug)]
pub struct StagedOutcome<R> {
    /// The kept entries — bit-identical to
    /// [`rank_entries`] over the unpruned full sweep.
    pub entries: Vec<ArchSweepEntry<R>>,
    /// Distinct candidates after deduplication.
    pub unique: usize,
    /// Candidates discarded by the bound stage without planning.
    pub pruned: u64,
    /// Candidates that went through plan + simulate.
    pub evaluated: u64,
}

/// Candidates per evaluation chunk: large enough to keep the thread pool
/// fed by [`sweep_archs`], small enough that the frontier tightens (and
/// prunes more) many times across a big sweep.
const STAGE_CHUNK: usize = 512;

/// The incremental kept set. Scalar objectives hold at most `top_k` entries
/// sorted by [`objective_key`]; `Pareto` holds the full non-dominated set
/// (truncated only on extraction).
struct Frontier<R> {
    objective: Objective,
    top_k: usize,
    entries: Vec<ArchSweepEntry<R>>,
}

impl<R: SweepCost> Frontier<R> {
    fn new(objective: Objective, top_k: usize) -> Self {
        Frontier {
            objective,
            top_k,
            entries: Vec::new(),
        }
    }

    /// Whether `bound` proves the candidate cannot enter the final kept
    /// set. Lossless by admissibility: every comparison is strict, against
    /// costs the candidate provably cannot beat.
    fn can_prune(&self, bound: &CandidateBound) -> bool {
        if self.top_k == 0 {
            return true;
        }
        match self.objective {
            Objective::Pareto => {
                // An infeasible candidate is never on a Pareto frontier; a
                // feasible one is excluded only if some kept entry beats its
                // floors strictly on every cost (dominance is transitive, so
                // the verdict survives later frontier evolution).
                if bound.provably_infeasible {
                    return true;
                }
                let b = (bound.cycles_lb, bound.dram_lb, bound.energy_lb_bits);
                self.entries
                    .iter()
                    .filter_map(cost_triple)
                    .any(|t| t.0 < b.0 && t.1 < b.1 && t.2 < b.2)
            }
            objective => {
                if self.entries.len() < self.top_k {
                    return false;
                }
                let worst = self.entries.last().expect("non-empty at capacity");
                let worst_key = objective_key(worst, objective);
                if worst_key.0 != 0 {
                    // The worst kept entry is infeasible: any candidate
                    // (even a provably-infeasible one, which would rank by
                    // architecture key) could still displace it.
                    return false;
                }
                bound.provably_infeasible || bound.primary_lb(objective) > worst_key.1
            }
        }
    }

    /// Merges one evaluated entry; returns whether the kept set changed.
    fn insert(&mut self, entry: ArchSweepEntry<R>) -> bool {
        if self.top_k == 0 {
            return false;
        }
        match self.objective {
            Objective::Pareto => {
                let Some(t) = cost_triple(&entry) else {
                    return false;
                };
                if self
                    .entries
                    .iter()
                    .filter_map(cost_triple)
                    .any(|kept| dominates(kept, t))
                {
                    return false;
                }
                self.entries
                    .retain(|kept| !cost_triple(kept).is_some_and(|k| dominates(t, k)));
                let key = objective_key(&entry, Objective::Pareto);
                let at = self
                    .entries
                    .partition_point(|e| objective_key(e, Objective::Pareto) < key);
                self.entries.insert(at, entry);
                true
            }
            objective => {
                let key = objective_key(&entry, objective);
                let at = self
                    .entries
                    .partition_point(|e| objective_key(e, objective) < key);
                if self.entries.len() == self.top_k {
                    if at == self.top_k {
                        return false;
                    }
                    self.entries.pop();
                }
                self.entries.insert(at, entry);
                true
            }
        }
    }

    fn entries(&self) -> &[ArchSweepEntry<R>] {
        &self.entries
    }

    fn into_ranked(mut self) -> Vec<ArchSweepEntry<R>> {
        self.entries.truncate(self.top_k);
        self.entries
    }
}

/// The staged funnel shared by both sweep modes: order candidates by their
/// bound, prune against the frontier, evaluate survivors in chunks through
/// `eval` (which fans across threads), and merge serially — so the pruned
/// count and every frontier snapshot are deterministic for a given
/// candidate set, independent of thread scheduling.
fn staged_engine<R: SweepCost>(
    unique: Vec<ArchConfig>,
    bounds: Vec<CandidateBound>,
    objective: Objective,
    top_k: usize,
    eval: impl Fn(&[ArchConfig]) -> Vec<ArchSweepEntry<R>>,
    mut progress: impl FnMut(StagedProgress<'_, R>),
) -> StagedOutcome<R> {
    debug_assert_eq!(unique.len(), bounds.len());
    let mut order: Vec<usize> = (0..unique.len()).collect();
    order.sort_by_key(|&i| (bounds[i].order_key(objective), unique[i].cache_key()));

    let mut frontier = Frontier::new(objective, top_k);
    let mut pruned = 0u64;
    let mut evaluated = 0u64;
    let mut processed = 0usize;
    for chunk in order.chunks(STAGE_CHUNK) {
        let mut survivors = Vec::with_capacity(chunk.len());
        for &i in chunk {
            if frontier.can_prune(&bounds[i]) {
                pruned += 1;
            } else {
                survivors.push(i);
            }
        }
        let archs: Vec<ArchConfig> = survivors.iter().map(|&i| unique[i]).collect();
        evaluated += archs.len() as u64;
        let mut by_key: HashMap<ArchCacheKey, ArchSweepEntry<R>> = eval(&archs)
            .into_iter()
            .map(|e| (e.arch.cache_key(), e))
            .collect();
        let mut changed = false;
        for &i in &survivors {
            let entry = by_key
                .remove(&unique[i].cache_key())
                .expect("one result per survivor");
            changed |= frontier.insert(entry);
        }
        processed += chunk.len();
        if changed {
            progress(StagedProgress {
                processed,
                pruned,
                frontier: frontier.entries(),
            });
        }
    }
    StagedOutcome {
        unique: unique.len(),
        pruned,
        evaluated,
        entries: frontier.into_ranked(),
    }
}

/// Staged layer sweep: [`sweep_archs`] semantics with bound-stage pruning
/// and an incremental top-K frontier.
///
/// The returned entries are **bit-identical** to
/// `rank_entries(sweep_archs(name, layer, candidates), objective, top_k)` —
/// pruning is lossless. `progress` fires after every evaluation chunk that
/// changed the frontier (streaming delivery hooks in here).
pub fn staged_sweep_archs(
    name: &str,
    layer: &ConvLayer,
    candidates: &[ArchConfig],
    objective: Objective,
    top_k: usize,
    progress: impl FnMut(StagedProgress<'_, LayerReport>),
) -> StagedOutcome<LayerReport> {
    let unique = dedup_candidates(candidates);
    let bounds = candidate_bounds(std::slice::from_ref(layer), &unique);
    staged_engine(
        unique,
        bounds,
        objective,
        top_k,
        |archs| sweep_archs(name, layer, archs),
        progress,
    )
}

/// Staged network sweep: [`sweep_archs_network`] semantics with bound-stage
/// pruning and an incremental top-K frontier. Per-layer floors are summed,
/// mirroring how [`NetworkReport`] totals sum per-layer costs.
///
/// The returned entries are **bit-identical** to
/// `rank_entries(sweep_archs_network(network, candidates), objective,
/// top_k)`.
pub fn staged_sweep_archs_network(
    network: &Network,
    candidates: &[ArchConfig],
    objective: Objective,
    top_k: usize,
    progress: impl FnMut(StagedProgress<'_, NetworkReport>),
) -> StagedOutcome<NetworkReport> {
    let unique = dedup_candidates(candidates);
    let layers: Vec<ConvLayer> = network.conv_layers().map(|l| l.layer).collect();
    let bounds = candidate_bounds(&layers, &unique);
    staged_engine(
        unique,
        bounds,
        objective,
        top_k,
        |archs| sweep_archs_network(network, archs),
        progress,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    fn table1() -> Vec<ArchConfig> {
        (1..=5).map(ArchConfig::implementation).collect()
    }

    #[test]
    fn sweep_matches_serial_oracle() {
        let archs = table1();
        let sweep = sweep_archs("layer", &layer(), &archs);
        assert_eq!(sweep.len(), 5);
        for entry in &sweep {
            let oracle = Accelerator::new(entry.arch).analyze_layer("layer", &layer());
            match (&entry.outcome, &oracle) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.tiling, b.tiling);
                    assert_eq!(a.stats, b.stats);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("sweep {a:?} disagrees with oracle {b:?}"),
            }
        }
    }

    #[test]
    fn sweep_is_enumeration_order_independent_and_dedups() {
        let forward = table1();
        let mut shuffled = table1();
        shuffled.reverse();
        shuffled.extend(table1()); // duplicates of every candidate
        let a = sweep_archs("layer", &layer(), &forward);
        let b = sweep_archs("layer", &layer(), &shuffled);
        assert_eq!(a.len(), 5, "duplicates must collapse");
        assert_eq!(b.len(), 5, "duplicates must collapse");
        let keys_a: Vec<_> = a.iter().map(ArchSweepEntry::sort_key).collect();
        let keys_b: Vec<_> = b.iter().map(ArchSweepEntry::sort_key).collect();
        assert_eq!(keys_a, keys_b);
        assert!(keys_a.windows(2).all(|w| w[0] < w[1]), "strict total order");
    }

    #[test]
    fn invalid_candidates_surface_as_typed_errors() {
        let mut bad = ArchConfig::example();
        bad.group_rows = 7;
        let sweep = sweep_archs("layer", &layer(), &[bad, ArchConfig::example()]);
        assert_eq!(sweep.len(), 2);
        // Canonical order puts the feasible candidate first.
        assert!(sweep[0].outcome.is_ok());
        assert!(
            matches!(&sweep[1].outcome, Err(SimError::InvalidArch(m)) if m.contains("group rows")),
            "{:?}",
            sweep[1].outcome
        );
    }

    #[test]
    fn network_sweep_matches_serial_analyze_network_oracle() {
        let net = workloads::resnet_bottleneck(1, 14, 64, 16);
        let archs = table1();
        let sweep = sweep_archs_network(&net, &archs);
        assert_eq!(sweep.len(), 5);
        for entry in &sweep {
            let oracle = Accelerator::new(entry.arch).analyze_network(&net);
            match (&entry.outcome, &oracle) {
                (Ok(a), Ok(b)) => {
                    // Bit identity at the wire level: the serialized reports
                    // must match byte for byte.
                    assert_eq!(
                        serde_json::to_string_pretty(a).unwrap(),
                        serde_json::to_string_pretty(b).unwrap()
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("sweep {a:?} disagrees with oracle {b:?}"),
            }
        }
    }

    #[test]
    fn network_sweep_dedups_and_orders_canonically() {
        let net = workloads::resnet_bottleneck(1, 14, 64, 16);
        let mut shuffled = table1();
        shuffled.reverse();
        shuffled.extend(table1());
        let a = sweep_archs_network(&net, &table1());
        let b = sweep_archs_network(&net, &shuffled);
        assert_eq!(a.len(), 5, "duplicates must collapse");
        let keys_a: Vec<_> = a.iter().map(ArchSweepEntry::sort_key).collect();
        let keys_b: Vec<_> = b.iter().map(ArchSweepEntry::sort_key).collect();
        assert_eq!(keys_a, keys_b);
        assert!(keys_a.windows(2).all(|w| w[0] < w[1]), "strict total order");
    }

    #[test]
    fn network_sweep_surfaces_first_layer_error_in_layer_order() {
        // An architecture whose IGBuf cannot hold even one sliding window of
        // the bottleneck's 3×3 layer fails exactly as analyze_network fails.
        let net = workloads::resnet_bottleneck(1, 14, 64, 16);
        let mut tiny = ArchConfig::implementation(1);
        tiny.igbuf_entries = 1;
        let sweep = sweep_archs_network(&net, &[tiny]);
        assert_eq!(sweep.len(), 1);
        let oracle = Accelerator::new(tiny).analyze_network(&net);
        match (&sweep[0].outcome, &oracle) {
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("expected identical errors, got {a:?} vs {b:?}"),
        }
    }
}
