//! Architecture design-space sweeps — the custom-design "what if" engine.
//!
//! The paper fixes five concrete implementations (Table I), but its
//! analytical model ranks *any* communication-lower-bound-driven design
//! point. Two entry points make that executable:
//!
//! * [`sweep_archs`] evaluates one **layer** on a capped list of candidate
//!   [`ArchConfig`]s through the full plan → simulate → bound → energy
//!   pipeline, fanning candidates across threads (`rayon::par_map`);
//! * [`sweep_archs_network`] evaluates a whole **network** per candidate,
//!   fanning the flat `(candidate × layer)` unit list across threads so an
//!   expensive layer of one candidate never serializes behind another
//!   candidate's cheap layers.
//!
//! Both amortize planning through the process-wide `(layer, arch)` plan
//! cache — a warm re-sweep is cache hits plus cheap class-based simulation,
//! and layers that repeat inside a network (VGG-16 has several identical
//! geometries) are planned once per candidate.
//!
//! Results are **enumeration-order independent**: duplicate configurations
//! are collapsed (by [`ArchConfig::cache_key`]) and the output is sorted by
//! a canonical total order — feasible candidates first, by
//! `(total cycles, DRAM words, architecture key)`; infeasible ones after,
//! by architecture key — so shuffling the request's candidate list cannot
//! change a single output byte. Per-candidate results are exactly what
//! [`Accelerator::analyze_layer`] / [`Accelerator::analyze_network`]
//! produce, which is what pins each sweep bit-identical to a serial
//! per-candidate oracle loop. The dedup, the sort key and the entry shape
//! are shared between the two modes, so they cannot drift.

use accel_sim::{ArchCacheKey, ArchConfig, SimError};
use conv_model::workloads::{NamedLayer, Network};
use conv_model::ConvLayer;

use crate::accelerator::Accelerator;
use crate::report::{LayerReport, NetworkReport};

/// What a sweep outcome must expose for the canonical result ordering:
/// the headline cycle count and the DRAM traffic used as tie-breakers.
pub trait SweepCost {
    /// Total execution cycles (compute + unhidden stalls).
    fn sweep_cycles(&self) -> u64;
    /// Total DRAM words moved.
    fn sweep_dram_words(&self) -> u64;
}

impl SweepCost for LayerReport {
    fn sweep_cycles(&self) -> u64 {
        self.stats.total_cycles()
    }

    fn sweep_dram_words(&self) -> u64 {
        self.stats.dram.total_words()
    }
}

impl SweepCost for NetworkReport {
    fn sweep_cycles(&self) -> u64 {
        self.totals.total_cycles()
    }

    fn sweep_dram_words(&self) -> u64 {
        self.totals.dram.total_words()
    }
}

/// One candidate's outcome in an architecture sweep. `R` is the report a
/// feasible candidate produces: [`LayerReport`] for layer sweeps
/// ([`sweep_archs`]), [`NetworkReport`] for network sweeps
/// ([`sweep_archs_network`]).
#[derive(Debug, Clone)]
pub struct ArchSweepEntry<R = LayerReport> {
    /// The evaluated configuration.
    pub arch: ArchConfig,
    /// The full report, or why the candidate cannot run the workload
    /// (e.g. a single sliding window already overflows its IGBuf).
    pub outcome: Result<R, SimError>,
}

impl<R: SweepCost> ArchSweepEntry<R> {
    /// The canonical sort key: feasible before infeasible, then fewest
    /// total cycles, then least DRAM traffic, then the architecture's own
    /// total order. A total order over distinct candidates, so sweep output
    /// never depends on enumeration order.
    #[must_use]
    pub fn sort_key(&self) -> (u8, u64, u64, ArchCacheKey) {
        match &self.outcome {
            Ok(report) => (
                0,
                report.sweep_cycles(),
                report.sweep_dram_words(),
                self.arch.cache_key(),
            ),
            Err(_) => (1, 0, 0, self.arch.cache_key()),
        }
    }
}

/// Collapses exact duplicates (same [`ArchConfig::cache_key`]), keeping the
/// first occurrence of each — shared by both sweep modes so "evaluated
/// once" means the same thing everywhere.
fn dedup_candidates(candidates: &[ArchConfig]) -> Vec<ArchConfig> {
    let mut unique: Vec<ArchConfig> = Vec::with_capacity(candidates.len());
    let mut seen: std::collections::HashSet<ArchCacheKey> =
        std::collections::HashSet::with_capacity(candidates.len());
    for arch in candidates {
        if seen.insert(arch.cache_key()) {
            unique.push(*arch);
        }
    }
    unique
}

/// Pairs each candidate with its outcome and applies the canonical order —
/// the shared tail of both sweep modes.
fn canonical_entries<R: SweepCost>(
    archs: Vec<ArchConfig>,
    outcomes: Vec<Result<R, SimError>>,
) -> Vec<ArchSweepEntry<R>> {
    debug_assert_eq!(archs.len(), outcomes.len());
    let mut entries: Vec<ArchSweepEntry<R>> = archs
        .into_iter()
        .zip(outcomes)
        .map(|(arch, outcome)| ArchSweepEntry { arch, outcome })
        .collect();
    entries.sort_by_key(ArchSweepEntry::sort_key);
    entries
}

/// Evaluates `layer` on every distinct candidate architecture, in parallel,
/// returning canonically-ordered per-candidate results.
///
/// Candidates must already satisfy [`ArchConfig::validate`]; invalid ones
/// are *not* filtered here — they surface as
/// [`SimError::InvalidArch`] outcomes, exactly as a direct
/// [`Accelerator::analyze_layer`] call would report them. Exact duplicates
/// (same [`ArchConfig::cache_key`]) are evaluated once.
///
/// `name` is the layer name echoed in each report (the service uses
/// `"layer"`, matching `/v1/plan`).
#[must_use]
pub fn sweep_archs(
    name: &str,
    layer: &ConvLayer,
    candidates: &[ArchConfig],
) -> Vec<ArchSweepEntry> {
    let unique = dedup_candidates(candidates);
    let outcomes = rayon::par_map(&unique, |arch| {
        Accelerator::new(*arch).analyze_layer(name, layer)
    });
    canonical_entries(unique, outcomes)
}

/// Evaluates `network` on every distinct candidate architecture, returning
/// canonically-ordered per-candidate [`NetworkReport`]s.
///
/// The work is fanned as flat `(candidate × layer)` units across the
/// thread pool (not per-candidate with a nested per-layer fan), so load
/// balances across candidates whose layers differ wildly in cost; planning
/// is amortized by the process-wide `(layer, arch)` plan cache, so layer
/// geometries that repeat within the network are planned once per
/// candidate. Per-candidate reports are reassembled in network layer order
/// and aggregated through the same [`NetworkReport::from_layer_reports`]
/// constructor [`Accelerator::analyze_network`] uses
/// (first-error-in-layer-order semantics included), so each entry is
/// structurally bit-identical to a serial per-candidate `analyze_network`
/// oracle call.
#[must_use]
pub fn sweep_archs_network(
    network: &Network,
    candidates: &[ArchConfig],
) -> Vec<ArchSweepEntry<NetworkReport>> {
    let unique = dedup_candidates(candidates);
    let layers: Vec<&NamedLayer> = network.conv_layers().collect();
    let units: Vec<(usize, usize)> = (0..unique.len())
        .flat_map(|c| (0..layers.len()).map(move |l| (c, l)))
        .collect();
    let results = rayon::par_map(&units, |&(c, l)| {
        Accelerator::new(unique[c]).analyze_layer(&layers[l].name, &layers[l].layer)
    });
    let mut results = results.into_iter();
    let outcomes: Vec<Result<NetworkReport, SimError>> = unique
        .iter()
        .map(|arch| {
            // This candidate's slice of the flat unit list, in layer order.
            let mut reports = Vec::with_capacity(layers.len());
            let mut first_error: Option<SimError> = None;
            for _ in 0..layers.len() {
                match results.next().expect("one result per (candidate, layer)") {
                    Ok(report) => reports.push(report),
                    Err(e) => first_error = first_error.or(Some(e)),
                }
            }
            if let Some(e) = first_error {
                return Err(e);
            }
            Ok(NetworkReport::from_layer_reports(
                network.name(),
                reports,
                arch.core_freq_hz,
            ))
        })
        .collect();
    canonical_entries(unique, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    fn table1() -> Vec<ArchConfig> {
        (1..=5).map(ArchConfig::implementation).collect()
    }

    #[test]
    fn sweep_matches_serial_oracle() {
        let archs = table1();
        let sweep = sweep_archs("layer", &layer(), &archs);
        assert_eq!(sweep.len(), 5);
        for entry in &sweep {
            let oracle = Accelerator::new(entry.arch).analyze_layer("layer", &layer());
            match (&entry.outcome, &oracle) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.tiling, b.tiling);
                    assert_eq!(a.stats, b.stats);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("sweep {a:?} disagrees with oracle {b:?}"),
            }
        }
    }

    #[test]
    fn sweep_is_enumeration_order_independent_and_dedups() {
        let forward = table1();
        let mut shuffled = table1();
        shuffled.reverse();
        shuffled.extend(table1()); // duplicates of every candidate
        let a = sweep_archs("layer", &layer(), &forward);
        let b = sweep_archs("layer", &layer(), &shuffled);
        assert_eq!(a.len(), 5, "duplicates must collapse");
        assert_eq!(b.len(), 5, "duplicates must collapse");
        let keys_a: Vec<_> = a.iter().map(ArchSweepEntry::sort_key).collect();
        let keys_b: Vec<_> = b.iter().map(ArchSweepEntry::sort_key).collect();
        assert_eq!(keys_a, keys_b);
        assert!(keys_a.windows(2).all(|w| w[0] < w[1]), "strict total order");
    }

    #[test]
    fn invalid_candidates_surface_as_typed_errors() {
        let mut bad = ArchConfig::example();
        bad.group_rows = 7;
        let sweep = sweep_archs("layer", &layer(), &[bad, ArchConfig::example()]);
        assert_eq!(sweep.len(), 2);
        // Canonical order puts the feasible candidate first.
        assert!(sweep[0].outcome.is_ok());
        assert!(
            matches!(&sweep[1].outcome, Err(SimError::InvalidArch(m)) if m.contains("group rows")),
            "{:?}",
            sweep[1].outcome
        );
    }

    #[test]
    fn network_sweep_matches_serial_analyze_network_oracle() {
        let net = workloads::resnet_bottleneck(1, 14, 64, 16);
        let archs = table1();
        let sweep = sweep_archs_network(&net, &archs);
        assert_eq!(sweep.len(), 5);
        for entry in &sweep {
            let oracle = Accelerator::new(entry.arch).analyze_network(&net);
            match (&entry.outcome, &oracle) {
                (Ok(a), Ok(b)) => {
                    // Bit identity at the wire level: the serialized reports
                    // must match byte for byte.
                    assert_eq!(
                        serde_json::to_string_pretty(a).unwrap(),
                        serde_json::to_string_pretty(b).unwrap()
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("sweep {a:?} disagrees with oracle {b:?}"),
            }
        }
    }

    #[test]
    fn network_sweep_dedups_and_orders_canonically() {
        let net = workloads::resnet_bottleneck(1, 14, 64, 16);
        let mut shuffled = table1();
        shuffled.reverse();
        shuffled.extend(table1());
        let a = sweep_archs_network(&net, &table1());
        let b = sweep_archs_network(&net, &shuffled);
        assert_eq!(a.len(), 5, "duplicates must collapse");
        let keys_a: Vec<_> = a.iter().map(ArchSweepEntry::sort_key).collect();
        let keys_b: Vec<_> = b.iter().map(ArchSweepEntry::sort_key).collect();
        assert_eq!(keys_a, keys_b);
        assert!(keys_a.windows(2).all(|w| w[0] < w[1]), "strict total order");
    }

    #[test]
    fn network_sweep_surfaces_first_layer_error_in_layer_order() {
        // An architecture whose IGBuf cannot hold even one sliding window of
        // the bottleneck's 3×3 layer fails exactly as analyze_network fails.
        let net = workloads::resnet_bottleneck(1, 14, 64, 16);
        let mut tiny = ArchConfig::implementation(1);
        tiny.igbuf_entries = 1;
        let sweep = sweep_archs_network(&net, &[tiny]);
        assert_eq!(sweep.len(), 1);
        let oracle = Accelerator::new(tiny).analyze_network(&net);
        match (&sweep[0].outcome, &oracle) {
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("expected identical errors, got {a:?} vs {b:?}"),
        }
    }
}
