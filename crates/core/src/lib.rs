//! The communication-optimal CNN accelerator library — the paper's primary
//! contribution as a reusable API.
//!
//! This crate ties the substrates together into the pipeline every
//! experiment uses:
//!
//! 1. [`planner`] — choose the DRAM-minimal tiling of the paper's dataflow
//!    that is *structurally feasible* on a concrete implementation
//!    (LReg/WGBuf/IGBuf/mapping constraints of Section V);
//! 2. [`accel_sim::simulate`] — count every access and cycle;
//! 3. [`comm_bound`] — evaluate the Theorem 2 / Eq. 15 bounds at the
//!    implementation's effective on-chip memory;
//! 4. [`energy`] — compose the Table II energy breakdown of Fig. 18.
//!
//! # Quickstart
//!
//! ```
//! use clb_core::Accelerator;
//! use conv_model::workloads;
//!
//! // Table I implementation 1: 256 PEs, 64 KB Psums, 66.5 KB effective.
//! let acc = Accelerator::implementation(1);
//! let net = workloads::resnet_bottleneck(1, 14, 64, 16);
//! let report = acc.analyze_network(&net).unwrap();
//! assert!(report.totals.dram.total_words() as f64
//!     >= report.layers.iter().map(|l| l.bounds.dram_words).sum::<f64>() * 0.9);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

/// Caps on user-supplied networks, the model-level analogue of
/// [`accel_sim::caps`] for architectures: any boundary that accepts a full
/// layer list (the service's custom-network requests, network-mode DSE
/// sweeps) checks these *before* constructing a single layer, accumulating
/// the MAC total in `u128` so the check itself cannot overflow.
pub mod network_caps {
    /// Max layers one network may declare. Generous: the deepest preset
    /// (ResNet-50) has 53.
    pub const MAX_NETWORK_LAYERS: usize = 256;
    /// Max total MACs over all layers (batch included), ~1.4×10¹⁴.
    /// Generous: VGG-16 at the max batch of 64 is ~9.8×10¹¹ — two orders
    /// of magnitude of headroom — while staying far enough below
    /// `u64::MAX` that every accepted network's per-layer and total MAC
    /// counts are exactly representable in the `u64` report fields.
    pub const MAX_NETWORK_MACS: u128 = 1 << 47;
}

mod accelerator;
pub mod design;
pub mod dse;
pub mod energy;
pub mod planner;
mod report;

pub use accelerator::Accelerator;
pub use design::{derive_config, optimal_psum_fraction};
pub use dse::{
    candidate_bounds, objective_key, rank_entries, staged_sweep_archs, staged_sweep_archs_network,
    sweep_archs, sweep_archs_network, ArchSweepEntry, CandidateBound, Objective, StagedOutcome,
    StagedProgress, SweepCost,
};
pub use planner::{
    clear_plan_cache, plan_cache_stats, plan_for_arch, set_plan_cache_capacity, tiling_feasible,
    DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use report::{LayerReport, NetworkReport};

// Re-export the pieces callers need to use the API without importing every
// substrate crate.
pub use accel_sim::{ArchConfig, DramConfig, SimError, SimStats};
pub use comm_bound::{BoundSummary, OnChipMemory};
pub use dataflow::{DataflowKind, DramTraffic, Tiling};
pub use energy_model::{EnergyBreakdown, EnergyParams};
