//! The design methodology of Section V, as an executable API.
//!
//! The paper sizes its example architecture from the theory rather than by
//! habit: given a Psum budget `S ≈ 32768` words and the optimality
//! conditions `b·x·y ≈ R·z`, `b·x·y·z ≈ S`, the maximum `z` occurs at
//! `R = 1` (`z ≈ √S ≈ 181` → WGBuf 256 entries) and the maximum `b·x·y` at
//! the largest common `R = 9` (`b·x·y ≈ 543`, plus halo → IGBuf 1024
//! entries). [`derive_config`] reproduces that arithmetic for any PE array
//! and Psum budget, and [`optimal_psum_fraction`] numerically re-derives
//! the "assign most of the memory to Psums" conclusion.

use accel_sim::{ArchConfig, DramConfig};
use comm_bound::OnChipMemory;
use conv_model::ConvLayer;
use dataflow::search_ours;

fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Derives an accelerator configuration from first principles, following
/// Section V's sizing methodology.
///
/// * `pe_rows × pe_cols` — the PE array;
/// * `psum_words` — the Psum budget `S` (LRegs), split evenly across PEs;
/// * `r_max` — the largest sliding-window reuse the design should handle at
///   full efficiency (9 for 3×3 stride-1 kernels).
///
/// The WGBuf is sized for the `R = 1` corner (`z ≈ √S`), the IGBuf for the
/// `R = r_max` corner (`b·x·y ≈ √(S·r_max)` plus a ~40% halo/flexibility
/// margin, matching the paper's "we leave some extra entries"), both
/// rounded up to powers of two.
///
/// # Panics
///
/// Panics if any argument is zero.
#[must_use]
pub fn derive_config(pe_rows: usize, pe_cols: usize, psum_words: usize, r_max: f64) -> ArchConfig {
    assert!(pe_rows > 0 && pe_cols > 0 && psum_words > 0 && r_max >= 1.0);
    let s = psum_words as f64;
    let z_max = s.sqrt(); // R = 1 corner
    let u_max = (s * r_max).sqrt(); // R = r_max corner
    let wgbuf = next_pow2(z_max.ceil() as usize * 14 / 10);
    let igbuf = next_pow2(u_max.ceil() as usize * 14 / 10);
    let lreg_per_pe = psum_words.div_ceil(pe_rows * pe_cols);

    // GReg capacity: input segments (one per PE row, duplicated per group
    // column) + weight rows (one per group row), as in Fig. 11.
    let group = 4usize;
    let seg_entries = 64usize;
    let greg_words = pe_rows * seg_entries * (pe_cols / group.min(pe_cols)).max(1)
        + (pe_rows / group.min(pe_rows)).max(1) * wgbuf;

    ArchConfig {
        pe_rows,
        pe_cols,
        group_rows: group.min(pe_rows),
        group_cols: group.min(pe_cols),
        lreg_entries_per_pe: next_pow2(lreg_per_pe),
        igbuf_entries: igbuf,
        wgbuf_entries: wgbuf,
        greg_bytes: greg_words * 2,
        greg_segment_entries: seg_entries,
        core_freq_hz: 500e6,
        dram: DramConfig::default(),
    }
}

/// Numerically finds the fraction of a fixed on-chip budget that should be
/// devoted to Psums (output blocks) rather than input/weight buffering, by
/// sweeping the fraction and measuring the optimal dataflow's traffic.
///
/// Returns `(best_fraction, traffic_words_at_best)`. The paper's analytic
/// answer is "almost all of it" (Section IV-C: `b·x·y·z ≈ S`); this makes
/// that claim checkable.
#[must_use]
pub fn optimal_psum_fraction(layer: &ConvLayer, total_words: f64) -> (f64, u64) {
    let mut best = (0.0, u64::MAX);
    for step in 1..=19 {
        let frac = step as f64 / 20.0;
        let mem = OnChipMemory::from_words(total_words * frac);
        let q = search_ours(layer, mem).traffic.total_words();
        if q < best.1 {
            best = (frac, q);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    #[test]
    fn derive_reproduces_the_papers_example() {
        // Section V example: 16x16 PEs, 64 KB Psums (32768 words), R_max 9.
        let cfg = derive_config(16, 16, 32768, 9.0);
        assert_eq!(cfg.wgbuf_entries, 256, "z_max ~ 181 -> 256 entries");
        assert_eq!(cfg.igbuf_entries, 1024, "u_max ~ 543 -> 1024 entries");
        assert_eq!(cfg.lreg_entries_per_pe, 128);
        cfg.validate().unwrap();
        // The derived GBuf sizes match Table I implementations 1-3.
        let paper = ArchConfig::implementation(1);
        assert_eq!(cfg.gbuf_bytes(), paper.gbuf_bytes());
        assert_eq!(cfg.lreg_total_entries(), paper.lreg_total_entries());
    }

    #[test]
    fn derive_scales_with_psum_budget() {
        let small = derive_config(16, 16, 8192, 9.0);
        let large = derive_config(16, 16, 131072, 9.0);
        assert!(small.wgbuf_entries < large.wgbuf_entries);
        assert!(small.igbuf_entries < large.igbuf_entries);
        small.validate().unwrap();
        large.validate().unwrap();
    }

    #[test]
    fn derived_configs_run_the_workload() {
        let cfg = derive_config(8, 8, 8192, 9.0);
        let layer = workloads::vgg16(1).layer(4).unwrap().layer;
        let acc = crate::Accelerator::new(cfg);
        let report = acc.analyze_layer("conv3_1", &layer).unwrap();
        assert_eq!(report.stats.useful_macs, layer.macs());
    }

    #[test]
    fn psums_deserve_most_of_the_memory() {
        // Section IV-C's conclusion, re-derived numerically: the best Psum
        // share of a 66.5 KB budget is at least 75%.
        let layer = workloads::vgg16(3).layer(4).unwrap().layer;
        let (frac, _) = optimal_psum_fraction(&layer, 34048.0);
        assert!(frac >= 0.75, "optimal Psum fraction {frac}");
    }
}
