//! Tiling planner for a concrete accelerator implementation.
//!
//! The abstract dataflow planner ([`dataflow::plan_tiling`]) only respects
//! the total effective memory `S`. A real implementation adds *structural*
//! constraints (Section V): the Psum block must fit the LReg files through a
//! feasible PE mapping, the per-channel weight row must fit the WGBuf, and
//! the per-channel input slice (halo included) must fit the IGBuf. The
//! paper observes this fixed splitting costs only 3–4% extra DRAM traffic
//! (Fig. 14); the workspace tests pin that observation.
//!
//! The sweep *is* the dataflow crate's search engine
//! ([`search_ours_with`]), instantiated with this module's feasibility
//! predicates: traffic is evaluated through precomputed [`LayerTables`],
//! the `(b, z)` outer product fans out across threads, the IGBuf/WGBuf
//! constraints (monotone in their parameters) break candidate loops early,
//! and the expensive `map_block` feasibility check only runs for candidates
//! that could still beat the best feasible tiling found so far. Sharing one
//! orchestration keeps the prune and tie-break semantics of the planner and
//! the abstract search from drifting apart.
//!
//! Results are memoized process-wide in a bounded LRU keyed by
//! `(layer shape, architecture)` — the same machinery as the abstract
//! search's memo cache — so long-running embedders (the analysis service's
//! `/v1/plan` and `/v1/network`) replan a given layer × implementation
//! once, not per cold request; concurrent identical misses coalesce onto
//! one sweep. [`plan_cache_stats`], [`set_plan_cache_capacity`] and
//! [`clear_plan_cache`] expose, bound and reset the cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use accel_sim::mapping::{map_block, Block};
use accel_sim::{ArchCacheKey, ArchConfig};
use comm_bound::OnChipMemory;
use conv_model::ConvLayer;
use dataflow::engine::search_ours_with;
use dataflow::{paper_tiling, FlightMap, LayerTables, LruCache, Tiling};

/// True when `tiling` satisfies every structural constraint of `arch`.
#[must_use]
pub fn tiling_feasible(layer: &ConvLayer, tiling: &Tiling, arch: &ArchConfig) -> bool {
    if tiling.z > arch.wgbuf_entries {
        return false;
    }
    let (xh, yh) = layer.input_footprint(tiling.x, tiling.y);
    if tiling.b * xh * yh > arch.igbuf_entries {
        return false;
    }
    // If the full-size block maps, every (smaller) boundary block maps too.
    let block = Block {
        i0: 0,
        b: tiling.b,
        z0: 0,
        z: tiling.z,
        y0: 0,
        y: tiling.y,
        x0: 0,
        x: tiling.x,
    };
    map_block(arch, layer, &block).is_ok()
}

/// Memo-cache key: the layer shape plus the full architecture identity.
/// [`ArchCacheKey`] is built next to `ArchConfig` by exhaustive
/// destructuring, so a new `ArchConfig` field cannot silently bypass this
/// cache. The DRAM model does not influence planning, but `validate` reads
/// the core frequency, so the whole configuration is keyed for safety —
/// real embedders run a handful of fixed architectures, so the hit rate is
/// unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    layer: ConvLayer,
    arch: ArchCacheKey,
}

/// Default bound on the planner memo cache. Entries are a few hundred bytes
/// (a key plus a `Result<Tiling, SimError>`), and real workloads plan at
/// most a few hundred distinct layer × architecture pairs.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 4096;

type PlanResult = Result<Tiling, accel_sim::SimError>;

static PLAN_CACHE: OnceLock<Mutex<LruCache<PlanKey, PlanResult>>> = OnceLock::new();
static PLAN_FLIGHTS: OnceLock<FlightMap<PlanKey, PlanResult>> = OnceLock::new();
static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_MISSES: AtomicU64 = AtomicU64::new(0);

fn plan_cache() -> &'static Mutex<LruCache<PlanKey, PlanResult>> {
    PLAN_CACHE.get_or_init(|| Mutex::new(LruCache::new(DEFAULT_PLAN_CACHE_CAPACITY)))
}

fn plan_flights() -> &'static FlightMap<PlanKey, PlanResult> {
    PLAN_FLIGHTS.get_or_init(FlightMap::new)
}

/// Current planner memo-cache statistics — the same [`dataflow::CacheStats`]
/// shape the tiling-search cache reports, counting plans instead of
/// searches.
#[must_use]
pub fn plan_cache_stats() -> dataflow::CacheStats {
    let (entries, evictions, capacity) = plan_cache()
        .lock()
        .map(|c| (c.len(), c.evictions(), c.capacity()))
        .unwrap_or((0, 0, 0));
    dataflow::CacheStats {
        hits: PLAN_HITS.load(Ordering::Relaxed),
        misses: PLAN_MISSES.load(Ordering::Relaxed),
        coalesced: plan_flights().coalesced(),
        evictions,
        entries,
        capacity,
    }
}

/// Empties the planner memo cache and resets its counters (benchmarks use
/// this for cold timings). The LRU capacity is kept.
pub fn clear_plan_cache() {
    if let Ok(mut c) = plan_cache().lock() {
        c.clear();
    }
    plan_flights().reset_stats();
    PLAN_HITS.store(0, Ordering::Relaxed);
    PLAN_MISSES.store(0, Ordering::Relaxed);
}

/// Bounds the planner memo cache to `capacity` entries (clamped to ≥ 1),
/// evicting least-recently-used entries immediately if it is already over.
pub fn set_plan_cache_capacity(capacity: usize) {
    if let Ok(mut c) = plan_cache().lock() {
        c.set_capacity(capacity);
    }
}

/// Chooses the DRAM-minimal tiling of the paper's dataflow that is feasible
/// on `arch`, by exhaustive search seeded with the closed-form choice.
/// Equal-traffic tilings resolve to the smallest `(b, z, y, x)` tuple, the
/// same canonical order the dataflow search engine uses.
///
/// Results (errors included — they are deterministic) are memoized in a
/// process-wide bounded LRU keyed by `(layer shape, architecture)`, with
/// concurrent identical misses coalesced onto one sweep, so warm planning
/// is a hash lookup for any embedder.
///
/// # Errors
///
/// Returns [`accel_sim::SimError::InvalidArch`] when `arch` fails its
/// structural invariants, and other [`accel_sim::SimError`]s when no tiling
/// fits — e.g. a layer whose single sliding window (`Hk×Wk` inputs) already
/// exceeds the IGBuf or the GReg segments, such as the weight-gradient
/// convolution of a large feature map. Such layers need a different
/// blocking than the Fig. 7 dataflow provides.
pub fn plan_for_arch(layer: &ConvLayer, arch: &ArchConfig) -> Result<Tiling, accel_sim::SimError> {
    arch.validate().map_err(accel_sim::SimError::InvalidArch)?;
    let key = PlanKey {
        layer: *layer,
        arch: arch.cache_key(),
    };
    if let Ok(mut cache) = plan_cache().lock() {
        if let Some(hit) = cache.get(&key) {
            PLAN_HITS.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
    }
    let (result, _coalesced) = plan_flights().run(key, || {
        PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
        let result = plan_for_arch_uncached(layer, arch);
        if let Ok(mut cache) = plan_cache().lock() {
            cache.insert(key, result.clone());
        }
        result
    });
    result
}

/// The actual planning sweep behind [`plan_for_arch`].
fn plan_for_arch_uncached(
    layer: &ConvLayer,
    arch: &ArchConfig,
) -> Result<Tiling, accel_sim::SimError> {
    let mem = OnChipMemory::from_words(arch.effective_onchip_words() as f64);
    let tables = LayerTables::new(layer);

    // The WGBuf constraint (`z` kernel rows resident) and the IGBuf
    // constraint (`b·x'·y'` halo-included inputs resident) are monotone in
    // every tiling parameter, so they drive the engine's loop breaks; the
    // expensive PE-array mapping check is the residual predicate, run only
    // for candidates that could still beat the best feasible tiling.
    let monotone_fits = |t: &Tiling| {
        let (xh, yh) = layer.input_footprint(t.x, t.y);
        t.z <= arch.wgbuf_entries && t.b * xh * yh <= arch.igbuf_entries
    };
    let mappable = |t: &Tiling| {
        let block = Block {
            i0: 0,
            b: t.b,
            z0: 0,
            z: t.z,
            y0: 0,
            y: t.y,
            x0: 0,
            x: t.x,
        };
        map_block(arch, layer, &block).is_ok()
    };
    let best = search_ours_with(
        layer,
        &tables,
        Some(paper_tiling(layer, mem)),
        Some(arch.wgbuf_entries),
        monotone_fits,
        mappable,
    );

    match best {
        Some(c) => Ok(c.tiling),
        None => {
            // Diagnose with the unit tiling: the most informative error is
            // whatever stops the smallest possible block.
            let unit = Tiling::clamped(layer, 1, 1, 1, 1);
            let (xh, yh) = layer.input_footprint(unit.x, unit.y);
            if xh * yh > arch.igbuf_entries {
                Err(accel_sim::SimError::InputTileTooLarge {
                    needed: xh * yh,
                    capacity: arch.igbuf_entries,
                })
            } else {
                let block = Block {
                    i0: 0,
                    b: 1,
                    z0: 0,
                    z: 1,
                    y0: 0,
                    y: 1,
                    x0: 0,
                    x: 1,
                };
                match map_block(arch, layer, &block) {
                    Err(e) => Err(accel_sim::SimError::Unmappable(e)),
                    Ok(_) => Err(accel_sim::SimError::WeightTileTooLarge {
                        z: 1,
                        capacity: arch.wgbuf_entries,
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;
    use dataflow::our_dataflow_traffic;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    #[test]
    fn planned_tiling_is_feasible() {
        for i in 1..=5 {
            let arch = ArchConfig::implementation(i);
            let t = plan_for_arch(&layer(), &arch).unwrap();
            assert!(tiling_feasible(&layer(), &t, &arch), "implementation {i}");
        }
    }

    #[test]
    fn planned_tiling_simulates_cleanly() {
        let arch = ArchConfig::example();
        let t = plan_for_arch(&layer(), &arch).unwrap();
        let stats = accel_sim::simulate(&layer(), &t, &arch).unwrap();
        assert_eq!(stats.useful_macs, layer().macs());
    }

    #[test]
    fn fixed_splitting_costs_little() {
        // Paper Fig. 14: implementations produce 3-4% more DRAM access than
        // the unconstrained dataflow. Allow up to 10%.
        let l = layer();
        let arch = ArchConfig::example();
        let mem = OnChipMemory::from_words(arch.effective_onchip_words() as f64);
        let free = dataflow::search_ours(&l, mem).traffic.total_words() as f64;
        let constrained =
            our_dataflow_traffic(&l, &plan_for_arch(&l, &arch).unwrap()).total_words() as f64;
        let overhead = constrained / free - 1.0;
        assert!(
            (0.0..0.10).contains(&overhead),
            "fixed-splitting overhead should be small, got {overhead:.3}"
        );
    }

    #[test]
    fn planner_is_deterministic_across_thread_counts() {
        // The canonical tie-break makes the result independent of how many
        // workers the sweep fans out to and how they interleave.
        let l = layer();
        let arch = ArchConfig::example();
        let set_threads = |n: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .unwrap();
        };
        set_threads(1);
        let reference = plan_for_arch(&l, &arch).unwrap();
        for threads in [2, 4, 8] {
            set_threads(threads);
            assert_eq!(plan_for_arch(&l, &arch).unwrap(), reference);
        }
        set_threads(0); // restore auto for the other tests
    }

    #[test]
    fn plan_cache_hits_on_repeat_plans() {
        // Counters are process-wide and other tests plan concurrently, so
        // only delta properties are asserted, on a layer shape unique to
        // this test.
        let l = workloads::vgg16(5).layer(6).unwrap().layer;
        let arch = ArchConfig::implementation(2);
        let first = plan_for_arch(&l, &arch).unwrap();
        let hits_before = plan_cache_stats().hits;
        let second = plan_for_arch(&l, &arch).unwrap();
        assert_eq!(first, second);
        let stats = plan_cache_stats();
        assert!(stats.hits > hits_before, "warm plan must hit");
        assert!(stats.entries >= 1);
        assert!(stats.capacity >= 1);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn plan_cache_memoizes_errors_truthfully() {
        // A layer whose single window overflows the IGBuf fails the same
        // way warm as cold.
        let l = ConvLayer::square(1, 4, 4, 4, 33, 1).unwrap();
        let arch = ArchConfig::example();
        let cold = plan_for_arch(&l, &arch).unwrap_err();
        let warm = plan_for_arch(&l, &arch).unwrap_err();
        assert_eq!(cold, warm);
    }

    #[test]
    fn invalid_arch_is_not_planned() {
        let mut arch = ArchConfig::example();
        arch.group_cols = 7;
        let err = plan_for_arch(&layer(), &arch).unwrap_err();
        assert!(
            matches!(&err, accel_sim::SimError::InvalidArch(m) if m.contains("group cols 7")),
            "{err:?}"
        );
    }

    #[test]
    fn infeasible_tilings_rejected() {
        let arch = ArchConfig::example();
        let l = layer();
        // z beyond the WGBuf (256 entries).
        assert!(!tiling_feasible(
            &l,
            &Tiling {
                b: 1,
                z: 512,
                y: 4,
                x: 4
            },
            &arch
        ));
        // Input tile beyond the IGBuf: 3 × 58×58 halo ≫ 1024 entries.
        assert!(!tiling_feasible(
            &l,
            &Tiling::clamped(&l, 3, 4, 56, 56),
            &arch
        ));
    }
}
