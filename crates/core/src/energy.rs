//! Energy composition: turns simulator access counters into the Fig. 18
//! component breakdown using the Table II energy model.

use accel_sim::{ArchConfig, SimStats};
use energy_model::{reg_access_pj, sram_access_pj, table, EnergyBreakdown, EnergyParams};

/// Computes the energy breakdown of one simulated execution on `arch`.
///
/// Component mapping (Section VI-D):
/// * DRAM — every DRAM word at Table II's 427.9 pJ;
/// * GBuf — input/weight GBuf reads and writes at the capacity-scaled SRAM
///   access energy;
/// * MAC — one MAC energy per issued PE slot (lockstep execution);
/// * LReg dynamic — one LReg access per Psum write at the per-PE capacity's
///   access energy;
/// * LReg static — leakage over the whole execution (compute + stall
///   cycles), proportional to total LReg bytes;
/// * GReg — input/weight GReg writes at the segment-sized register energy;
/// * others — controller/FIFO/clock overhead as a fraction of on-chip
///   dynamic energy.
#[must_use]
pub fn energy_of(stats: &SimStats, arch: &ArchConfig, params: &EnergyParams) -> EnergyBreakdown {
    let dram_pj = stats.dram.total_words() as f64 * table::DRAM_PJ;

    let igbuf_pj = sram_access_pj((arch.igbuf_entries * 2) as f64);
    let wgbuf_pj = sram_access_pj((arch.wgbuf_entries * 2) as f64);
    let gbuf_pj = (stats.gbuf.input_writes + stats.gbuf.input_reads) as f64 * igbuf_pj
        + (stats.gbuf.weight_writes + stats.gbuf.weight_reads) as f64 * wgbuf_pj;

    let mac_pj = stats.issued_slots as f64 * table::MAC_PJ;

    let lreg_access = reg_access_pj(arch.lreg_bytes_per_pe() as f64);
    let lreg_dynamic_pj = stats.reg.lreg_writes as f64 * lreg_access;

    let lreg_static_pj = stats.total_cycles() as f64
        * (arch.lreg_total_entries() * 2) as f64
        * params.reg_static_pj_per_byte_cycle;

    // GReg segments are 64-entry (128 B) register files.
    let greg_access = reg_access_pj((arch.greg_segment_entries * 2) as f64);
    let greg_pj = (stats.reg.greg_input_writes + stats.reg.greg_weight_writes) as f64 * greg_access;

    let onchip_dynamic = gbuf_pj + mac_pj + lreg_dynamic_pj + greg_pj;
    let other_pj = onchip_dynamic * params.other_fraction;

    EnergyBreakdown {
        dram_pj,
        gbuf_pj,
        mac_pj,
        lreg_dynamic_pj,
        lreg_static_pj,
        greg_pj,
        other_pj,
    }
}

/// The Fig. 18 "Lower bound" bar for an architecture: DRAM at the Eq. 15
/// bound, one MAC and one minimal LReg write (64 B file) per MAC.
#[must_use]
pub fn energy_lower_bound_pj(macs: u64, dram_bound_words: f64) -> f64 {
    energy_model::energy_lower_bound_pj(macs, dram_bound_words, table::LREG_64B_PJ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::ConvLayer;
    use dataflow::Tiling;

    fn sim() -> (SimStats, ArchConfig) {
        let layer = ConvLayer::square(1, 8, 12, 4, 3, 1).unwrap();
        let arch = ArchConfig::example();
        let tiling = Tiling::clamped(&layer, 1, 8, 6, 6);
        (accel_sim::simulate(&layer, &tiling, &arch).unwrap(), arch)
    }

    #[test]
    fn all_components_positive() {
        let (stats, arch) = sim();
        let e = energy_of(&stats, &arch, &EnergyParams::default());
        assert!(e.dram_pj > 0.0);
        assert!(e.gbuf_pj > 0.0);
        assert!(e.mac_pj > 0.0);
        assert!(e.lreg_dynamic_pj > 0.0);
        assert!(e.lreg_static_pj > 0.0);
        assert!(e.greg_pj > 0.0);
        assert!(e.other_pj > 0.0);
    }

    #[test]
    fn mac_energy_exact() {
        let (stats, arch) = sim();
        let e = energy_of(&stats, &arch, &EnergyParams::default());
        assert!((e.mac_pj - stats.issued_slots as f64 * 4.16).abs() < 1e-6);
    }

    #[test]
    fn dram_energy_exact() {
        let (stats, arch) = sim();
        let e = energy_of(&stats, &arch, &EnergyParams::default());
        assert!((e.dram_pj - stats.dram.total_words() as f64 * 427.9).abs() < 1e-6);
    }

    #[test]
    fn zero_other_fraction_zeroes_other() {
        let (stats, arch) = sim();
        let params = EnergyParams {
            other_fraction: 0.0,
            ..EnergyParams::default()
        };
        let e = energy_of(&stats, &arch, &params);
        assert_eq!(e.other_pj, 0.0);
    }

    #[test]
    fn lower_bound_below_achieved() {
        let (stats, arch) = sim();
        let e = energy_of(&stats, &arch, &EnergyParams::default());
        let mem = accel_sim::effective_memory(&arch);
        let layer = ConvLayer::square(1, 8, 12, 4, 3, 1).unwrap();
        let bound = energy_lower_bound_pj(layer.macs(), comm_bound::dram_bound_words(&layer, mem));
        assert!(e.total_pj() > bound);
    }
}
