//! S-partition machinery (Section II-C of the paper, after Hong & Kung).
//!
//! An *S-partition* splits the internal nodes of a DAG into subsets
//! `V₁…V_h` satisfying four properties (disjoint cover, no cyclic
//! dependencies, a dominator set of ≤ S nodes per subset, an output set of
//! ≤ S nodes per subset). Theorem 1 turns the minimum subset count `P(S)`
//! into the I/O lower bound `Q ≥ S·(P(2S) − 1)`.
//!
//! This module provides a validity checker and a greedy constructor. The
//! greedy construction yields a *valid* S-partition and therefore an upper
//! bound on `P(S)`; the analytic counting bound of
//! [`lemmas`](crate::lemmas) gives the lower bound. Squeezing the two
//! validates the theory empirically on small layers.

use std::collections::HashSet;

use crate::dag::{Dag, NodeId, NodeKind};

/// A partition of a DAG's internal nodes into ordered subsets.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// The subsets, in execution order.
    pub subsets: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Number of subsets `h`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.subsets.len()
    }

    /// True when the partition has no subsets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.subsets.is_empty()
    }
}

/// The external-boundary dominator of a subset `V`: every node *outside*
/// `V` with a successor inside `V`.
///
/// Any path from a DAG input to a node of `V` crosses the boundary at an
/// external predecessor, which this set contains — a valid (if not always
/// minimal) dominator set. See also [`entry_set`]: the *internal* entry
/// nodes form another valid dominator, and Property 3 checks use the
/// smaller of the two.
#[must_use]
pub fn boundary_dominator(dag: &Dag, subset: &[NodeId]) -> Vec<NodeId> {
    let inside: HashSet<NodeId> = subset.iter().copied().collect();
    let mut dom: HashSet<NodeId> = HashSet::new();
    for &v in subset {
        for &p in dag.preds(v) {
            if !inside.contains(&p) {
                dom.insert(p);
            }
        }
    }
    let mut dom: Vec<NodeId> = dom.into_iter().collect();
    dom.sort_unstable();
    dom
}

/// The entry set of a subset `V`: the nodes of `V` that have at least one
/// predecessor outside `V`.
///
/// Every path from a DAG input to a node of `V` passes through the first
/// `V`-node it meets, whose path-predecessor lies outside `V` — so the
/// entry set is also a valid dominator set for Property 3. For a singleton
/// subset it has size 1 even when the node has many predecessors.
#[must_use]
pub fn entry_set(dag: &Dag, subset: &[NodeId]) -> Vec<NodeId> {
    let inside: HashSet<NodeId> = subset.iter().copied().collect();
    subset
        .iter()
        .copied()
        .filter(|&v| dag.preds(v).iter().any(|p| !inside.contains(p)))
        .collect()
}

/// The output set of Property 4: nodes of the subset with no successor
/// inside the subset.
#[must_use]
pub fn output_set(dag: &Dag, subset: &[NodeId]) -> Vec<NodeId> {
    let inside: HashSet<NodeId> = subset.iter().copied().collect();
    subset
        .iter()
        .copied()
        .filter(|&v| dag.succs(v).iter().all(|s| !inside.contains(s)))
        .collect()
}

/// Why a candidate partition fails to be an S-partition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionViolation {
    /// A node appears in more than one subset, or an internal node is
    /// missing from all subsets.
    NotAPartition,
    /// An input node was placed in a subset.
    ContainsInput(NodeId),
    /// Subset `i` depends on a later subset `j` (cyclic dependency between
    /// subsets, violating Property 2 for this ordering).
    CyclicDependency {
        /// The earlier subset.
        earlier: usize,
        /// The later subset it depends on.
        later: usize,
    },
    /// A subset's (boundary) dominator set exceeds `S` (Property 3).
    DominatorTooLarge {
        /// Index of the offending subset.
        subset: usize,
        /// Dominator size found.
        size: usize,
    },
    /// A subset's output set exceeds `S` (Property 4).
    OutputSetTooLarge {
        /// Index of the offending subset.
        subset: usize,
        /// Output-set size found.
        size: usize,
    },
}

/// Checks that `partition` is a valid S-partition of `dag`'s internal nodes.
///
/// Property 3 is checked with the smaller of two valid dominator sets
/// ([`boundary_dominator`] and [`entry_set`]); a partition accepted here is
/// genuinely an S-partition, while a rejected one *might* still admit an
/// even smaller dominator.
///
/// # Errors
///
/// Returns the first [`PartitionViolation`] found.
pub fn check_s_partition(
    dag: &Dag,
    partition: &Partition,
    s: usize,
) -> Result<(), PartitionViolation> {
    // Property 1: disjoint cover of the internal nodes.
    let mut owner: Vec<Option<usize>> = vec![None; dag.len()];
    for (i, subset) in partition.subsets.iter().enumerate() {
        for &v in subset {
            if dag.kind(v) == NodeKind::Input {
                return Err(PartitionViolation::ContainsInput(v));
            }
            if owner[v].is_some() {
                return Err(PartitionViolation::NotAPartition);
            }
            owner[v] = Some(i);
        }
    }
    for id in dag.topo_iter() {
        if dag.kind(id) != NodeKind::Input && owner[id].is_none() {
            return Err(PartitionViolation::NotAPartition);
        }
    }

    // Property 2: subset dependencies must follow the order (a valid order
    // certifies acyclicity).
    for (i, subset) in partition.subsets.iter().enumerate() {
        for &v in subset {
            for &p in dag.preds(v) {
                if let Some(j) = owner[p] {
                    if j > i {
                        return Err(PartitionViolation::CyclicDependency {
                            earlier: i,
                            later: j,
                        });
                    }
                }
            }
        }
    }

    // Properties 3 and 4.
    for (i, subset) in partition.subsets.iter().enumerate() {
        let dom = boundary_dominator(dag, subset)
            .len()
            .min(entry_set(dag, subset).len());
        if dom > s {
            return Err(PartitionViolation::DominatorTooLarge {
                subset: i,
                size: dom,
            });
        }
        let out = output_set(dag, subset);
        if out.len() > s {
            return Err(PartitionViolation::OutputSetTooLarge {
                subset: i,
                size: out.len(),
            });
        }
    }
    Ok(())
}

/// Greedily builds a valid S-partition by scanning nodes in topological
/// order and closing the current subset whenever adding the next node would
/// push the boundary dominator or the output set past `S`.
///
/// The subset count is an **upper bound** on `P(S)`.
///
/// # Panics
///
/// Panics if `s == 0`.
#[must_use]
pub fn greedy_partition(dag: &Dag, s: usize) -> Partition {
    assert!(s > 0, "S must be positive");
    let mut subsets: Vec<Vec<NodeId>> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    let mut current_set: HashSet<NodeId> = HashSet::new();
    // Incremental dominators: external preds of the current subset, and the
    // entry count (members with an external predecessor). Either is a valid
    // dominator; feasibility uses the smaller.
    let mut dom: HashSet<NodeId> = HashSet::new();
    let mut entries: usize = 0;

    for id in dag.topo_iter() {
        if dag.kind(id) == NodeKind::Input {
            continue;
        }
        // Tentatively add `id`. Its predecessors are earlier in the order,
        // so its entry status is final at insertion time.
        let mut new_dom = dom.clone();
        new_dom.remove(&id);
        let mut is_entry = false;
        for &p in dag.preds(id) {
            if !current_set.contains(&p) {
                new_dom.insert(p);
                is_entry = true;
            }
        }
        let new_entries = entries + usize::from(is_entry);
        current.push(id);
        current_set.insert(id);
        let out_size = output_set(dag, &current).len();
        if new_dom.len().min(new_entries) > s || out_size > s {
            // Close the previous subset (without `id`) and start fresh.
            current.pop();
            current_set.remove(&id);
            if !current.is_empty() {
                subsets.push(std::mem::take(&mut current));
                current_set.clear();
            }
            dom = dag.preds(id).iter().copied().collect();
            entries = 1;
            current.push(id);
            current_set.insert(id);
        } else {
            dom = new_dom;
            entries = new_entries;
        }
    }
    if !current.is_empty() {
        subsets.push(current);
    }
    Partition { subsets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_dag::build_conv_dag;
    use conv_model::{ConvLayer, Padding};

    fn tiny_layer() -> ConvLayer {
        ConvLayer::builder()
            .batch(1)
            .out_channels(2)
            .in_channels(2)
            .input(4, 4)
            .kernel(2, 2)
            .padding(Padding::none())
            .build()
            .unwrap()
    }

    #[test]
    fn greedy_partition_is_valid() {
        let conv = build_conv_dag(&tiny_layer());
        for s in [4, 8, 16, 64] {
            let p = greedy_partition(&conv.dag, s);
            assert!(
                check_s_partition(&conv.dag, &p, s).is_ok(),
                "greedy partition invalid at S={s}"
            );
        }
    }

    #[test]
    fn greedy_subset_count_decreases_with_s() {
        let conv = build_conv_dag(&tiny_layer());
        let mut prev = usize::MAX;
        for s in [4, 8, 16, 32, 64, 128] {
            let h = greedy_partition(&conv.dag, s).len();
            assert!(h <= prev, "subset count must not grow with S");
            prev = h;
        }
    }

    #[test]
    fn whole_dag_is_one_subset_with_huge_s() {
        let conv = build_conv_dag(&tiny_layer());
        let p = greedy_partition(&conv.dag, 1_000_000);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn checker_rejects_missing_node() {
        let conv = build_conv_dag(&tiny_layer());
        let mut p = greedy_partition(&conv.dag, 1_000_000);
        p.subsets[0].pop();
        assert_eq!(
            check_s_partition(&conv.dag, &p, 1_000_000),
            Err(PartitionViolation::NotAPartition)
        );
    }

    #[test]
    fn checker_rejects_duplicated_node() {
        let conv = build_conv_dag(&tiny_layer());
        let mut p = greedy_partition(&conv.dag, 1_000_000);
        let v = p.subsets[0][0];
        p.subsets[0].push(v);
        assert_eq!(
            check_s_partition(&conv.dag, &p, 1_000_000),
            Err(PartitionViolation::NotAPartition)
        );
    }

    #[test]
    fn checker_rejects_input_in_subset() {
        let conv = build_conv_dag(&tiny_layer());
        let mut p = greedy_partition(&conv.dag, 1_000_000);
        p.subsets[0].push(conv.activation_ids[0]);
        assert!(matches!(
            check_s_partition(&conv.dag, &p, 1_000_000),
            Err(PartitionViolation::ContainsInput(_))
        ));
    }

    #[test]
    fn checker_rejects_reversed_order() {
        // A dependent chain split in two: the reversed order violates
        // Property 2. (Greedy partitions of conv DAGs can have independent
        // subsets — whole add trees — whose reversal is legitimately valid,
        // so build the dependency explicitly.)
        let mut dag = Dag::new();
        let a = dag.add_input();
        let n1 = dag.add_node(NodeKind::Add, vec![a]);
        let n2 = dag.add_node(NodeKind::Add, vec![n1]);
        let n3 = dag.add_node(NodeKind::Add, vec![n2]);
        let n4 = dag.add_node(NodeKind::Add, vec![n3]);
        let good = Partition {
            subsets: vec![vec![n1, n2], vec![n3, n4]],
        };
        assert!(check_s_partition(&dag, &good, 2).is_ok());
        let rev = Partition {
            subsets: vec![vec![n3, n4], vec![n1, n2]],
        };
        assert!(matches!(
            check_s_partition(&dag, &rev, 2),
            Err(PartitionViolation::CyclicDependency { .. })
        ));
    }

    #[test]
    fn checker_rejects_too_small_s() {
        let conv = build_conv_dag(&tiny_layer());
        // One giant subset needs a dominator of all inputs, far above S=4.
        let p = greedy_partition(&conv.dag, 1_000_000);
        assert!(matches!(
            check_s_partition(&conv.dag, &p, 4),
            Err(PartitionViolation::DominatorTooLarge { .. })
        ));
    }

    #[test]
    fn output_set_of_chain_is_tail() {
        let mut dag = Dag::new();
        let a = dag.add_input();
        let m = dag.add_node(NodeKind::Multiply, vec![a, a]);
        let s1 = dag.add_node(NodeKind::Add, vec![m]);
        let s2 = dag.add_node(NodeKind::Add, vec![s1]);
        let out = output_set(&dag, &[m, s1, s2]);
        assert_eq!(out, vec![s2]);
    }
}
