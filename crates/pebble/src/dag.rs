//! Directed acyclic graph representation of a computation, as used by the
//! red–blue pebble game: nodes are data entries or operations, edges are
//! data dependencies (Section II-C).

use serde::{Deserialize, Serialize};

/// Identifier of a node inside a [`Dag`].
pub type NodeId = usize;

/// What a DAG node represents in the red–blue pebble game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An input of the computation (initially holds a blue pebble): an input
    /// activation or a weight.
    Input,
    /// A multiplication node (`aᵢ·wⱼ`, producing a *term* in the paper's
    /// vocabulary).
    Multiply,
    /// An addition node of an add tree.
    Add,
}

/// A directed acyclic graph describing a computation, in the shape used by
/// the S-partition model (Section II-C).
///
/// Nodes are stored in a topological order by construction: an edge may only
/// point from an existing node to a newly added one.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dag {
    kinds: Vec<NodeKind>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
}

impl Dag {
    /// Creates an empty DAG.
    #[must_use]
    pub fn new() -> Self {
        Dag::default()
    }

    /// Adds an input node, returning its id.
    pub fn add_input(&mut self) -> NodeId {
        self.push(NodeKind::Input, Vec::new())
    }

    /// Adds an internal node of the given kind with the given predecessors.
    ///
    /// # Panics
    ///
    /// Panics if any predecessor id does not exist yet (this is what keeps
    /// the node order topological) or if an internal node has no
    /// predecessors.
    pub fn add_node(&mut self, kind: NodeKind, preds: Vec<NodeId>) -> NodeId {
        assert!(kind != NodeKind::Input, "use add_input for input nodes");
        assert!(!preds.is_empty(), "internal nodes need predecessors");
        for &p in &preds {
            assert!(p < self.kinds.len(), "predecessor {p} does not exist");
        }
        self.push(kind, preds)
    }

    fn push(&mut self, kind: NodeKind, preds: Vec<NodeId>) -> NodeId {
        let id = self.kinds.len();
        for &p in &preds {
            self.succs[p].push(id);
        }
        self.kinds.push(kind);
        self.preds.push(preds);
        self.succs.push(Vec::new());
        id
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when the DAG has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Kind of a node.
    #[must_use]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id]
    }

    /// Predecessors of a node.
    #[must_use]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id]
    }

    /// Successors of a node.
    #[must_use]
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id]
    }

    /// Iterator over all node ids in topological order.
    pub fn topo_iter(&self) -> impl Iterator<Item = NodeId> {
        0..self.kinds.len()
    }

    /// Number of input nodes.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.kinds.iter().filter(|k| **k == NodeKind::Input).count()
    }

    /// Number of internal (non-input) nodes — the quantity Lemma 1 counts.
    #[must_use]
    pub fn internal_count(&self) -> usize {
        self.len() - self.input_count()
    }

    /// Nodes with no successors (the computation's final outputs).
    #[must_use]
    pub fn sinks(&self) -> Vec<NodeId> {
        self.topo_iter()
            .filter(|&id| self.succs[id].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_small_dag() {
        let mut g = Dag::new();
        let a = g.add_input();
        let w = g.add_input();
        let m = g.add_node(NodeKind::Multiply, vec![a, w]);
        let s = g.add_node(NodeKind::Add, vec![m]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.input_count(), 2);
        assert_eq!(g.internal_count(), 2);
        assert_eq!(g.sinks(), vec![s]);
        assert_eq!(g.preds(m), &[a, w]);
        assert_eq!(g.succs(a), &[m]);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_edge_rejected() {
        let mut g = Dag::new();
        let _ = g.add_node(NodeKind::Add, vec![7]);
    }

    #[test]
    #[should_panic(expected = "need predecessors")]
    fn internal_without_preds_rejected() {
        let mut g = Dag::new();
        let _ = g.add_node(NodeKind::Add, vec![]);
    }
}
