//! Minimal *contiguous* S-partitions via dynamic programming.
//!
//! The true `P(S)` minimises over arbitrary partitions, which is
//! intractable; restricting subsets to contiguous runs of the topological
//! order yields a partition that is still valid (checked by
//! [`check_s_partition`](crate::partition::check_s_partition)) and whose
//! minimal size can be found exactly by DP in `O(n·L)` where `L` is the
//! longest feasible segment. The result is a tighter upper bound on `P(S)`
//! than the greedy scan, letting the tests squeeze
//! `P_lower(S) ≤ P(S) ≤ P_contig(S) ≤ P_greedy(S)`.

use std::collections::HashMap;

use crate::dag::{Dag, NodeId, NodeKind};
use crate::partition::Partition;

/// Incrementally tracked segment state: boundary dominator size and output
/// set size as internal nodes are appended in topological order.
struct SegmentState<'a> {
    dag: &'a Dag,
    /// Nodes currently in the segment.
    members: HashMap<NodeId, usize>, // node -> #successors inside
    /// External predecessors of the segment (the boundary dominator).
    dominator: HashMap<NodeId, usize>, // node -> #edges into the segment
    /// Members with at least one external predecessor (the entry set,
    /// an alternative valid dominator).
    entries: usize,
    outputs: usize,
}

impl<'a> SegmentState<'a> {
    fn new(dag: &'a Dag) -> Self {
        SegmentState {
            dag,
            members: HashMap::new(),
            dominator: HashMap::new(),
            entries: 0,
            outputs: 0,
        }
    }

    fn push(&mut self, v: NodeId) {
        // v joins with (initially) no successors inside.
        self.members.insert(v, 0);
        self.outputs += 1;
        // v can no longer be an external predecessor.
        self.dominator.remove(&v);
        let mut is_entry = false;
        for &p in self.dag.preds(v) {
            if let Some(cnt) = self.members.get_mut(&p) {
                if *cnt == 0 {
                    // p stops being an output of the segment.
                    self.outputs -= 1;
                }
                *cnt += 1;
            } else {
                *self.dominator.entry(p).or_insert(0) += 1;
                is_entry = true;
            }
        }
        self.entries += usize::from(is_entry);
    }

    /// Effective dominator size: the smaller of the two valid dominators.
    fn dominator_len(&self) -> usize {
        self.dominator.len().min(self.entries)
    }

    fn outputs_len(&self) -> usize {
        self.outputs
    }
}

/// Computes the minimal number of subsets of a *contiguous* S-partition of
/// `dag`'s internal nodes, together with the partition itself.
///
/// # Panics
///
/// Panics if `s == 0`.
#[must_use]
pub fn optimal_contiguous_partition(dag: &Dag, s: usize) -> Partition {
    assert!(s > 0, "S must be positive");
    let internal: Vec<NodeId> = dag
        .topo_iter()
        .filter(|&v| dag.kind(v) != NodeKind::Input)
        .collect();
    let n = internal.len();
    if n == 0 {
        return Partition::default();
    }

    // feasible[j] = list of segment end indices e (exclusive) such that
    // internal[j..e] is a valid subset. The dominator grows monotonically,
    // so extension stops once it exceeds S; output-set validity is recorded
    // per endpoint.
    // DP over prefix lengths: best[i] = (min subsets covering internal[..i]).
    let mut best: Vec<(usize, usize)> = vec![(usize::MAX, 0); n + 1]; // (count, split)
    best[0] = (0, 0);
    for j in 0..n {
        if best[j].0 == usize::MAX {
            continue;
        }
        let mut seg = SegmentState::new(dag);
        for e in j..n {
            seg.push(internal[e]);
            if seg.dominator_len() > s {
                break;
            }
            if seg.outputs_len() <= s {
                let cand = best[j].0 + 1;
                if cand < best[e + 1].0 {
                    best[e + 1] = (cand, j);
                }
            }
        }
    }

    assert!(
        best[n].0 != usize::MAX,
        "no contiguous S-partition exists for S={s} (a single node's \
         predecessors exceed S)"
    );

    // Reconstruct.
    let mut cuts = Vec::new();
    let mut i = n;
    while i > 0 {
        let j = best[i].1;
        cuts.push((j, i));
        i = j;
    }
    cuts.reverse();
    Partition {
        subsets: cuts
            .into_iter()
            .map(|(j, e)| internal[j..e].to_vec())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_dag::build_conv_dag;
    use crate::lemmas::p_lower_bound;
    use crate::partition::{check_s_partition, greedy_partition};
    use conv_model::{ConvLayer, Padding};

    fn tiny_layer() -> ConvLayer {
        ConvLayer::builder()
            .batch(1)
            .out_channels(2)
            .in_channels(2)
            .input(4, 4)
            .kernel(2, 2)
            .padding(Padding::none())
            .build()
            .unwrap()
    }

    #[test]
    fn optimal_is_valid() {
        let conv = build_conv_dag(&tiny_layer());
        for s in [4usize, 8, 16, 64] {
            let p = optimal_contiguous_partition(&conv.dag, s);
            check_s_partition(&conv.dag, &p, s)
                .unwrap_or_else(|e| panic!("optimal contiguous partition invalid at S={s}: {e:?}"));
        }
    }

    #[test]
    fn optimal_not_worse_than_greedy() {
        let conv = build_conv_dag(&tiny_layer());
        for s in [4usize, 8, 16, 32, 64] {
            let opt = optimal_contiguous_partition(&conv.dag, s).len();
            let greedy = greedy_partition(&conv.dag, s).len();
            assert!(opt <= greedy, "S={s}: optimal {opt} > greedy {greedy}");
        }
    }

    #[test]
    fn optimal_respects_counting_lower_bound() {
        let layer = tiny_layer();
        let conv = build_conv_dag(&layer);
        let r = layer.window_reuse();
        for s in [8usize, 16, 32, 64] {
            let opt = optimal_contiguous_partition(&conv.dag, s).len() as u64;
            let lower = p_lower_bound(conv.dag.internal_count() as u64, s as u64, r);
            assert!(lower <= opt, "S={s}: lower {lower} > optimal {opt}");
        }
    }

    #[test]
    fn huge_s_gives_single_subset() {
        let conv = build_conv_dag(&tiny_layer());
        let p = optimal_contiguous_partition(&conv.dag, 1_000_000);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn chain_dag_partitions_exactly() {
        // A pure chain of adds: every segment has dominator 1 (the previous
        // tail) + possibly the input, output 1. With S=2 one subset suffices
        // only up to the whole chain... verify exact counts on a small chain.
        use crate::dag::{Dag, NodeKind};
        let mut dag = Dag::new();
        let a = dag.add_input();
        let mut prev = dag.add_node(NodeKind::Add, vec![a]);
        for _ in 0..9 {
            prev = dag.add_node(NodeKind::Add, vec![prev]);
        }
        // 10 internal nodes in a chain: dominator of any contiguous segment
        // is 1, output set 1 -> one subset covers everything at S=1.
        let p = optimal_contiguous_partition(&dag, 1);
        assert_eq!(p.len(), 1);
    }
}
