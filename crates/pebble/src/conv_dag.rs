//! DAG construction for a convolutional layer (Fig. 4 / Lemma 1).
//!
//! The DAG has three levels: input nodes (activations and weights),
//! multiplication nodes (one per term `aᵢ·wⱼ`), and add nodes forming an add
//! tree per output. As in the paper's counting, each add tree associated
//! with one output has `Wk·Hk·Ci` multiplication nodes and `Wk·Hk·Ci` add
//! nodes, so the internal/output node count is
//! `2·B·Wo·Ho·Co·Wk·Hk·Ci` (Lemma 1).

use conv_model::ConvLayer;

use crate::dag::{Dag, NodeId, NodeKind};

/// A convolutional layer's DAG together with maps back to tensor
/// coordinates.
#[derive(Debug, Clone)]
pub struct ConvDag {
    /// The graph itself.
    pub dag: Dag,
    /// Input-activation node ids, indexed `[image][channel][row][col]`
    /// flattened; padding taps have no node (they are constants).
    pub activation_ids: Vec<NodeId>,
    /// Weight node ids, indexed `[kernel][channel][row][col]` flattened.
    pub weight_ids: Vec<NodeId>,
    /// The final add node of every output's add tree.
    pub output_ids: Vec<NodeId>,
}

/// Builds the DAG of a layer.
///
/// Intended for *small* layers (tests and empirical bound validation): the
/// node count is `2·#MACs + #inputs + #weights`.
///
/// # Panics
///
/// Panics if the DAG would exceed 50 million nodes — this builder is for
/// small empirical studies, not full networks.
#[must_use]
pub fn build_conv_dag(layer: &ConvLayer) -> ConvDag {
    let budget = 2 * layer.macs() + layer.input_words() + layer.weight_words();
    assert!(
        budget < 50_000_000,
        "conv DAG too large ({budget} nodes); use a smaller layer"
    );

    let mut dag = Dag::new();
    let (b, ci, hi, wi) = (
        layer.batch(),
        layer.in_channels(),
        layer.in_height(),
        layer.in_width(),
    );
    let (co, kh, kw) = (
        layer.out_channels(),
        layer.kernel_height(),
        layer.kernel_width(),
    );

    let mut activation_ids = Vec::with_capacity(b * ci * hi * wi);
    for _ in 0..b * ci * hi * wi {
        activation_ids.push(dag.add_input());
    }
    let mut weight_ids = Vec::with_capacity(co * ci * kh * kw);
    for _ in 0..co * ci * kh * kw {
        weight_ids.push(dag.add_input());
    }

    let act_at =
        |i: usize, c: usize, y: usize, x: usize| activation_ids[((i * ci + c) * hi + y) * wi + x];
    let w_at =
        |o: usize, c: usize, y: usize, x: usize| weight_ids[((o * ci + c) * kh + y) * kw + x];

    let pad = layer.padding();
    let stride = layer.stride();
    let mut output_ids = Vec::with_capacity(layer.output_words() as usize);

    for i in 0..b {
        for oz in 0..co {
            for oy in 0..layer.output_height() {
                for ox in 0..layer.output_width() {
                    let mut tail: Option<NodeId> = None;
                    for kz in 0..ci {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * stride + ky) as isize - pad.vertical as isize;
                                let ix = (ox * stride + kx) as isize - pad.horizontal as isize;
                                // Padding taps are constant zeros: the paper's
                                // counting assumes no padding; for padded
                                // layers the tree is just shorter.
                                if iy < 0 || ix < 0 || iy as usize >= hi || ix as usize >= wi {
                                    continue;
                                }
                                let a = act_at(i, kz, iy as usize, ix as usize);
                                let w = w_at(oz, kz, ky, kx);
                                let m = dag.add_node(NodeKind::Multiply, vec![a, w]);
                                // One add node per term keeps the Lemma 1
                                // count: the first add accumulates from the
                                // implicit zero.
                                let add_preds = match tail {
                                    Some(t) => vec![t, m],
                                    None => vec![m],
                                };
                                tail = Some(dag.add_node(NodeKind::Add, add_preds));
                            }
                        }
                    }
                    output_ids.push(tail.expect("a valid layer has at least one tap per output"));
                }
            }
        }
    }

    ConvDag {
        dag,
        activation_ids,
        weight_ids,
        output_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::Padding;

    fn tiny(no_pad: bool) -> ConvLayer {
        ConvLayer::builder()
            .batch(1)
            .out_channels(2)
            .in_channels(2)
            .input(4, 4)
            .kernel(2, 2)
            .stride(1)
            .padding(if no_pad {
                Padding::none()
            } else {
                Padding::same(3)
            })
            .build()
            .unwrap()
    }

    #[test]
    fn lemma1_internal_node_count() {
        // Without padding: internal+output nodes = 2·B·Wo·Ho·Co·Wk·Hk·Ci.
        let layer = tiny(true);
        let conv = build_conv_dag(&layer);
        assert_eq!(conv.dag.internal_count() as u64, 2 * layer.macs());
    }

    #[test]
    fn input_node_count() {
        let layer = tiny(true);
        let conv = build_conv_dag(&layer);
        assert_eq!(
            conv.dag.input_count() as u64,
            layer.input_words() + layer.weight_words()
        );
    }

    #[test]
    fn one_output_per_add_tree() {
        let layer = tiny(true);
        let conv = build_conv_dag(&layer);
        assert_eq!(conv.output_ids.len() as u64, layer.output_words());
        // The outputs are exactly the sinks of the DAG.
        let mut sinks = conv.dag.sinks();
        sinks.sort_unstable();
        let mut outs = conv.output_ids.clone();
        outs.sort_unstable();
        assert_eq!(sinks, outs);
    }

    #[test]
    fn padded_layer_has_fewer_internal_nodes() {
        let layer = tiny(false);
        let conv = build_conv_dag(&layer);
        assert!((conv.dag.internal_count() as u64) < 2 * layer.macs());
        assert_eq!(
            conv.dag.internal_count() as u64,
            2 * conv_model::reference::effective_macs(&layer)
        );
    }

    #[test]
    fn add_trees_are_disjoint_chains() {
        // No internal node may feed two different add trees (Lemma 1's "no
        // internal node can be shared" premise).
        let layer = tiny(true);
        let conv = build_conv_dag(&layer);
        for id in conv.dag.topo_iter() {
            match conv.dag.kind(id) {
                NodeKind::Add | NodeKind::Multiply => {
                    assert!(conv.dag.succs(id).len() <= 1);
                }
                NodeKind::Input => {}
            }
        }
    }
}
