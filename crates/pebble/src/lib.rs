//! Red–blue pebble game substrate: the S-partition model that underlies the
//! paper's off-chip communication lower bound (Section II-C and III).
//!
//! This crate makes the theory *executable*:
//!
//! * [`dag`] — DAG representation of a computation.
//! * [`conv_dag`] — the three-level convolution DAG of Fig. 4, with the node
//!   counts of Lemma 1.
//! * [`partition`] — S-partition validity checking (Properties 1–4) and a
//!   greedy partitioner that upper-bounds `P(S)`.
//! * [`lemmas`] — the counting machinery: Lemma 2's `T(S)` with a
//!   brute-force verifier, Lemma 3's subset capacity, Eq. 12's `P(S)` lower
//!   bound, and Theorem 1/2 composition.
//!
//! Squeezing the greedy upper bound against the analytic lower bound on
//! small layers validates the derivation chain numerically — see the
//! workspace integration tests.
//!
//! # Example
//!
//! ```
//! use conv_model::{ConvLayer, Padding};
//! use pebble::{build_conv_dag, greedy_partition, check_s_partition};
//!
//! let layer = ConvLayer::builder()
//!     .input(4, 4).kernel(2, 2).out_channels(2).in_channels(2)
//!     .padding(Padding::none())
//!     .build().unwrap();
//! let conv = build_conv_dag(&layer);
//! let partition = greedy_partition(&conv.dag, 16);
//! assert!(check_s_partition(&conv.dag, &partition, 16).is_ok());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod conv_dag;
pub mod dag;
pub mod lemmas;
pub mod optimal;
pub mod partition;

pub use conv_dag::{build_conv_dag, ConvDag};
pub use dag::{Dag, NodeId, NodeKind};
pub use lemmas::{
    max_terms_bound, max_terms_brute_force, p_lower_bound, subset_capacity, theorem1_q_lower,
    theorem2_q_lower,
};
pub use optimal::optimal_contiguous_partition;
pub use partition::{
    boundary_dominator, check_s_partition, entry_set, greedy_partition, output_set, Partition,
    PartitionViolation,
};
