//! The counting lemmas of Section III-B and their empirical verification.
//!
//! * [`max_terms_bound`] — Lemma 2's closed form: at most
//!   `T(S) = S·√(R·S) / (3√3)` terms can be produced in ≤ S add trees from
//!   ≤ S on-chip memory units.
//! * [`max_terms_brute_force`] — the same quantity found by direct
//!   maximisation of `u·k·z` under the constraint of Eq. 4, used by tests to
//!   verify the lemma numerically.
//! * [`subset_capacity`] — Lemma 3: a subset of an S-partition holds at most
//!   `2·T(S) + S` internal nodes.
//! * [`p_lower_bound`] — Eq. 12: `P(S) ≥ ⌈N / (2T(S)+S)⌉` for `N` internal
//!   nodes.
//! * [`theorem1_q_lower`] — Theorem 1: `Q ≥ S·(P(2S) − 1)`.
//! * [`theorem2_q_lower`] — the end-to-end Theorem 2 instantiation for a
//!   convolutional layer.

use conv_model::ConvLayer;

/// Lemma 2's closed-form bound `T(S) = S·√(R·S) / (3√3)` on the number of
/// terms producible in ≤ S add trees with ≤ S memory units, for a layer with
/// sliding-window reuse `R`.
///
/// # Panics
///
/// Panics if `s` is zero or `r < 1`.
#[must_use]
pub fn max_terms_bound(s: u64, r: f64) -> f64 {
    assert!(s > 0, "S must be positive");
    assert!(r >= 1.0, "R is at least 1");
    let s = s as f64;
    s * (r * s).sqrt() / (3.0 * 3.0_f64.sqrt())
}

/// Directly maximises the term count `u·k·z` over a single output block
/// under the memory constraint of Eq. 4 (single-block case):
/// `u·k/R + z·k + u·z ≤ S`.
///
/// The search sweeps `u` and `k` and derives the best `z` analytically
/// (`z = (S − u·k/R) / (k + u)`), so it is exact up to integer rounding of
/// `u` and `k`. Tests verify the result never exceeds [`max_terms_bound`]
/// and comes within a few percent of it (the bound is tight).
#[must_use]
pub fn max_terms_brute_force(s: u64, r: f64) -> f64 {
    assert!(s > 0, "S must be positive");
    assert!(r >= 1.0, "R is at least 1");
    let sf = s as f64;
    let mut best = 0.0f64;
    // u up to R*S would always violate unless k,z tiny; sqrt(R*S)*2 is a
    // safe sweep roof.
    let u_max = ((r * sf).sqrt() * 2.0).ceil() as u64 + 2;
    for u in 1..=u_max {
        let uf = u as f64;
        for k in 1..=u_max {
            let kf = k as f64;
            let used = uf * kf / r;
            if used >= sf {
                break;
            }
            let z = (sf - used) / (kf + uf);
            if z < 0.0 {
                continue;
            }
            let terms = uf * kf * z;
            if terms > best {
                best = terms;
            }
        }
    }
    best
}

/// Lemma 3: the maximum number of internal/output nodes one subset of an
/// S-partition can contain, `2·T(S) + S`.
#[must_use]
pub fn subset_capacity(s: u64, r: f64) -> f64 {
    2.0 * max_terms_bound(s, r) + s as f64
}

/// Eq. 12: the minimum number of subsets of any S-partition of a DAG with
/// `internal_nodes` internal/output nodes:
/// `P(S) ≥ ⌈N / (2T(S)+S)⌉`.
#[must_use]
pub fn p_lower_bound(internal_nodes: u64, s: u64, r: f64) -> u64 {
    (internal_nodes as f64 / subset_capacity(s, r)).ceil() as u64
}

/// Theorem 1: `Q ≥ S·(P(2S) − 1)` given a lower bound on `P(2S)`.
#[must_use]
pub fn theorem1_q_lower(s: u64, p_2s: u64) -> u64 {
    s * p_2s.saturating_sub(1)
}

/// End-to-end Theorem 2 instantiation for a convolutional layer: combines
/// Lemma 1's node count, Eq. 12 and Theorem 1 into a concrete word count
/// that any schedule with `s` words of on-chip memory must move.
///
/// This is the *constant-bearing* version of the `Ω` statement — useful for
/// squeezing against measured schedules on small layers.
#[must_use]
pub fn theorem2_q_lower(layer: &ConvLayer, s: u64) -> u64 {
    let internal = 2 * layer.macs();
    let p = p_lower_bound(internal, 2 * s, layer.window_reuse());
    theorem1_q_lower(s, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_never_exceeds_bound() {
        for s in [16, 64, 256, 1024, 4096] {
            for r in [1.0, 2.25, 4.0, 9.0] {
                let brute = max_terms_brute_force(s, r);
                let bound = max_terms_bound(s, r);
                assert!(
                    brute <= bound * 1.0 + 1e-9,
                    "Lemma 2 violated: brute={brute} bound={bound} at S={s}, R={r}"
                );
            }
        }
    }

    #[test]
    fn bound_is_tight_for_large_s() {
        // The optimum (u = k = √(SR)/√3, z = √S/(√3·√R)) is attainable up to
        // integer rounding, so brute force should be within 5% for large S.
        for r in [1.0, 9.0] {
            let brute = max_terms_brute_force(16384, r);
            let bound = max_terms_bound(16384, r);
            assert!(
                brute > 0.95 * bound,
                "bound not tight: brute={brute} bound={bound} (R={r})"
            );
        }
    }

    #[test]
    fn terms_grow_with_r() {
        assert!(max_terms_bound(1024, 9.0) == 3.0 * max_terms_bound(1024, 1.0));
    }

    #[test]
    fn mm_case_matches_classic_form() {
        // R=1: T(S) = S^{3/2} / (3√3) — the Hong–Kung MM bound shape.
        let t = max_terms_bound(900, 1.0);
        let expected = 900.0_f64.powf(1.5) / (3.0 * 3.0_f64.sqrt());
        assert!((t - expected).abs() < 1e-9);
    }

    #[test]
    fn p_lower_decreases_with_s() {
        let n = 1_000_000;
        let mut prev = u64::MAX;
        for s in [64, 256, 1024, 4096] {
            let p = p_lower_bound(n, s, 9.0);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn theorem1_composition() {
        assert_eq!(theorem1_q_lower(100, 11), 1000);
        assert_eq!(theorem1_q_lower(100, 0), 0);
        assert_eq!(theorem1_q_lower(100, 1), 0);
    }

    #[test]
    fn theorem2_is_below_practical_bound() {
        // The constant-bearing pebble bound is weaker (smaller) than the
        // Eq. 15 practical bound but must agree within the 2√2·3√3 constant.
        let layer = ConvLayer::square(1, 32, 16, 16, 3, 1).unwrap();
        let s = 2048u64;
        let pebble = theorem2_q_lower(&layer, s) as f64;
        let practical = comm_bound_reference(&layer, s);
        assert!(pebble <= practical);
        assert!(pebble > 0.0);
        // Same asymptotic order: ratio bounded by a constant (< 25).
        assert!(practical / pebble < 25.0, "ratio {}", practical / pebble);
    }

    fn comm_bound_reference(layer: &ConvLayer, s: u64) -> f64 {
        // 2·macs/√(R·S), re-derived locally to avoid a cyclic dev-dependency.
        2.0 * layer.macs() as f64 / (layer.window_reuse() * s as f64).sqrt()
    }

    #[test]
    fn theorem2_scaling_in_s() {
        let layer = ConvLayer::square(1, 64, 32, 32, 3, 1).unwrap();
        let q1 = theorem2_q_lower(&layer, 1024) as f64;
        let q2 = theorem2_q_lower(&layer, 4096) as f64;
        // Q ~ 1/√S: quadrupling S should halve Q (within rounding).
        let ratio = q1 / q2;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }
}
