//! Property tests of the S-partition machinery on random DAGs — the
//! checker/constructors must be correct for *any* computation graph, not
//! just convolution DAGs.

use pebble::{check_s_partition, greedy_partition, optimal_contiguous_partition, Dag, NodeKind};
use proptest::prelude::*;

/// Builds a random layered DAG: `inputs` input nodes followed by `internal`
/// internal nodes, each drawing 1–3 predecessors from earlier nodes.
fn random_dag(inputs: usize, internal: usize, seed: u64) -> Dag {
    let mut state = seed | 1;
    let mut next = move |bound: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 33) as usize % bound.max(1)
    };
    let mut dag = Dag::new();
    for _ in 0..inputs {
        dag.add_input();
    }
    for i in 0..internal {
        let avail = inputs + i;
        let npreds = 1 + next(3);
        let mut preds: Vec<usize> = (0..npreds).map(|_| next(avail)).collect();
        preds.sort_unstable();
        preds.dedup();
        let kind = if next(2) == 0 {
            NodeKind::Multiply
        } else {
            NodeKind::Add
        };
        dag.add_node(kind, preds);
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_is_valid_on_random_dags(
        inputs in 1usize..=12,
        internal in 1usize..=60,
        seed in 1u64..100_000,
        s in 2usize..=32,
    ) {
        let dag = random_dag(inputs, internal, seed);
        let p = greedy_partition(&dag, s);
        prop_assert!(check_s_partition(&dag, &p, s).is_ok());
        // Every internal node appears exactly once.
        let count: usize = p.subsets.iter().map(Vec::len).sum();
        prop_assert_eq!(count, dag.internal_count());
    }

    #[test]
    fn optimal_never_worse_than_greedy_on_random_dags(
        inputs in 1usize..=10,
        internal in 1usize..=40,
        seed in 1u64..100_000,
        s in 4usize..=32,
    ) {
        let dag = random_dag(inputs, internal, seed);
        let greedy = greedy_partition(&dag, s);
        // Greedy feasibility implies some contiguous partition exists.
        if check_s_partition(&dag, &greedy, s).is_ok() {
            let opt = optimal_contiguous_partition(&dag, s);
            prop_assert!(check_s_partition(&dag, &opt, s).is_ok());
            prop_assert!(opt.len() <= greedy.len());
        }
    }

    #[test]
    fn partition_count_monotone_in_s(
        inputs in 1usize..=10,
        internal in 1usize..=40,
        seed in 1u64..100_000,
        s in 4usize..=16,
    ) {
        let dag = random_dag(inputs, internal, seed);
        let small = optimal_contiguous_partition(&dag, s).len();
        let large = optimal_contiguous_partition(&dag, 2 * s).len();
        prop_assert!(large <= small);
    }
}
