//! Shared helpers for the figure/table reproduction benches.
//!
//! Every `[[bench]]` target in this crate is a custom harness
//! (`harness = false`) that regenerates one table or figure of the paper's
//! evaluation section and prints the same rows/series the paper reports.
//! Run them all with `cargo bench`, or one with e.g.
//! `cargo bench --bench fig13_dataflow_sweep`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use clb_core::{Accelerator, NetworkReport};
use conv_model::workloads::{self, Network};

/// The paper's evaluation workload: VGG-16 at batch 3.
#[must_use]
pub fn paper_workload() -> Network {
    workloads::vgg16(3)
}

/// Analyzes the paper workload on one Table I implementation.
///
/// # Panics
///
/// Panics if the simulation fails (planned tilings are always feasible).
#[must_use]
pub fn analyze_implementation(index: usize) -> NetworkReport {
    Accelerator::implementation(index)
        .analyze_network(&paper_workload())
        .expect("planned tilings simulate cleanly")
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("\n==============================================================");
    println!("{id} — {caption}");
    println!("==============================================================");
}

/// Formats bytes as the MB used in the paper's figures (10⁶ bytes).
#[must_use]
pub fn mb(bytes: f64) -> f64 {
    bytes / 1e6
}

/// Formats bytes as GB (10⁹ bytes) for the Fig. 13 axis.
#[must_use]
pub fn gb(bytes: f64) -> f64 {
    bytes / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_vgg16_batch3() {
        let net = paper_workload();
        assert_eq!(net.len(), 13);
        assert_eq!(net.layer(0).unwrap().layer.batch(), 3);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(mb(2e6), 2.0);
        assert_eq!(gb(3e9), 3.0);
    }
}
