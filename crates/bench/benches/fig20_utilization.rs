//! Fig. 20: average memory and PE utilizations of the five implementations
//! (paper: LRegs >88%, overall memory 80.6–91.0%, PEs >97%).

use clb_bench::{analyze_implementation, banner};

fn main() {
    banner(
        "Fig. 20",
        "Memory and PE utilizations (%), average over all layers",
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "implem", "GBufs", "GRegs", "LRegs", "Mem overall", "PEs"
    );
    for index in 1..=5 {
        let r = analyze_implementation(index);
        let u = r.totals.utilization;
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}% {:>7.1}%",
            format!("#{index}"),
            u.gbuf * 100.0,
            u.greg * 100.0,
            u.lreg * 100.0,
            u.memory_overall * 100.0,
            u.pe * 100.0,
        );
    }
    println!("\npaper shape: GBuf/GReg utilizations are low (slack for diverse tiling");
    println!("sizes); LRegs and the overall memory stay high because LRegs dominate");
    println!("capacity; PE utilization stays very high.");
}
