//! Fig. 15: per-layer DRAM access comparison with Eyeriss at Eyeriss's
//! 173.5 KB effective on-chip memory — lower bound, our dataflow, Eyeriss
//! with and without input compression.

use clb_bench::{banner, mb, paper_workload};
use comm_bound::OnChipMemory;
use dataflow::{search_dataflow, DataflowKind};
use eyeriss_model::{calibrated_dram_mb, EyerissConfig, EFFECTIVE_ONCHIP_KIB};

fn main() {
    banner(
        "Fig. 15",
        "Per-layer DRAM access (MB) vs Eyeriss @ 173.5 KB effective memory",
    );
    let net = paper_workload();
    let mem = OnChipMemory::from_kib(EFFECTIVE_ONCHIP_KIB);
    let cfg = EyerissConfig::default();
    let eyeriss_compr = calibrated_dram_mb(&cfg, &net, true);
    let eyeriss_raw = calibrated_dram_mb(&cfg, &net, false);

    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>14}",
        "layer", "bound", "ours", "Eyeriss(com)", "Eyeriss(uncom)"
    );
    for (i, l) in net.conv_layers().enumerate() {
        let bound = comm_bound::dram_bound_bytes(&l.layer, mem);
        let ours = search_dataflow(DataflowKind::Ours, &l.layer, mem)
            .unwrap()
            .traffic
            .total_bytes();
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>12.1} {:>14.1}",
            l.name,
            mb(bound),
            mb(ours as f64),
            eyeriss_compr[i].1,
            eyeriss_raw[i].1,
        );
    }

    println!("\npaper shape: our dataflow beats uncompressed Eyeriss by ~43% and even");
    println!("compressed Eyeriss by ~7%; on layer 1 Eyeriss can dip below the Ω-form");
    println!("bound (small-workload special case the paper calls out).");
}
