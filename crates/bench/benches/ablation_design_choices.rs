//! Ablations of the design choices the paper argues for:
//!
//! 1. `k = 1` vs larger inner channel tiles (Section IV-A: smaller `k`
//!    leaves more memory for Psums, so `k` should be 1);
//! 2. the `b·x·y ≈ R·z` balance (Section IV-C's first optimality condition);
//! 3. Psums in LRegs vs Psums in the GBuf (Section IV-B1: GBuf Psums cause
//!    shuffling energy);
//! 4. assigning most of the on-chip memory to Psums (`b·x·y·z ≈ S`).

use clb_bench::{banner, paper_workload};
use comm_bound::OnChipMemory;
use conv_model::ConvLayer;
use dataflow::{our_dataflow_traffic, search_ours, Tiling};
use energy_model::{reg_access_pj, sram_access_pj, table};

fn mid_layer() -> ConvLayer {
    paper_workload().layer(4).unwrap().layer // conv3_1
}

fn ablate_k(layer: &ConvLayer, mem: OnChipMemory) {
    println!("\n[1] inner channel tile k (fixed memory {mem}):");
    println!("    k>1 shrinks the Psum block: with k channels of inputs+weights");
    println!("    resident, the output tile must fit in S - k*(slices).");
    let s = mem.words();
    for k in [1usize, 2, 4, 8, 16] {
        // Memory left for Psums after k input/weight slices.
        let base = search_ours(layer, mem).tiling;
        let (xp, yp) = layer.input_footprint(base.x, base.y);
        let slice = (base.b * xp * yp + base.z * layer.kernel_height() * layer.kernel_width()) * k;
        if slice as f64 >= s {
            println!("    k={k:>2}: slices alone exceed S");
            continue;
        }
        let shrink = ((s - slice as f64) / (s - slice as f64 / k as f64)).sqrt();
        let t = Tiling::clamped(
            layer,
            base.b,
            base.z,
            ((base.y as f64) * shrink) as usize,
            ((base.x as f64) * shrink) as usize,
        );
        let q = our_dataflow_traffic(layer, &t).total_bytes();
        println!("    k={k:>2}: tiling {t} -> {:.1} MB DRAM", q as f64 / 1e6);
    }
    println!("    (k=1 maximises the Psum block, minimising traffic — Section IV-A)");
}

fn ablate_balance(layer: &ConvLayer, mem: OnChipMemory) {
    println!("\n[2] bxy : R*z balance at fixed Psum budget (bxyz ~ S):");
    let s = mem.words();
    let r = layer.window_reuse();
    for alpha in [0.1, 0.3, 1.0, 3.0, 10.0] {
        // u = alpha * R * z with u*z = S.
        let z = (s / (alpha * r)).sqrt();
        let u = alpha * r * z;
        let side = (u / layer.batch() as f64).sqrt();
        let t = Tiling::clamped(
            layer,
            layer.batch(),
            z.round() as usize,
            side.round() as usize,
            side.round() as usize,
        );
        let q = our_dataflow_traffic(layer, &t).total_bytes();
        println!(
            "    bxy = {alpha:>4}*R*z: tiling {t} -> {:.1} MB DRAM",
            q as f64 / 1e6
        );
    }
    println!("    (traffic is minimised near alpha=1, the paper's condition)");
}

fn ablate_psum_location(layer: &ConvLayer) {
    println!("\n[3] Psums in LRegs vs in the GBuf (energy per MAC):");
    // LReg option: one 128B-LReg write per MAC.
    let lreg = reg_access_pj(128.0);
    // GBuf option: each MAC reads the Psum from the GBuf and writes it back
    // (2 accesses of a Psum-sized SRAM ~ 64KB) plus the Reg staging write.
    let gbuf = 2.0 * sram_access_pj(65536.0) + lreg;
    println!("    LReg Psums: {lreg:.2} pJ/MAC");
    println!(
        "    GBuf Psums: {gbuf:.2} pJ/MAC ({:.1}x worse)",
        gbuf / lreg
    );
    let macs = layer.macs() as f64;
    println!(
        "    on conv3_1 that is {:.1} mJ vs {:.1} mJ",
        lreg * macs / 1e9,
        gbuf * macs / 1e9
    );
}

fn ablate_memory_split(layer: &ConvLayer, mem: OnChipMemory) {
    println!("\n[4] fraction of S assigned to Psums (rest idles as buffers):");
    for frac in [0.25, 0.5, 0.75, 0.9, 0.97] {
        let sub = OnChipMemory::from_words(mem.words() * frac);
        let choice = search_ours(layer, sub);
        println!(
            "    psum share {:>4.0}%: {:.1} MB DRAM",
            frac * 100.0,
            choice.traffic.total_bytes() as f64 / 1e6
        );
    }
    println!("    (assigning most of S to Psums minimises traffic — Section IV-C;");
    println!("     the implementations use ~96% for LRegs, 4% for GBufs)");
    let _ = layer;
}

fn main() {
    banner(
        "Ablations",
        "Design choices of Sections IV-V on VGG-16 conv3_1",
    );
    let layer = mid_layer();
    let mem = OnChipMemory::from_kib(66.5);
    println!("MAC energy reference: {} pJ", table::MAC_PJ);
    ablate_k(&layer, mem);
    ablate_balance(&layer, mem);
    ablate_psum_location(&layer);
    ablate_memory_split(&layer, mem);
}
