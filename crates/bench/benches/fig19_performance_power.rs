//! Fig. 19: execution time (computing + waiting) and power dissipation of
//! the five implementations on VGG-16 batch 3, plus the speedup over
//! Eyeriss's published throughput (paper: 9.8–42.3×).

use clb_bench::{analyze_implementation, banner};
use eyeriss_model::vgg16_execution_seconds;

fn main() {
    banner(
        "Fig. 19",
        "Performance and power of the five implementations",
    );
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>10} {:>10}",
        "implem", "PEs", "compute(s)", "waiting(s)", "power(W)", "vs Eyeriss"
    );
    let eyeriss_s = vgg16_execution_seconds(3);
    for index in 1..=5 {
        let r = analyze_implementation(index);
        let freq = clb_core::ArchConfig::implementation(index).core_freq_hz;
        println!(
            "{:<10} {:>7} {:>12.3} {:>12.3} {:>10.3} {:>9.1}x",
            format!("#{index}"),
            clb_core::ArchConfig::implementation(index).pe_count(),
            r.compute_seconds(freq),
            r.waiting_seconds(freq),
            r.power_w(),
            eyeriss_s / r.seconds,
        );
    }
    println!("\npaper shape: time falls and power rises with more PEs; the waiting");
    println!("share grows as compute shrinks relative to DRAM transfers; speedups");
    println!("over Eyeriss span 9.8-42.3x.");
}
