//! Table III: network totals of the Eyeriss comparison — DRAM access and
//! DRAM access per MAC at 173.5 KB effective on-chip memory.

use clb_bench::{banner, paper_workload};
use comm_bound::OnChipMemory;
use dataflow::{search_dataflow, DataflowKind};
use eyeriss_model::{
    EyerissConfig, EFFECTIVE_ONCHIP_KIB, PUBLISHED_DRAM_COMPRESSED_MB,
    PUBLISHED_DRAM_UNCOMPRESSED_MB,
};

fn main() {
    banner(
        "Table III",
        "Comparison with Eyeriss on DRAM access (173.5 KB effective memory)",
    );
    let net = paper_workload();
    let mem = OnChipMemory::from_kib(EFFECTIVE_ONCHIP_KIB);
    let macs = net.total_macs() as f64;
    let _ = EyerissConfig::default();

    let bound_mb: f64 = net
        .conv_layers()
        .map(|l| comm_bound::dram_bound_bytes(&l.layer, mem) / 1e6)
        .sum();
    let ours_mb: f64 = net
        .conv_layers()
        .map(|l| {
            search_dataflow(DataflowKind::Ours, &l.layer, mem)
                .unwrap()
                .traffic
                .total_bytes() as f64
                / 1e6
        })
        .sum();

    println!("{:<24} {:>12} {:>16}", "", "DRAM (MB)", "DRAM access/MAC");
    // The paper's access/MAC metric is words per MAC (274.8 MB over the
    // 46 GMAC workload at 16-bit words gives its 0.0030).
    let words_per_mac = |mb: f64| mb * 1e6 / 2.0 / macs;
    let print_row = |name: &str, mb: f64| {
        println!("{:<24} {:>12.1} {:>16.4}", name, mb, words_per_mac(mb));
    };
    print_row("Lower bound", bound_mb);
    print_row("Our dataflow", ours_mb);
    print_row("Eyeriss (compressed)", PUBLISHED_DRAM_COMPRESSED_MB);
    print_row("Eyeriss (uncompressed)", PUBLISHED_DRAM_UNCOMPRESSED_MB);

    println!(
        "\nreduction vs uncompressed Eyeriss: {:.1}%  (paper: 43.3%)",
        (1.0 - ours_mb / PUBLISHED_DRAM_UNCOMPRESSED_MB) * 100.0
    );
    println!(
        "reduction vs compressed Eyeriss:   {:.1}%  (paper: 6.7%)",
        (1.0 - ours_mb / PUBLISHED_DRAM_COMPRESSED_MB) * 100.0
    );
    println!("paper values: bound 274.8 MB (0.0030), ours 299.7 MB (0.0033),");
    println!("              Eyeriss compressed 321.3 MB (0.0035), uncompressed 528.8 MB (0.0057)");
}
