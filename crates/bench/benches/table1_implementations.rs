//! Table I: the five implementations of the proposed architecture.

use accel_sim::ArchConfig;
use clb_bench::banner;

fn main() {
    banner("Table I", "Five implementations of our architecture");
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Implementation #", "1", "2", "3", "4", "5"
    );
    let configs: Vec<ArchConfig> = (1..=5).map(ArchConfig::implementation).collect();
    let row = |name: &str, f: &dyn Fn(&ArchConfig) -> String| {
        print!("{name:<26}");
        for c in &configs {
            print!(" {:>8}", f(c));
        }
        println!();
    };
    row("# of PEs", &|c| format!("{}x{}", c.pe_rows, c.pe_cols));
    row("GBuf size (KB)", &|c| {
        format!("{:.3}", c.gbuf_bytes() as f64 / 1024.0)
    });
    row("LReg size/PE (B)", &|c| {
        format!("{}", c.lreg_bytes_per_pe())
    });
    row("GReg size (KB)", &|c| format!("{}", c.greg_bytes / 1024));
    row("Effective memory (KB)", &|c| {
        format!("{:.3}", c.effective_onchip_bytes() as f64 / 1024.0)
    });

    // Paper values for eyeball comparison.
    println!("\npaper: PEs 16x16/32x16/32x32/32x32/64x32; GBuf 2.5/2.5/2.5/3.625/3.625 KB;");
    println!("       LReg 256/128/64/128/64 B; GReg 10/15/18/27/36 KB;");
    println!("       effective 66.5/66.5/66.5/131.625/131.625 KB");
}
