//! Fig. 18: energy efficiency (pJ/MAC) of the five implementations against
//! the theoretical best value — DRAM at the communication bound + MAC + one
//! minimal LReg write per MAC. The paper's gap is 37–87%.

use clb_bench::{analyze_implementation, banner, paper_workload};
use clb_core::energy::energy_lower_bound_pj;
use comm_bound::OnChipMemory;
use eyeriss_model::PUBLISHED_ONCHIP_PJ_PER_MAC;

fn bound_pj_per_mac(kib: f64) -> f64 {
    let net = paper_workload();
    let macs = net.total_macs();
    let mem = OnChipMemory::from_kib(kib);
    let dram_words: f64 = net
        .conv_layers()
        .map(|l| comm_bound::dram_bound_words(&l.layer, mem))
        .sum();
    energy_lower_bound_pj(macs, dram_words) / macs as f64
}

fn main() {
    banner(
        "Fig. 18",
        "Energy efficiency (pJ/MAC) with component breakdown",
    );
    let macs = paper_workload().total_macs() as f64;

    println!(
        "{:<18} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "", "DRAM", "GBuf", "MAC", "LReg", "GReg", "others", "total"
    );
    let lb13 = bound_pj_per_mac(66.5);
    let lb45 = bound_pj_per_mac(131.625);
    let print_bound = |name: &str, total: f64| {
        let mac = energy_model::table::MAC_PJ;
        let lreg = energy_model::table::LREG_64B_PJ;
        println!(
            "{:<18} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2}",
            name,
            total - mac - lreg,
            0.0,
            mac,
            lreg,
            0.0,
            0.0,
            total,
        );
    };
    print_bound("Lower bound (1-3)", lb13);
    print_bound("Lower bound (4-5)", lb45);

    for index in 1..=5 {
        let r = analyze_implementation(index);
        let e = r.energy;
        println!(
            "{:<18} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2}",
            format!("Implem. {index}"),
            e.dram_pj / macs,
            e.gbuf_pj / macs,
            e.mac_pj / macs,
            e.lreg_pj() / macs,
            e.greg_pj / macs,
            e.other_pj / macs,
            r.pj_per_mac(),
        );
    }

    println!("\ngap to the theoretical best (paper: 37-87%):");
    for index in 1..=5 {
        let r = analyze_implementation(index);
        let lb = if index <= 3 { lb13 } else { lb45 };
        println!(
            "  implementation {index}: {:+.0}%",
            (r.pj_per_mac() / lb - 1.0) * 100.0
        );
    }

    let r1 = analyze_implementation(1);
    let onchip = (r1.energy.total_pj() - r1.energy.dram_pj) / macs;
    println!(
        "\non-chip pJ/MAC of implementation 1: {onchip:.2} vs Eyeriss's published {PUBLISHED_ONCHIP_PJ_PER_MAC} \
         (paper: 2.61-3.68x more efficient)"
    );
    println!("paper shape: MAC + LReg dominate (computation-dominant design); DRAM and");
    println!("MAC components sit at their lower bounds; extra LReg energy is static.");
}
