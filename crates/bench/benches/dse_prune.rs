//! The staged-DSE pruning gate: a ≥ 10⁵-candidate architecture grid over
//! **all of VGG-16 at batch 3**, swept by the bound-pruned staged engine.
//!
//! Run with `cargo bench -p clb-bench --bench dse_prune`. The run first
//! proves **losslessness** on a control subset: the staged frontier over 64
//! evenly-spaced candidates must be bit-identical to `rank_entries` over
//! the serial unpruned full sweep, for every objective. Then it times the
//! full grid and enforces the acceptance bar: the warm pruned sweep must
//! beat the *projected* cost of evaluating the same grid unpruned (the
//! measured per-candidate full-model cost × the grid's unique count) by
//! **≥ 20×**. The run prints the prune rate and the measured ratio, and
//! exits non-zero if parity or the bar is missed.

use std::time::Instant;

use accel_sim::ArchConfig;
use clb_bench::banner;
use clb_core::{
    rank_entries, staged_sweep_archs_network, sweep_archs_network, Objective, SweepCost,
};
use clb_service::api;
use conv_model::workloads;
use criterion::black_box;

/// The grid floor the gate sweeps — the ISSUE's "million-candidate engine"
/// acceptance scale.
const MIN_CANDIDATES: usize = 100_000;

/// Control-subset size for the bit-identity check (evaluated unpruned, so
/// it must stay affordable: 64 full-model evaluations).
const CONTROL: usize = 64;

/// Sample size for projecting the unpruned cost of the full grid.
const PROJECTION_SAMPLE: usize = 16;

/// The acceptance bar: warm pruned sweep ≥ 20× cheaper than the projected
/// unpruned sweep.
const MIN_SPEEDUP: f64 = 20.0;

/// The ≥ 10⁵-candidate grid: a wide DSE net — PE dims on a geometric
/// ladder spanning 16 to 4096 PEs, buffer sizes from memory-starved to
/// generous. Every axis combination is a valid architecture (PE dims are
/// multiples of 4, so every group size divides). The shape matters for the
/// speedup gate: most of the space is *provably* dominated (too few PEs to
/// beat the frontier's compute floor, or buffers so starved the traffic
/// floor loses on transfer time), which is exactly the regime the bound
/// stage exists for.
fn grid() -> Vec<ArchConfig> {
    let axes: [Vec<usize>; 9] = [
        vec![4, 8, 12, 16, 24, 32, 64], // pe_rows
        vec![4, 8, 12, 16, 24, 32, 64], // pe_cols
        vec![1, 2, 4],                  // group_rows
        vec![1, 2, 4],                  // group_cols
        vec![16, 32, 64, 128],          // lreg_entries_per_pe
        vec![96, 256, 640, 1024, 1600], // igbuf_entries
        vec![64, 256, 1024],            // wgbuf_entries
        vec![16_384, 36_864],           // greg_bytes
        vec![32, 64],                   // greg_segment_entries
    ];
    let base = ArchConfig::implementation(1);
    let archs = api::archs_from_axes_staged(&axes, &base).expect("bench grid is valid");
    assert!(
        archs.len() >= MIN_CANDIDATES,
        "grid too small: {} < {MIN_CANDIDATES}",
        archs.len()
    );
    archs
}

/// The serialized form of a kept frontier — byte equality of this string
/// is wire-level bit identity.
fn rendered<R: SweepCost + serde::Serialize>(entries: &[clb_core::ArchSweepEntry<R>]) -> String {
    entries
        .iter()
        .map(|entry| match &entry.outcome {
            Ok(report) => format!(
                "{}=>{}",
                serde_json::to_string_pretty(&entry.arch).unwrap(),
                serde_json::to_string_pretty(report).unwrap()
            ),
            Err(e) => format!(
                "{}=>error:{e}",
                serde_json::to_string_pretty(&entry.arch).unwrap()
            ),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    banner(
        "staged DSE pruning gate",
        "Bound-pruned sweep of a 100k+ candidate grid over VGG-16 @ batch 3",
    );
    let net = workloads::vgg16(3);
    let archs = grid();
    println!("grid: {} candidates", archs.len());

    // ---- Gate 1: lossless pruning on a control subset ------------------
    // 64 evenly-spaced candidates, evaluated both ways for every
    // objective: the staged frontier must equal the unpruned oracle
    // ranking bit for bit.
    let stride = archs.len() / CONTROL;
    let control: Vec<ArchConfig> = archs
        .iter()
        .step_by(stride)
        .take(CONTROL)
        .copied()
        .collect();
    let oracle_start = Instant::now();
    let oracle_entries = sweep_archs_network(&net, &control);
    let oracle_time = oracle_start.elapsed();
    for objective in Objective::ALL {
        let staged = staged_sweep_archs_network(&net, &control, objective, 8, |_| {});
        let oracle = rank_entries(sweep_archs_network(&net, &control), objective, 8);
        assert_eq!(
            rendered(&staged.entries),
            rendered(&oracle),
            "staged frontier diverged from the unpruned oracle (objective {objective:?})"
        );
        assert_eq!(
            staged.pruned + staged.evaluated,
            staged.unique as u64,
            "funnel accounting broken"
        );
    }
    println!(
        "parity: staged == unpruned oracle on {CONTROL} control candidates, all {} objectives",
        Objective::ALL.len()
    );

    // ---- Gate 2: warm pruned sweep >= 20x the projected unpruned cost --
    // Cold pass to warm the plan/search caches, then the timed warm pass.
    let cold_start = Instant::now();
    let cold = staged_sweep_archs_network(&net, &archs, Objective::Cycles, 8, |_| {});
    let cold_time = cold_start.elapsed();
    let warm_start = Instant::now();
    let warm = staged_sweep_archs_network(&net, &archs, Objective::Cycles, 8, |_| {});
    let warm_time = warm_start.elapsed();
    black_box(&warm);
    assert_eq!(
        rendered(&cold.entries),
        rendered(&warm.entries),
        "warm sweep must reproduce the cold frontier"
    );

    // Projected unpruned cost: per-candidate full-model evaluation cost
    // (measured on a warm-cache sample so the projection is conservative)
    // scaled to the grid's unique count.
    let sample: Vec<ArchConfig> = control.iter().take(PROJECTION_SAMPLE).copied().collect();
    let sample_start = Instant::now();
    black_box(sweep_archs_network(&net, &sample));
    let sample_time = sample_start.elapsed();
    let per_candidate = sample_time.as_secs_f64() / sample.len() as f64;
    let projected = per_candidate * warm.unique as f64;
    let speedup = projected / warm_time.as_secs_f64();
    let prune_rate = warm.pruned as f64 / warm.unique as f64;

    println!(
        "funnel: {} unique -> {} pruned ({:.1}% prune rate) -> {} evaluated -> {} kept",
        warm.unique,
        warm.pruned,
        prune_rate * 100.0,
        warm.evaluated,
        warm.entries.len()
    );
    println!(
        "cold sweep: {cold_time:.2?}; warm sweep: {warm_time:.2?}; \
         unpruned oracle ({CONTROL} candidates): {oracle_time:.2?}"
    );
    println!(
        "projected unpruned grid: {projected:.1}s ({per_candidate:.4}s/candidate x {} unique)",
        warm.unique
    );
    println!("speedup: {speedup:.1}x (bar: >= {MIN_SPEEDUP:.0}x)");
    black_box(oracle_entries);
    assert!(
        speedup >= MIN_SPEEDUP,
        "pruned sweep speedup {speedup:.1}x below the {MIN_SPEEDUP:.0}x bar"
    );
    println!("PASS");
}
