//! Criterion benchmark of the cycle-simulator hot path: the retained
//! per-block reference walk vs. the block-class engine, on the paper's
//! heaviest workload shape (every VGG-16 conv layer at batch 64 under its
//! planned tiling, Table I implementation 1).
//!
//! Run with `cargo bench -p clb-bench --bench sim_hotpath`. The run first
//! proves *bit identity* (every `SimStats` field, stalls and utilizations
//! included) between the class-based `simulate` and `simulate_reference`
//! on the full workload, then times both and enforces the acceptance bar:
//! class-based must be ≥ 10× faster. The run prints the measured ratio and
//! exits non-zero if parity or the bar is missed.

use std::time::{Duration, Instant};

use accel_sim::{simulate, simulate_reference, ArchConfig, SimStats};
use conv_model::ConvLayer;
use criterion::{black_box, Criterion};
use dataflow::Tiling;

fn workload() -> (ArchConfig, Vec<(String, ConvLayer, Tiling)>) {
    let arch = ArchConfig::implementation(1);
    let layers = conv_model::workloads::vgg16(64)
        .conv_layers()
        .map(|named| {
            let tiling = clb_core::plan_for_arch(&named.layer, &arch)
                .unwrap_or_else(|e| panic!("{}: {e}", named.name));
            (named.name.clone(), named.layer, tiling)
        })
        .collect();
    (arch, layers)
}

fn assert_bit_identical(name: &str, fast: &SimStats, slow: &SimStats) {
    assert_eq!(fast, slow, "{name}: stats diverged");
    let (uf, us) = (fast.utilization, slow.utilization);
    for (field, a, b) in [
        ("gbuf", uf.gbuf, us.gbuf),
        ("greg", uf.greg, us.greg),
        ("lreg", uf.lreg, us.lreg),
        ("memory_overall", uf.memory_overall, us.memory_overall),
        ("pe", uf.pe, us.pe),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}: utilization.{field} bits diverged ({a} vs {b})"
        );
    }
}

/// Median wall-clock of `f` over `samples` runs.
fn measure<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let (arch, layers) = workload();

    // Parity proof before any timing: the fast path is only interesting if
    // it is the same simulator.
    let mut total_blocks = 0u64;
    for (name, layer, tiling) in &layers {
        let fast = simulate(layer, tiling, &arch).unwrap();
        let slow = simulate_reference(layer, tiling, &arch).unwrap();
        assert_bit_identical(name, &fast, &slow);
        total_blocks += fast.blocks;
    }
    println!(
        "parity: class-based == per-block reference on all {} VGG-16 conv layers \
         @ batch 64 ({total_blocks} blocks total)",
        layers.len()
    );

    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    c.bench_function("reference/simulate/vgg16_b64", |b| {
        b.iter(|| {
            for (_, layer, tiling) in &layers {
                black_box(simulate_reference(black_box(layer), tiling, &arch).unwrap());
            }
        })
    });
    c.bench_function("classes/simulate/vgg16_b64", |b| {
        b.iter(|| {
            for (_, layer, tiling) in &layers {
                black_box(simulate(black_box(layer), tiling, &arch).unwrap());
            }
        })
    });

    // Acceptance check: class-based must be ≥ 10× faster than per-block.
    let reference_t = measure(3, || {
        for (_, layer, tiling) in &layers {
            black_box(simulate_reference(black_box(layer), tiling, &arch).unwrap());
        }
    });
    let classes_t = measure(5, || {
        for (_, layer, tiling) in &layers {
            black_box(simulate(black_box(layer), tiling, &arch).unwrap());
        }
    });
    let speedup = reference_t.as_secs_f64() / classes_t.as_secs_f64().max(1e-9);
    println!("\nspeedup: {speedup:.1}x   (per-block {reference_t:?} vs class-based {classes_t:?})");
    assert!(
        speedup >= 10.0,
        "class-based simulate must be >= 10x faster than the per-block reference \
         on VGG-16 @ batch 64, got {speedup:.1}x"
    );
}
