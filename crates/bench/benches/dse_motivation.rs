//! Motivation experiment (Section II-B): exhaustive DSE is intractable and
//! budgeted heuristic search only approaches — never beats — the
//! theory-guided dataflow.

use clb_bench::banner;
use comm_bound::OnChipMemory;
use conv_model::workloads;
use dataflow::dse::{random_dse, search_space_size};

fn main() {
    banner(
        "DSE motivation",
        "Search-space sizes and random-DSE convergence (VGG-16 conv3_1, 66.5 KB)",
    );
    let net = workloads::vgg16(3);
    println!("two-level loop-order x tiling search space per layer:");
    for l in net.conv_layers().take(5) {
        println!(
            "  {:<10} {:>12.2e} points",
            l.name,
            search_space_size(&l.layer)
        );
    }
    println!("  (the paper quotes 7.2e13 for just two loops of one layer)");

    let layer = net.layer(4).unwrap().layer;
    let mem = OnChipMemory::from_kib(66.5);
    let ours = dataflow::search_ours(&layer, mem);
    println!(
        "\ntheory-guided optimum: {:.2} MB with tiling {}",
        ours.traffic.total_bytes() as f64 / 1e6,
        ours.tiling
    );
    println!("\nrandom-sampling DSE (seed 42):");
    println!(
        "{:>10} {:>10} {:>12} {:>8}",
        "samples", "feasible", "best (MB)", "gap"
    );
    for samples in [10u64, 100, 1_000, 10_000, 100_000] {
        let out = random_dse(&layer, mem, samples, 42);
        match out.best {
            Some(best) => println!(
                "{:>10} {:>10} {:>12.2} {:>7.2}x",
                out.samples,
                out.feasible,
                best.traffic.total_bytes() as f64 / 1e6,
                best.traffic.total_words() as f64 / ours.traffic.total_words() as f64,
            ),
            None => println!(
                "{:>10} {:>10} {:>12} {:>8}",
                out.samples, out.feasible, "-", "no feasible sample"
            ),
        }
    }
    println!("\nthe gap approaches 1.0 from above: sampling can only rediscover");
    println!("what the closed form already knows (and explains).");
}
