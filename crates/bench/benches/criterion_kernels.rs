//! Criterion micro-benchmarks of the workspace's computational kernels:
//! tiling search, cycle simulation, reference convolution and the pebble
//! partitioner.

use comm_bound::OnChipMemory;
use conv_model::{reference, ConvLayer, Padding, Tensor4};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tiling_search(c: &mut Criterion) {
    let layer = ConvLayer::square(3, 256, 56, 128, 3, 1).unwrap();
    let mem = OnChipMemory::from_kib(66.5);
    c.bench_function("search_ours/conv3_1", |b| {
        b.iter(|| dataflow::search_ours(black_box(&layer), black_box(mem)))
    });
    c.bench_function("found_minimum/conv3_1", |b| {
        b.iter(|| dataflow::found_minimum(black_box(&layer), black_box(mem)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let layer = ConvLayer::square(3, 256, 56, 128, 3, 1).unwrap();
    let arch = accel_sim::ArchConfig::example();
    let tiling = clb_core::plan_for_arch(&layer, &arch).unwrap();
    c.bench_function("simulate/conv3_1", |b| {
        b.iter(|| accel_sim::simulate(black_box(&layer), black_box(&tiling), black_box(&arch)))
    });
}

fn bench_reference_conv(c: &mut Criterion) {
    let layer = ConvLayer::builder()
        .batch(1)
        .out_channels(16)
        .in_channels(16)
        .input(32, 32)
        .kernel(3, 3)
        .padding(Padding::same(3))
        .build()
        .unwrap();
    let input = Tensor4::from_fn(1, 16, 32, 32, |_, c, h, w| (c + h + w) as f64);
    let weights = Tensor4::from_fn(16, 16, 3, 3, |n, c, h, w| (n + c + h + w) as f64);
    c.bench_function("reference_convolve/16x32x32", |b| {
        b.iter(|| reference::convolve(black_box(&layer), black_box(&input), black_box(&weights)))
    });
}

fn bench_pebble(c: &mut Criterion) {
    let layer = ConvLayer::builder()
        .batch(1)
        .out_channels(2)
        .in_channels(2)
        .input(6, 6)
        .kernel(3, 3)
        .padding(Padding::none())
        .build()
        .unwrap();
    let conv = pebble::build_conv_dag(&layer);
    c.bench_function("greedy_partition/tiny_conv", |b| {
        b.iter(|| pebble::greedy_partition(black_box(&conv.dag), black_box(32)))
    });
}

criterion_group!(
    benches,
    bench_tiling_search,
    bench_simulator,
    bench_reference_conv,
    bench_pebble
);
criterion_main!(benches);
