//! Fig. 16: per-layer GBuf access volume — Eyeriss vs our five
//! implementations (log-scale axis in the paper; the reduction factor is the
//! headline: 10.9–15.8×).

use clb_bench::{analyze_implementation, banner, mb, paper_workload};
use eyeriss_model::EyerissConfig;

fn main() {
    banner(
        "Fig. 16",
        "Per-layer GBuf access volume (MB), Eyeriss vs implementations 1-5",
    );
    let net = paper_workload();
    let cfg = EyerissConfig::default();
    let reports: Vec<_> = (1..=5).map(analyze_implementation).collect();

    println!(
        "{:<10} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "layer", "Eyeriss", "impl.1", "impl.2", "impl.3", "impl.4", "impl.5"
    );
    let mut eyeriss_total = 0.0f64;
    let mut impl_totals = [0.0f64; 5];
    for (i, l) in net.conv_layers().enumerate() {
        let e = cfg.gbuf_access_words(&l.layer) as f64 * 2.0;
        eyeriss_total += e;
        print!("{:<10} {:>10.0}", l.name, mb(e));
        for (j, r) in reports.iter().enumerate() {
            let v = r.layers[i].stats.gbuf.total_bytes() as f64;
            impl_totals[j] += v;
            print!(" {:>9.1}", mb(v));
        }
        println!();
    }

    println!("\nGBuf reduction factors vs Eyeriss (paper: 10.9-15.8x):");
    for (j, total) in impl_totals.iter().enumerate() {
        println!("  implementation {}: {:.1}x", j + 1, eyeriss_total / total);
    }
}
