//! Criterion benchmark of the tiling-search hot path: the retained naive
//! reference vs. the pruned/parallel/memoized engine, on the paper's
//! workload (`found_minimum` over all 13 VGG-16 conv layers at 66.5 KiB).
//!
//! Run with `cargo bench --bench search_hotpath`. The run first proves
//! result parity (identical chosen tilings and traffic totals per layer),
//! then times three variants:
//!
//! * `naive/found_minimum/vgg16` — the reference quadruple loop;
//! * `engine/found_minimum/vgg16/cold` — the engine with the memo cache
//!   cleared before every iteration (tables + pruning + threads only);
//! * `engine/found_minimum/vgg16/warm` — the engine with the cache left
//!   warm, the regime every multi-network figure bench actually runs in.
//!
//! The acceptance bar is engine-cold ≥ 5× faster than naive; the run
//! prints the measured ratio and exits non-zero if the bar is missed.

use std::time::{Duration, Instant};

use comm_bound::OnChipMemory;
use criterion::{black_box, Criterion};
use dataflow::engine::{self, naive};

fn vgg_layers() -> Vec<conv_model::ConvLayer> {
    conv_model::workloads::vgg16(3)
        .conv_layers()
        .map(|l| l.layer)
        .collect()
}

fn prove_parity(layers: &[conv_model::ConvLayer], mem: OnChipMemory) {
    engine::clear_search_cache();
    for (i, layer) in layers.iter().enumerate() {
        let fast = engine::found_minimum(layer, mem);
        let slow = naive::found_minimum(layer, mem);
        assert_eq!(
            fast, slow,
            "engine diverged from the naive reference on VGG-16 layer {i}"
        );
    }
    println!(
        "parity: engine == naive on all {} VGG-16 conv layers",
        layers.len()
    );
}

/// Median wall-clock of `f` over `samples` runs.
fn measure<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let layers = vgg_layers();
    let mem = OnChipMemory::from_kib(66.5);
    prove_parity(&layers, mem);

    // Criterion-style timing report for the three variants.
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    c.bench_function("naive/found_minimum/vgg16", |b| {
        b.iter(|| {
            for layer in &layers {
                black_box(naive::found_minimum(black_box(layer), mem));
            }
        })
    });
    c.bench_function("engine/found_minimum/vgg16/cold", |b| {
        b.iter(|| {
            engine::clear_search_cache();
            for layer in &layers {
                black_box(engine::found_minimum(black_box(layer), mem));
            }
        })
    });
    c.bench_function("engine/found_minimum/vgg16/warm", |b| {
        b.iter(|| {
            for layer in &layers {
                black_box(engine::found_minimum(black_box(layer), mem));
            }
        })
    });

    // Acceptance check: engine-cold must be ≥ 5× faster than naive.
    let naive_t = measure(3, || {
        for layer in &layers {
            black_box(naive::found_minimum(black_box(layer), mem));
        }
    });
    let cold_t = measure(3, || {
        engine::clear_search_cache();
        for layer in &layers {
            black_box(engine::found_minimum(black_box(layer), mem));
        }
    });
    let speedup = naive_t.as_secs_f64() / cold_t.as_secs_f64().max(1e-9);
    let stats = engine::cache_stats();
    println!("\nspeedup (cold cache): {speedup:.1}x   (naive {naive_t:?} vs engine {cold_t:?})");
    println!(
        "cache after run: {} hits / {} misses ({:.0}% hit rate)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    assert!(
        speedup >= 5.0,
        "engine must be >= 5x faster than the naive reference, got {speedup:.1}x"
    );
}
