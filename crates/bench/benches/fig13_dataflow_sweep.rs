//! Fig. 13: DRAM access volume of VGG-16 (batch 3) under different dataflows
//! as the effective on-chip memory sweeps 16–256 KB.
//!
//! Series: the Eq. 15 lower bound, the "found minimum" (best dataflow × best
//! tiling per layer), our dataflow, and the seven Fig. 12 baselines.
//! `InR-B` is infeasible below the size of one input-channel plane of the
//! early layers (a 224×224 plane alone is 98 KB) — printed as `-`.

use clb_bench::{banner, gb, paper_workload};
use comm_bound::OnChipMemory;
use dataflow::{found_minimum, search_dataflow, DataflowKind};

fn main() {
    banner(
        "Fig. 13",
        "DRAM access volume (GB) vs effective on-chip memory (KB), VGG-16 batch 3",
    );
    let net = paper_workload();
    let sizes: Vec<f64> = (1..=16).map(|i| i as f64 * 16.0).collect();

    print!("{:<16}", "KB:");
    for kib in &sizes {
        print!(" {:>7.0}", kib);
    }
    println!();

    // Lower bound row.
    print!("{:<16}", "Lower bound");
    for &kib in &sizes {
        let mem = OnChipMemory::from_kib(kib);
        let total: f64 = net
            .conv_layers()
            .map(|l| comm_bound::dram_bound_bytes(&l.layer, mem))
            .sum();
        print!(" {:>7.3}", gb(total));
    }
    println!();

    // Found minimum row.
    print!("{:<16}", "Found minimum");
    for &kib in &sizes {
        let mem = OnChipMemory::from_kib(kib);
        let total: u64 = net
            .conv_layers()
            .map(|l| found_minimum(&l.layer, mem).traffic.total_bytes())
            .sum();
        print!(" {:>7.3}", gb(total as f64));
    }
    println!();

    for kind in DataflowKind::ALL {
        print!("{:<16}", kind.name());
        for &kib in &sizes {
            let mem = OnChipMemory::from_kib(kib);
            let mut total = 0u64;
            let mut feasible = true;
            for l in net.conv_layers() {
                match search_dataflow(kind, &l.layer, mem) {
                    Some(c) => total += c.traffic.total_bytes(),
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible {
                print!(" {:>7.3}", gb(total as f64));
            } else {
                print!(" {:>7}", "-");
            }
        }
        println!();
    }

    println!("\npaper shape: ours tracks the found minimum (≈4.5% apart) and sits ~10%");
    println!("above the lower bound; InR-A/WtR-A are the runners-up; OutR-A is worst");
    println!("(orders of magnitude above); all series fall as memory grows.");
}
