//! Throughput gate for the analysis service: warm-cache requests/second
//! through the running server must beat the naive spawn-per-request
//! baseline the service exists to replace.
//!
//! * **Baseline** — what consumers do without a resident service: per
//!   query, spawn a fresh worker (standing in for process startup, which
//!   only makes the baseline look better than reality), clear the tiling
//!   search memo cache (a new process starts cold) and run the full
//!   analysis.
//! * **Service** — a `clb-service` server on an ephemeral port, measured
//!   over real TCP with concurrent clients after one warming pass, the
//!   regime a long-running deployment operates in (response cache + memo
//!   cache + coalescing all hot).
//!
//! The run prints both rates and exits non-zero unless the service wins.
//! It also asserts memory sanity under sustained load: every cache the
//! service layers on top of the pipeline reports entries ≤ its bound.
//!
//! A second gate measures the keep-alive tier itself: ~1k concurrent
//! clients issuing N requests each over **persistent** connections versus
//! the same load opening a fresh connection per request. Keep-alive must
//! win by ≥ 2× — the connection-amortization claim is measured, not
//! assumed.
//!
//! A third gate measures the event-driven idle tier: thousands of
//! keep-alive clients (≥ 4k when the fd limit allows) park on the epoll
//! poller after one request each. The process thread count must not move
//! with the connection count — an idle connection costs a file descriptor
//! and a read buffer, not a thread — every parked socket must still be
//! registered, still serve a follow-up request, and drain cleanly with
//! zero sheds and zero idle reaps.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use clb_service::chaos::{request_bytes, ChaosClient};
use clb_service::{api, CacheStatsResponse, Server, ServiceConfig};
use serde::Value;

// `/v1/sweep` exhaustively searches all eight dataflows, the workload whose
// cold cost the resident service exists to amortize (one memoized search
// per process vs. one per query).
const ENDPOINT: &str = "/v1/sweep";
const QUERIES: [&str; 3] = [
    "{\"co\":256,\"size\":28,\"ci\":128,\"batch\":3}",
    "{\"co\":128,\"size\":56,\"ci\":64,\"batch\":3}",
    "{\"co\":512,\"size\":14,\"ci\":256,\"batch\":3}",
];

fn baseline_spawn_per_request(requests: usize) -> Duration {
    let start = Instant::now();
    for i in 0..requests {
        let body = QUERIES[i % QUERIES.len()];
        // One thread per request ≈ one process per request, minus the
        // exec/link/init cost the real one-shot CLI also pays.
        std::thread::spawn(move || {
            dataflow::clear_search_cache();
            let parsed: Value = serde_json::from_str(body).expect("bench body parses");
            let response = api::dispatch(ENDPOINT, &parsed);
            assert_eq!(response.status, 200);
            response.body.len()
        })
        .join()
        .expect("baseline worker");
    }
    start.elapsed()
}

fn http_request(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, usize) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .expect("status")
        .parse()
        .expect("code");
    let len = raw.split_once("\r\n\r\n").map_or(0, |(_, b)| b.len());
    (status, len)
}

fn service_warm(addr: std::net::SocketAddr, clients: usize, per_client: usize) -> Duration {
    // Warm every distinct query once (the first request pays the search).
    for body in QUERIES {
        let (status, _) = http_request(addr, ENDPOINT, body);
        assert_eq!(status, 200);
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                for i in 0..per_client {
                    let body = QUERIES[(c + i) % QUERIES.len()];
                    let (status, len) = http_request(addr, ENDPOINT, body);
                    assert_eq!(status, 200);
                    assert!(len > 0);
                }
            });
        }
    });
    start.elapsed()
}

/// The connection-lifecycle gate's request: `/healthz` isolates exactly
/// the cost keep-alive removes (connection setup + per-connection server
/// bookkeeping) from analysis compute, which both modes share equally.
const LIFECYCLE_PATH: &str = "/healthz";

/// `clients` concurrent peers, each issuing `per_client` requests over ONE
/// persistent socket. Connections are established *before* the clock
/// starts: the steady state being measured is reuse, and a deliberate
/// connect storm would only flatter keep-alive further.
fn persistent_connections(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
) -> Duration {
    let mut sockets: Vec<ChaosClient> = (0..clients)
        .map(|_| ChaosClient::connect(addr, Duration::from_secs(120)))
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in &mut sockets {
            scope.spawn(move || {
                for _ in 0..per_client {
                    client
                        .send_all(&request_bytes("GET", LIFECYCLE_PATH, "", true))
                        .expect("send on persistent socket");
                    let resp = client.read_response().expect("framed response");
                    assert_eq!(resp.status, 200);
                }
            });
        }
    });
    start.elapsed()
}

/// The same load, close-per-request: every request pays connect + accept +
/// per-connection server setup + teardown.
fn close_per_request(addr: std::net::SocketAddr, clients: usize, per_client: usize) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                for _ in 0..per_client {
                    let mut client = ChaosClient::connect(addr, Duration::from_secs(120));
                    client
                        .send_all(&request_bytes("GET", LIFECYCLE_PATH, "", false))
                        .expect("send on fresh socket");
                    let resp = client.read_response().expect("framed response");
                    assert_eq!(resp.status, 200);
                }
            });
        }
    });
    start.elapsed()
}

/// A numeric field from `/proc/self/status`, e.g. `Threads:` or `VmRSS:`
/// (the latter in KiB). `None` off Linux or if the field is absent.
fn proc_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// The soft `RLIMIT_NOFILE` from `/proc/self/limits`; conservative 1024
/// when unreadable.
fn nofile_soft_limit() -> u64 {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits
                .lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1024)
}

/// Idle-scale gate: park `target` keep-alive clients (4096 when the fd
/// budget allows — client and server sockets share this process's limit,
/// hence the /3 with headroom) and prove the event tier holds them without
/// growing threads, then serves and drains them all.
fn idle_scale_gate() {
    let soft = nofile_soft_limit();
    let target = ((soft.saturating_sub(512) / 3) as usize).clamp(256, 4096);
    let server = Server::spawn(ServiceConfig {
        max_connections: target + 512,
        idle_timeout: Duration::from_secs(60),
        ..ServiceConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();

    let threads_before = proc_status_field("Threads:").expect("read /proc/self/status");
    let mut clients: Vec<ChaosClient> = Vec::with_capacity(target);
    let start = Instant::now();
    for _ in 0..target {
        let mut client = ChaosClient::connect(addr, Duration::from_secs(120));
        client
            .send_all(&request_bytes("GET", LIFECYCLE_PATH, "", true))
            .expect("send on idle-scale socket");
        assert_eq!(client.read_response().expect("framed response").status, 200);
        clients.push(client);
    }
    let parked = start.elapsed();
    let threads_after = proc_status_field("Threads:").expect("read /proc/self/status");
    let rss_kib = proc_status_field("VmRSS:").unwrap_or(0);
    let open = server.stats_handle().snapshot().connections_open;
    println!(
        "idle-scale: {target} connections parked in {parked:?}; threads {threads_before} -> \
         {threads_after}, VmRSS {rss_kib} KiB (nofile soft limit {soft})"
    );
    assert_eq!(
        open, target as u64,
        "every parked client must stay registered"
    );
    let thread_growth = threads_after.saturating_sub(threads_before);
    assert!(
        thread_growth < 16,
        "thread count must be independent of connection count: \
         grew by {thread_growth} over {target} connections"
    );

    // Every parked socket is still live: a follow-up request must serve.
    for client in &mut clients {
        client
            .send_all(&request_bytes("GET", LIFECYCLE_PATH, "", true))
            .expect("send on parked socket");
        assert_eq!(client.read_response().expect("framed response").status, 200);
    }

    let stats_handle = server.stats_handle();
    let under_load = stats_handle.snapshot();
    assert_eq!(
        under_load.shed, 0,
        "nothing may be shed below the cap: {under_load:?}"
    );
    assert_eq!(
        under_load.idle_reaped, 0,
        "a 60s idle budget must not reap under load: {under_load:?}"
    );
    assert!(
        under_load.keepalive_reuses >= target as u64,
        "second requests must ride the parked sockets: {under_load:?}"
    );
    server.shutdown().expect("graceful shutdown");
    let stats = stats_handle.snapshot();
    println!(
        "idle-scale counters: {} keep-alive reuses, {} idle reaped (at drain), {} shed, {} drain-aborted",
        stats.keepalive_reuses, stats.idle_reaped, stats.shed, stats.drain_aborted
    );
    // `idle_reaped` counts drain-start reaps by design: the graceful drain
    // must find every one of the parked connections idle and close it.
    assert_eq!(
        stats.idle_reaped, target as u64,
        "drain start must reap exactly the parked connections: {stats:?}"
    );
    assert_eq!(
        stats.connections_open, 0,
        "shutdown must leave no connection registered: {stats:?}"
    );
    // Drain closed every parked socket from the server side.
    for mut client in clients {
        assert!(
            client.read_eof().expect("drained socket closes cleanly"),
            "drain must close parked connections"
        );
    }
}

fn main() {
    // Baseline first: it clears the process-wide search cache per request,
    // which must not race the service measurement.
    let baseline_requests = 12;
    let baseline = baseline_spawn_per_request(baseline_requests);
    let baseline_rps = baseline_requests as f64 / baseline.as_secs_f64();
    println!(
        "baseline/spawn-per-request       {baseline_requests} reqs in {baseline:?}  ({baseline_rps:.1} req/s)"
    );

    let server = Server::spawn(ServiceConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();
    let (clients, per_client) = (8, 32);
    let total = clients * per_client;
    let elapsed = service_warm(addr, clients, per_client);
    let service_rps = total as f64 / elapsed.as_secs_f64();
    println!(
        "service/warm-cache               {total} reqs in {elapsed:?}  ({service_rps:.1} req/s)"
    );
    println!(
        "speedup: {:.1}x  ({clients} concurrent clients)",
        service_rps / baseline_rps
    );

    // Bounded-memory sanity under the sustained load just generated.
    let mut raw = String::new();
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /v1/cache_stats HTTP/1.1\r\n\r\n").expect("send");
    stream.read_to_string(&mut raw).expect("read");
    let body = raw.split_once("\r\n\r\n").expect("http response").1;
    let stats: CacheStatsResponse = serde_json::from_str(body).expect("stats parse");
    println!(
        "caches: search {}/{} entries ({} evictions), responses {}/{} entries, {} coalesced",
        stats.search.entries,
        stats.search.capacity,
        stats.search.evictions,
        stats.service.response_cache_entries,
        stats.service.response_cache_capacity,
        stats.service.coalesced,
    );
    assert!(
        stats.search.entries <= stats.search.capacity,
        "search cache exceeded its LRU bound"
    );
    assert!(
        stats.service.response_cache_entries <= stats.service.response_cache_capacity,
        "response cache exceeded its LRU bound"
    );
    assert!(
        stats.service.responses_cached + stats.service.coalesced >= (total - QUERIES.len()) as u64,
        "warm requests must be served by the cache/coalescing layers"
    );
    server.shutdown().expect("graceful shutdown");

    assert!(
        service_rps > baseline_rps,
        "the resident service must beat spawn-per-request: {service_rps:.1} vs {baseline_rps:.1} req/s"
    );

    // ---- persistent-connection gate: keep-alive ≥ 2× close-per-request
    // at ~1k concurrent clients. A dedicated server with headroom above
    // the client count, so the connection cap never intrudes on the
    // measurement (close-mode teardown lags client-side closes slightly).
    let lifecycle_server = Server::spawn(ServiceConfig {
        max_connections: 4096,
        idle_timeout: Duration::from_secs(30),
        ..ServiceConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = lifecycle_server.addr();
    let (clients, per_client) = (1000, 10);
    let total = clients * per_client;
    let closed = close_per_request(addr, clients, per_client);
    let closed_rps = total as f64 / closed.as_secs_f64();
    println!(
        "lifecycle/close-per-request      {total} reqs in {closed:?}  ({closed_rps:.1} req/s, {clients} clients)"
    );
    let persistent = persistent_connections(addr, clients, per_client);
    let persistent_rps = total as f64 / persistent.as_secs_f64();
    println!(
        "lifecycle/keep-alive             {total} reqs in {persistent:?}  ({persistent_rps:.1} req/s, {clients} clients)"
    );
    let ratio = persistent_rps / closed_rps;
    println!("keep-alive speedup: {ratio:.1}x");
    let stats_handle = lifecycle_server.stats_handle();
    lifecycle_server.shutdown().expect("graceful shutdown");
    let stats = stats_handle.snapshot();
    println!(
        "lifecycle counters: {} keep-alive reuses, {} idle reaped, {} shed, {} drain-aborted",
        stats.keepalive_reuses, stats.idle_reaped, stats.shed, stats.drain_aborted
    );
    assert!(
        stats.keepalive_reuses >= (total - clients) as u64,
        "persistent mode must actually reuse its sockets: {stats:?}"
    );
    assert_eq!(stats.shed, 0, "the gate must measure reuse, not shedding");
    assert!(
        ratio >= 2.0,
        "keep-alive must be ≥ 2x close-per-request: {persistent_rps:.1} vs {closed_rps:.1} req/s ({ratio:.2}x)"
    );

    // ---- idle-scale gate: thousands of parked keep-alive connections on
    // the event tier, with the thread count pinned.
    idle_scale_gate();
}
