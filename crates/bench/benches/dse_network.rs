//! Criterion benchmark of the network-mode `/v1/dse` hot path: a
//! 16-candidate architecture sweep over **all of VGG-16 at batch 3**,
//! versus the serial per-candidate `/v1/network` oracle loop a client
//! would otherwise issue.
//!
//! Run with `cargo bench -p clb-bench --bench dse_network`. The run first
//! proves **bit identity**: every feasible candidate's `report` in the
//! sweep response equals the `/v1/network` response for that architecture
//! byte for byte (infeasible candidates must carry the identical
//! diagnosis `/v1/network` would 422 with). Then it times both paths and
//! enforces the acceptance bar: the warm-cache sweep (amortized by the
//! `(layer, arch)` plan cache and the flat `(candidate × layer)` rayon
//! fan-out) must be ≥ 5× faster than the cold serial oracle. The run
//! prints the measured ratio and exits non-zero if parity or the bar is
//! missed.

use std::time::{Duration, Instant};

use accel_sim::{ArchConfig, DramConfig};
use clb_service::api;
use criterion::black_box;
use serde::{Deserialize, Serialize, Value};

const CANDIDATES: usize = 16;

/// The 16-candidate grid: PE height × LReg depth around the Table I design
/// space.
fn candidates() -> Vec<ArchConfig> {
    let mut archs = Vec::new();
    for pe_rows in [16usize, 24, 32, 48] {
        for lreg in [64usize, 128, 256, 512] {
            archs.push(ArchConfig {
                pe_rows,
                pe_cols: 16,
                group_rows: 4,
                group_cols: 4,
                lreg_entries_per_pe: lreg,
                igbuf_entries: 1600,
                wgbuf_entries: 256,
                greg_bytes: 10 * 1024,
                greg_segment_entries: 64,
                core_freq_hz: 500e6,
                dram: DramConfig::default(),
            });
        }
    }
    assert_eq!(archs.len(), CANDIDATES);
    for arch in &archs {
        arch.validate().expect("bench candidates are valid");
    }
    archs
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn dse_body(archs: &[ArchConfig]) -> Value {
    obj(vec![
        (
            "target",
            obj(vec![
                ("network", Value::String("vgg16".to_string())),
                ("batch", Value::Number(3.0)),
            ]),
        ),
        (
            "candidates",
            Value::Array(archs.iter().map(Serialize::to_value).collect()),
        ),
    ])
}

/// The serial oracle: one `/v1/network` request per candidate — exactly
/// what a client without network-mode `/v1/dse` would issue.
fn serial_oracle(archs: &[ArchConfig]) -> Vec<Result<String, String>> {
    archs
        .iter()
        .map(|arch| {
            let req = obj(vec![
                ("net", Value::String("vgg16".to_string())),
                ("batch", Value::Number(3.0)),
                ("arch", Serialize::to_value(arch)),
            ]);
            match api::network_response(&req) {
                Ok(raw) => Ok(raw),
                Err(api::ApiError::Unprocessable(msg)) => Err(msg),
                Err(other) => panic!("oracle failed unexpectedly: {other:?}"),
            }
        })
        .collect()
}

fn clear_caches() {
    clb_core::clear_plan_cache();
    dataflow::clear_search_cache();
}

/// Median wall-clock of `f` over `samples` runs.
fn measure<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let archs = candidates();
    let body = dse_body(&archs);

    // ---- Parity proof before any timing -------------------------------
    clear_caches();
    let dse_raw = api::dse_response(&body).expect("sweep completes");
    let dse: Value = serde_json::from_str(&dse_raw).unwrap();
    let results = dse.get_field("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), CANDIDATES, "all candidates evaluated");

    let oracle = serial_oracle(&archs);
    let mut feasible = 0usize;
    for entry in results {
        let arch = ArchConfig::from_value(entry.get_field("arch").unwrap()).unwrap();
        let i = archs
            .iter()
            .position(|a| a.cache_key() == arch.cache_key())
            .expect("every result echoes a submitted candidate");
        match (&oracle[i], entry.get_field("error").unwrap()) {
            (Ok(network_raw), Value::Null) => {
                feasible += 1;
                let network: Value = serde_json::from_str(network_raw).unwrap();
                assert_eq!(
                    entry.get_field("report").unwrap(),
                    &network,
                    "candidate {i}: dse network report != /v1/network report"
                );
            }
            (Err(msg), Value::String(reason)) => {
                assert_eq!(msg, reason, "candidate {i}: diagnoses diverged");
            }
            (oracle_side, dse_side) => {
                panic!("candidate {i}: oracle {oracle_side:?} disagrees with dse {dse_side:?}")
            }
        }
    }
    println!(
        "parity: {CANDIDATES}-candidate network-mode /v1/dse sweep over VGG-16 (batch 3) is \
         bit-identical to the serial /v1/network oracle ({feasible} feasible)"
    );

    // ---- Timings ------------------------------------------------------
    // Cold serial oracle: what a client pays issuing candidates one-by-one
    // against cold caches.
    let cold_serial = measure(5, || {
        clear_caches();
        black_box(serial_oracle(&archs));
    });

    // Warm sweep: the production shape — repeated whole-model what-if
    // sweeps against the resident service, planning amortized by the
    // (layer, arch) cache.
    clear_caches();
    black_box(api::dse_response(&body).unwrap()); // warm the caches
    let warm_sweep = measure(10, || {
        black_box(api::dse_response(&body).unwrap());
    });

    let ratio = cold_serial.as_secs_f64() / warm_sweep.as_secs_f64();
    println!(
        "dse_network: serial /v1/network oracle (cold) {cold_serial:?}, network-mode /v1/dse \
         sweep (warm) {warm_sweep:?} — {ratio:.1}x"
    );
    assert!(
        ratio >= 5.0,
        "acceptance bar: warm-cache network sweep must be >= 5x the serial oracle, got {ratio:.2}x"
    );
}
