//! Table II: energy consumption of the basic operations (65 nm).

use clb_bench::banner;
use energy_model::{reg_access_pj, sram_access_pj, table};

fn main() {
    banner("Table II", "Energy consumption of operations (pJ)");
    println!("MAC                   {:>8.2}", table::MAC_PJ);
    println!("GBuf (0.5KB) access   {:>8.2}", table::GBUF_0_5KB_PJ);
    println!("GBuf (2KB) access     {:>8.2}", table::GBUF_2KB_PJ);
    println!("GBuf (3.125KB) access {:>8.2}", table::GBUF_3_125KB_PJ);
    println!("LReg (256B) access    {:>8.2}", table::LREG_256B_PJ);
    println!("LReg (128B) access    {:>8.2}", table::LREG_128B_PJ);
    println!("LReg (64B) access     {:>8.2}", table::LREG_64B_PJ);
    println!("DRAM (2GB) access     {:>8.2}", table::DRAM_PJ);

    println!("\nparametric model spot checks (CACTI-like log-log interpolation):");
    for kb in [0.5, 1.0, 2.0, 3.125, 8.0] {
        println!(
            "  SRAM {:>6.3} KB -> {:.3} pJ/access",
            kb,
            sram_access_pj(kb * 1024.0)
        );
    }
    for b in [64.0, 96.0, 128.0, 192.0, 256.0] {
        println!("  Reg  {:>6.0} B  -> {:.3} pJ/access", b, reg_access_pj(b));
    }
}
