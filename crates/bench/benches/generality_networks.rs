//! Extension experiment: the bound/dataflow/architecture pipeline on
//! networks beyond the paper's VGG-16 — AlexNet (large strided kernels) and
//! ResNet-50 (1×1 bottlenecks, R = 1 layers). The paper's theory claims
//! generality ("general convolution operations"); this bench demonstrates
//! it.

use clb_bench::banner;
use clb_core::Accelerator;
use comm_bound::OnChipMemory;
use conv_model::workloads;

fn main() {
    banner(
        "Generality",
        "Bound vs measured across network families (implementation 1)",
    );
    let acc = Accelerator::implementation(1);
    let mem = OnChipMemory::from_words(acc.arch().effective_onchip_words() as f64);

    println!(
        "{:<12} {:>7} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "network", "layers", "GMACs", "bound(MB)", "DRAM(MB)", "gap", "pJ/MAC"
    );
    for net in [
        workloads::vgg16(3),
        workloads::alexnet(3),
        workloads::resnet50(3),
    ] {
        let report = acc.analyze_network(&net).expect("network analyzable");
        let bound_mb: f64 = net
            .conv_layers()
            .map(|l| comm_bound::dram_bound_bytes(&l.layer, mem) / 1e6)
            .sum();
        let dram_mb = report.totals.dram.total_bytes() as f64 / 1e6;
        println!(
            "{:<12} {:>7} {:>10.1} {:>12.1} {:>12.1} {:>+8.1}% {:>9.2}",
            net.name(),
            net.len(),
            net.total_macs() as f64 / 1e9,
            bound_mb,
            dram_mb,
            (dram_mb / bound_mb - 1.0) * 100.0,
            report.pj_per_mac(),
        );
    }

    println!("\nR-value census of ResNet-50 (the theory covers every corner):");
    let net = workloads::resnet50(3);
    let mut by_r: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for l in net.conv_layers() {
        *by_r
            .entry(format!("R = {}", l.layer.window_reuse()))
            .or_default() += 1;
    }
    for (r, count) in by_r {
        println!("  {r:<12} {count} layers");
    }
}
