//! Table IV: ratio of GBuf access volume to DRAM access volume for
//! implementation 1 — the evidence that the GBuf communication reaches its
//! lower bound (weights 1.00×, inputs slightly above 1 from halos).

use clb_bench::{analyze_implementation, banner, mb};

fn main() {
    banner(
        "Table IV",
        "GBuf vs DRAM access volume, implementation 1, VGG-16 batch 3",
    );
    let report = analyze_implementation(1);
    let d = report.totals.dram;
    let g = report.totals.gbuf;

    println!(
        "{:<10} {:>12} {:>12} {:>18} {:>18}",
        "", "DRAM read", "DRAM write", "GBuf read", "GBuf write"
    );
    println!(
        "{:<10} {:>10.1}MB {:>10.1}MB {:>12.1}MB ({:.2}x) {:>11.1}MB ({:.2}x)",
        "Inputs",
        mb(d.input_reads as f64 * 2.0),
        0.0,
        mb(g.input_reads as f64 * 2.0),
        g.input_reads as f64 / d.input_reads as f64,
        mb(g.input_writes as f64 * 2.0),
        g.input_writes as f64 / d.input_reads as f64,
    );
    println!(
        "{:<10} {:>10.1}MB {:>10.1}MB {:>12.1}MB ({:.2}x) {:>11.1}MB ({:.2}x)",
        "Weights",
        mb(d.weight_reads as f64 * 2.0),
        0.0,
        mb(g.weight_reads as f64 * 2.0),
        g.weight_reads as f64 / d.weight_reads as f64,
        mb(g.weight_writes as f64 * 2.0),
        g.weight_writes as f64 / d.weight_reads as f64,
    );
    println!(
        "{:<10} {:>10.1}MB {:>10.1}MB {:>14} {:>19}",
        "Outputs",
        0.0,
        mb(d.output_writes as f64 * 2.0),
        "0",
        "0",
    );

    let dram_reads = (d.input_reads + d.weight_reads) as f64;
    println!(
        "\noverall GBuf read ratio:  {:.2}x of DRAM reads (paper: 1.33x)",
        (g.input_reads + g.weight_reads) as f64 / dram_reads
    );
    println!(
        "overall GBuf write ratio: {:.2}x of DRAM reads (paper: 1.07x)",
        (g.input_writes + g.weight_writes) as f64 / dram_reads
    );
    println!("paper: inputs GBuf read 1.67x / write 1.15x; weights 1.00x / 1.00x;");
    println!("       Psums never touch the GBuf.");
}
