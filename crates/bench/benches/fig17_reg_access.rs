//! Fig. 17: per-layer register access volume of the five implementations vs
//! the Eq. 16 lower bound (one LReg write per MAC). The paper measures
//! 5.9–11.8% above the bound.

use clb_bench::{analyze_implementation, banner, paper_workload};

fn main() {
    banner(
        "Fig. 17",
        "Per-layer Reg access volume (G writes) vs the #MACs lower bound",
    );
    let net = paper_workload();
    let reports: Vec<_> = (1..=5).map(analyze_implementation).collect();

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "layer", "bound", "impl.1", "impl.2", "impl.3", "impl.4", "impl.5"
    );
    for (i, l) in net.conv_layers().enumerate() {
        print!("{:<10} {:>9.2}", l.name, l.layer.macs() as f64 / 1e9);
        for r in &reports {
            print!(
                " {:>9.2}",
                r.layers[i].stats.reg.total_writes() as f64 / 1e9
            );
        }
        println!();
    }

    println!("\ntotal overhead above the bound (paper: 5.9-11.8%):");
    let bound = net.total_macs() as f64;
    for (j, r) in reports.iter().enumerate() {
        let writes = r.totals.reg.total_writes() as f64;
        println!(
            "  implementation {}: {:+.1}% (LReg {:.2}G + GReg {:.2}G writes)",
            j + 1,
            (writes / bound - 1.0) * 100.0,
            r.totals.reg.lreg_writes as f64 / 1e9,
            (r.totals.reg.greg_input_writes + r.totals.reg.greg_weight_writes) as f64 / 1e9,
        );
    }
}
