//! Fig. 14: per-layer DRAM access volume at 66.5 KB effective on-chip
//! memory — lower bound, our dataflow, our implementations 1–3, and the
//! two runner-up baselines (InR-A, WtR-A), with the input/weight/output
//! breakdown of our dataflow.

use clb_bench::{analyze_implementation, banner, mb, paper_workload};
use comm_bound::OnChipMemory;
use dataflow::{search_dataflow, DataflowKind};

fn main() {
    banner(
        "Fig. 14",
        "Per-layer DRAM access volume (MB) @ 66.5 KB effective on-chip memory",
    );
    let net = paper_workload();
    let mem = OnChipMemory::from_kib(66.5);

    // Implementations 1-3 share the 66.5 KB memory class; the paper plots
    // them as one group.
    let reports: Vec<_> = (1..=3).map(analyze_implementation).collect();

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "layer", "bound", "ours", "impl.1", "impl.2", "impl.3", "InR-A", "WtR-A"
    );
    for (i, l) in net.conv_layers().enumerate() {
        let bound = comm_bound::dram_bound_bytes(&l.layer, mem);
        let ours = search_dataflow(DataflowKind::Ours, &l.layer, mem)
            .unwrap()
            .traffic
            .total_bytes();
        let inr_a = search_dataflow(DataflowKind::InRA, &l.layer, mem)
            .unwrap()
            .traffic
            .total_bytes();
        let wtr_a = search_dataflow(DataflowKind::WtRA, &l.layer, mem)
            .unwrap()
            .traffic
            .total_bytes();
        print!("{:<10} {:>9.1} {:>9.1}", l.name, mb(bound), mb(ours as f64));
        for r in &reports {
            print!(" {:>9.1}", mb(r.layers[i].stats.dram.total_bytes() as f64));
        }
        println!(" {:>9.1} {:>9.1}", mb(inr_a as f64), mb(wtr_a as f64));
    }

    println!("\nour dataflow input/weight/output breakdown (MB):");
    println!(
        "{:<10} {:>9} {:>9} {:>9}",
        "layer", "inputs", "weights", "outputs"
    );
    for l in net.conv_layers() {
        let t = search_dataflow(DataflowKind::Ours, &l.layer, mem)
            .unwrap()
            .traffic;
        println!(
            "{:<10} {:>9.1} {:>9.1} {:>9.1}",
            l.name,
            mb(t.input_reads as f64 * 2.0),
            mb(t.weight_reads as f64 * 2.0),
            mb((t.output_reads + t.output_writes) as f64 * 2.0),
        );
    }

    println!("\npaper shape: implementations track the free dataflow within 3-4%;");
    println!("our input and weight volumes are balanced with small output share,");
    println!("while InR-A/WtR-A carry large output/psum traffic.");
}
