//! Criterion benchmark of the `/v1/dse` hot path: a 64-candidate
//! architecture sweep over VGG-16 conv4_1, versus the serial per-candidate
//! `/v1/plan` + `/v1/simulate` oracle loop a client would otherwise issue.
//!
//! Run with `cargo bench -p clb-bench --bench dse_sweep`. The run first
//! proves **bit identity**: every feasible candidate's report in the sweep
//! response equals the `/v1/plan` response's report for that architecture,
//! and its stats equal the `/v1/simulate` response for the planned tiling
//! (infeasible candidates must fail `/v1/plan` with the identical
//! diagnosis). Then it times both paths and enforces the acceptance bar:
//! the warm-cache sweep (amortized by the `(layer, arch)` plan cache and
//! the rayon fan-out) must be ≥ 5× faster than the serial oracle. The run
//! prints the measured ratio and exits non-zero if parity or the bar is
//! missed.

use std::time::{Duration, Instant};

use accel_sim::{ArchConfig, DramConfig};
use clb_service::api;
use criterion::black_box;
use serde::{Deserialize, Serialize, Value};

const CANDIDATES: usize = 64;

/// The 64-candidate grid: PE height × LReg depth × IGBuf × GReg, around the
/// Table I design space.
fn candidates() -> Vec<ArchConfig> {
    let mut archs = Vec::new();
    for pe_rows in [16usize, 24, 32, 48] {
        for lreg in [64usize, 128, 256, 512] {
            for igbuf in [1024usize, 1600] {
                for greg_kb in [10usize, 18] {
                    archs.push(ArchConfig {
                        pe_rows,
                        pe_cols: 16,
                        group_rows: 4,
                        group_cols: 4,
                        lreg_entries_per_pe: lreg,
                        igbuf_entries: igbuf,
                        wgbuf_entries: 256,
                        greg_bytes: greg_kb * 1024,
                        greg_segment_entries: 64,
                        core_freq_hz: 500e6,
                        dram: DramConfig::default(),
                    });
                }
            }
        }
    }
    assert_eq!(archs.len(), CANDIDATES);
    for arch in &archs {
        arch.validate().expect("bench candidates are valid");
    }
    archs
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// VGG-16 conv4_1 at batch 3 (the paper's evaluation batch).
fn layer_fields() -> Vec<(&'static str, Value)> {
    vec![
        ("co", Value::Number(512.0)),
        ("size", Value::Number(28.0)),
        ("ci", Value::Number(256.0)),
        ("k", Value::Number(3.0)),
        ("stride", Value::Number(1.0)),
        ("batch", Value::Number(3.0)),
    ]
}

fn dse_body(archs: &[ArchConfig]) -> Value {
    let mut fields = layer_fields();
    fields.push((
        "candidates",
        Value::Array(archs.iter().map(Serialize::to_value).collect()),
    ));
    obj(fields)
}

/// The serial oracle: per candidate, `/v1/plan` then `/v1/simulate` on the
/// planned tiling — exactly what a client without `/v1/dse` would issue.
/// Returns the raw per-candidate responses for the parity proof.
fn serial_oracle(archs: &[ArchConfig]) -> Vec<Result<(String, String), String>> {
    archs
        .iter()
        .map(|arch| {
            let mut plan_fields = layer_fields();
            plan_fields.push(("arch", Serialize::to_value(arch)));
            let plan_req = obj(plan_fields);
            match api::plan_response(&plan_req) {
                Ok(plan_raw) => {
                    let plan: Value = serde_json::from_str(&plan_raw).unwrap();
                    let tiling = plan
                        .get_field("report")
                        .unwrap()
                        .get_field("tiling")
                        .unwrap()
                        .clone();
                    let mut sim_fields = layer_fields();
                    sim_fields.push(("arch", Serialize::to_value(arch)));
                    sim_fields.push(("tiling", tiling));
                    let sim_raw =
                        api::simulate_response(&obj(sim_fields)).expect("planned tilings simulate");
                    Ok((plan_raw, sim_raw))
                }
                Err(api::ApiError::Unprocessable(msg)) => Err(msg),
                Err(other) => panic!("oracle failed unexpectedly: {other:?}"),
            }
        })
        .collect()
}

fn clear_caches() {
    clb_core::clear_plan_cache();
    dataflow::clear_search_cache();
}

/// Median wall-clock of `f` over `samples` runs.
fn measure<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let archs = candidates();
    let body = dse_body(&archs);

    // ---- Parity proof before any timing -------------------------------
    clear_caches();
    let dse_raw = api::dse_response(&body).expect("sweep completes");
    let dse: Value = serde_json::from_str(&dse_raw).unwrap();
    let results = dse.get_field("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), CANDIDATES, "all candidates evaluated");

    let oracle = serial_oracle(&archs);
    let mut feasible = 0usize;
    for entry in results {
        let arch = ArchConfig::from_value(entry.get_field("arch").unwrap()).unwrap();
        let i = archs
            .iter()
            .position(|a| a.cache_key() == arch.cache_key())
            .expect("every result echoes a submitted candidate");
        match (&oracle[i], entry.get_field("error").unwrap()) {
            (Ok((plan_raw, sim_raw)), Value::Null) => {
                feasible += 1;
                let plan: Value = serde_json::from_str(plan_raw).unwrap();
                assert_eq!(
                    entry.get_field("report").unwrap(),
                    plan.get_field("report").unwrap(),
                    "candidate {i}: dse report != /v1/plan report"
                );
                let sim: Value = serde_json::from_str(sim_raw).unwrap();
                assert_eq!(
                    entry
                        .get_field("report")
                        .unwrap()
                        .get_field("stats")
                        .unwrap(),
                    sim.get_field("stats").unwrap(),
                    "candidate {i}: dse stats != /v1/simulate stats"
                );
                assert_eq!(
                    entry.get_field("total_cycles").unwrap(),
                    sim.get_field("total_cycles").unwrap()
                );
            }
            (Err(msg), Value::String(reason)) => {
                assert_eq!(msg, reason, "candidate {i}: diagnoses diverged");
            }
            (oracle_side, dse_side) => {
                panic!("candidate {i}: oracle {oracle_side:?} disagrees with dse {dse_side:?}")
            }
        }
    }
    println!(
        "parity: {CANDIDATES}-candidate /v1/dse sweep over VGG-16 conv4_1 is bit-identical \
         to the serial /v1/plan + /v1/simulate oracle ({feasible} feasible)"
    );

    // ---- Timings ------------------------------------------------------
    // Cold serial oracle: what a client pays issuing candidates one-by-one
    // against cold caches.
    let cold_serial = measure(5, || {
        clear_caches();
        black_box(serial_oracle(&archs));
    });

    // Warm sweep: the production shape — repeated what-if sweeps against
    // the resident service, planning amortized by the (layer, arch) cache.
    clear_caches();
    black_box(api::dse_response(&body).unwrap()); // warm the caches
    let warm_sweep = measure(10, || {
        black_box(api::dse_response(&body).unwrap());
    });

    let ratio = cold_serial.as_secs_f64() / warm_sweep.as_secs_f64();
    println!(
        "dse_sweep: serial oracle (cold) {cold_serial:?}, /v1/dse sweep (warm) {warm_sweep:?} \
         — {ratio:.1}x"
    );
    assert!(
        ratio >= 5.0,
        "acceptance bar: warm-cache sweep must be >= 5x the serial oracle, got {ratio:.2}x"
    );
}
