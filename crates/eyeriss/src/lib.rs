//! Analytical Eyeriss (row-stationary) baseline model.
//!
//! The paper compares against Eyeriss (refs. \[7\], \[10\]) using Eyeriss's *reported*
//! measurements: 173.5 KB effective on-chip memory, a VGG-16 (batch 3) DRAM
//! access volume of 528.8 MB uncompressed / 321.3 MB with input compression
//! (Table III), 22.1 pJ/MAC on-chip energy, and 0.7 frames/s throughput.
//! The Eyeriss chip itself is not reproducible in Rust, so this crate
//! provides (see `DESIGN.md` §2):
//!
//! 1. an analytical **row-stationary traffic model** — weights resident in
//!    PE-local SRAM, inputs re-streamed once per kernel group, partial sums
//!    shuttled through the GBuf per input-channel group — which lands within
//!    ~30% of the published total *before* calibration, and
//! 2. a **calibration step** that scales the model's per-layer values so the
//!    network total matches the published numbers exactly (this mirrors the
//!    paper, which also plots Eyeriss from reported data).
//!
//! Per-layer input-compression ratios were published in ref. \[10\] but are not in
//! the paper's text, so a monotone synthetic profile (ReLU sparsity grows
//! with depth, network average pinned near 528.8/321.3 ≈ 1.65×) stands in.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use conv_model::workloads::Network;
use conv_model::{ConvLayer, BYTES_PER_WORD};
use dataflow::DramTraffic;
use serde::{Deserialize, Serialize};

/// Eyeriss's effective on-chip memory as computed by the paper
/// (Section VI-A): 100 KB of the GBuf for inputs/outputs + 8 KB weight
/// prefetch + 448 B/PE local SRAM across 168 PEs.
pub const EFFECTIVE_ONCHIP_KIB: f64 = 173.5;

/// Published VGG-16 (batch 3) DRAM access volume without input compression,
/// in MB (Table III).
pub const PUBLISHED_DRAM_UNCOMPRESSED_MB: f64 = 528.8;

/// Published VGG-16 (batch 3) DRAM access volume with input compression,
/// in MB (Table III).
pub const PUBLISHED_DRAM_COMPRESSED_MB: f64 = 321.3;

/// Published on-chip energy efficiency with compression and zero gating,
/// pJ/MAC (Section VI-D).
pub const PUBLISHED_ONCHIP_PJ_PER_MAC: f64 = 22.1;

/// Published VGG-16 throughput in frames per second (ref. \[10\]).
pub const PUBLISHED_VGG16_FPS: f64 = 0.7;

/// Architectural parameters of Eyeriss used by the analytic model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EyerissConfig {
    /// PE array rows (12 in the chip).
    pub pe_rows: usize,
    /// PE array columns (14 in the chip).
    pub pe_cols: usize,
    /// Total PE-local SRAM for weights across the array, in 16-bit words
    /// (448 B per PE × 168 PEs, part of it for ifmap/psum spads ⇒ ~224
    /// weight words/PE).
    pub weight_sram_words: usize,
    /// Input channels accumulated per processing pass before a partial-sum
    /// round trip through the GBuf.
    pub channels_per_pass: usize,
}

impl Default for EyerissConfig {
    fn default() -> Self {
        EyerissConfig {
            pe_rows: 12,
            pe_cols: 14,
            weight_sram_words: 168 * 224,
            channels_per_pass: 2,
        }
    }
}

impl EyerissConfig {
    /// Number of kernels whose weights fit in PE-local SRAM at once.
    #[must_use]
    pub fn filters_per_pass(&self, layer: &ConvLayer) -> usize {
        let per_kernel = layer.in_channels() * layer.kernel_height() * layer.kernel_width();
        // `.max(1)` keeps the clamp range non-empty for degenerate layers
        // (e.g. a deserialized zero-channel layer); `clamp` panics when
        // `min > max`.
        (self.weight_sram_words / per_kernel.max(1)).clamp(1, layer.out_channels().max(1))
    }

    /// Output rows produced per ifmap strip when the array is operated
    /// input-stationary: the 12-row array covers `pe_rows − Hk + 1` sliding
    /// windows vertically.
    #[must_use]
    pub fn strip_rows(&self, layer: &ConvLayer) -> usize {
        (self.pe_rows + 1)
            .saturating_sub(layer.kernel_height())
            .max(1)
    }

    /// Analytical row-stationary DRAM traffic (uncompressed), in words.
    ///
    /// Eyeriss's mapper chooses a per-layer strategy; this model takes the
    /// better of the two canonical ones:
    ///
    /// * **filter-stationary**: weights resident in PE spads, inputs
    ///   re-streamed once per kernel group;
    /// * **input-stationary**: an ifmap strip resident, all filters
    ///   re-streamed once per strip.
    ///
    /// Outputs are written once in both (channel accumulation completes on
    /// chip through the GBuf psum region).
    #[must_use]
    pub fn dram_traffic(&self, layer: &ConvLayer) -> DramTraffic {
        let filter_passes = layer.out_channels().div_ceil(self.filters_per_pass(layer)) as u64;
        let filter_stationary = DramTraffic {
            input_reads: filter_passes * layer.input_words(),
            weight_reads: layer.weight_words(),
            output_reads: 0,
            output_writes: layer.output_words(),
        };
        let strips =
            layer.output_height().div_ceil(self.strip_rows(layer)) as u64 * layer.batch() as u64;
        let input_stationary = DramTraffic {
            input_reads: layer.input_words(),
            weight_reads: strips * layer.weight_words(),
            output_reads: 0,
            output_writes: layer.output_words(),
        };
        if filter_stationary.total_words() <= input_stationary.total_words() {
            filter_stationary
        } else {
            input_stationary
        }
    }

    /// GBuf access volume (reads + writes) in words: partial sums shuttle
    /// between the array and the GBuf once per `channels_per_pass` input
    /// channels, and ifmaps/weights pass through the GBuf on their way in.
    ///
    /// This is the data shuffling the paper's architecture eliminates
    /// (Fig. 16 shows a 10.9–15.8× reduction).
    #[must_use]
    pub fn gbuf_access_words(&self, layer: &ConvLayer) -> u64 {
        let psum_round_trips = (layer.in_channels().div_ceil(self.channels_per_pass)) as u64;
        let psum_traffic = 2 * layer.output_words() * psum_round_trips;
        let dram = self.dram_traffic(layer);
        let ifmap_traffic = 2 * dram.input_reads;
        let weight_traffic = 2 * dram.weight_reads;
        psum_traffic + ifmap_traffic + weight_traffic
    }
}

/// Synthetic per-layer input compression ratio: ReLU sparsity grows with
/// depth; the profile is linear from 1.0 (first layer sees raw pixels) to
/// 2.3 (deepest layer), giving a network average near the published 1.65×.
#[must_use]
pub fn compression_ratio(layer_index: usize, layer_count: usize) -> f64 {
    if layer_count <= 1 {
        return 1.65;
    }
    1.0 + 1.3 * layer_index as f64 / (layer_count - 1) as f64
}

/// Per-layer DRAM traffic with the synthetic input compression applied to
/// activations (inputs and outputs); weights are not compressed.
#[must_use]
pub fn compressed_dram_traffic(
    config: &EyerissConfig,
    layer: &ConvLayer,
    layer_index: usize,
    layer_count: usize,
) -> DramTraffic {
    let raw = config.dram_traffic(layer);
    let ratio = compression_ratio(layer_index, layer_count);
    // Output activations of layer i are the inputs of layer i+1: compress
    // them with the next stage's ratio. `saturating_sub` keeps the index
    // clamp from underflowing when `layer_count == 0` (an empty network);
    // `compression_ratio` already treats that case as the network average.
    let out_ratio = compression_ratio(
        (layer_index + 1).min(layer_count.saturating_sub(1)),
        layer_count,
    );
    DramTraffic {
        input_reads: (raw.input_reads as f64 / ratio) as u64,
        weight_reads: raw.weight_reads,
        output_reads: 0,
        output_writes: (raw.output_writes as f64 / out_ratio) as u64,
    }
}

/// Per-layer DRAM megabytes, calibrated so the network total equals the
/// published Table III value.
///
/// `compressed` selects between the 321.3 MB and 528.8 MB anchors. Returns
/// `(layer_name, MB)` pairs in layer order.
#[must_use]
pub fn calibrated_dram_mb(
    config: &EyerissConfig,
    network: &Network,
    compressed: bool,
) -> Vec<(String, f64)> {
    let count = network.len();
    let raw: Vec<(String, f64)> = network
        .conv_layers()
        .enumerate()
        .map(|(i, l)| {
            let words = if compressed {
                compressed_dram_traffic(config, &l.layer, i, count).total_words()
            } else {
                config.dram_traffic(&l.layer).total_words()
            };
            (l.name.clone(), words as f64 * BYTES_PER_WORD as f64 / 1e6)
        })
        .collect();
    let total: f64 = raw.iter().map(|(_, mb)| mb).sum();
    let target = if compressed {
        PUBLISHED_DRAM_COMPRESSED_MB
    } else {
        PUBLISHED_DRAM_UNCOMPRESSED_MB
    };
    // An empty or zero-traffic network has nothing to calibrate: scaling by
    // `target / 0.0` would turn every row into NaN/inf, so return the raw
    // (identity) rows instead.
    let scale = target / total;
    if !scale.is_finite() {
        return raw;
    }
    raw.into_iter().map(|(n, mb)| (n, mb * scale)).collect()
}

/// Eyeriss's published execution time for a batch of VGG-16 images,
/// in seconds.
#[must_use]
pub fn vgg16_execution_seconds(batch: usize) -> f64 {
    batch as f64 / PUBLISHED_VGG16_FPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    #[test]
    fn filters_per_pass_shrinks_with_depth() {
        let cfg = EyerissConfig::default();
        let net = workloads::vgg16(3);
        let first = cfg.filters_per_pass(&net.layer(0).unwrap().layer);
        let last = cfg.filters_per_pass(&net.layer(12).unwrap().layer);
        assert!(first >= last);
        assert!(last >= 1);
    }

    #[test]
    fn uncalibrated_total_near_published() {
        // The analytic model should land within ±30% of the published
        // 528.8 MB before calibration — it is a model, not a replay.
        let cfg = EyerissConfig::default();
        let net = workloads::vgg16(3);
        let total_mb: f64 = net
            .conv_layers()
            .map(|l| cfg.dram_traffic(&l.layer).total_bytes() as f64 / 1e6)
            .sum();
        assert!(
            (PUBLISHED_DRAM_UNCOMPRESSED_MB * 0.7..PUBLISHED_DRAM_UNCOMPRESSED_MB * 1.3)
                .contains(&total_mb),
            "model total {total_mb:.1} MB vs published {PUBLISHED_DRAM_UNCOMPRESSED_MB} MB"
        );
    }

    #[test]
    fn calibrated_total_matches_published_exactly() {
        let cfg = EyerissConfig::default();
        let net = workloads::vgg16(3);
        for compressed in [false, true] {
            let total: f64 = calibrated_dram_mb(&cfg, &net, compressed)
                .iter()
                .map(|(_, mb)| mb)
                .sum();
            let target = if compressed {
                PUBLISHED_DRAM_COMPRESSED_MB
            } else {
                PUBLISHED_DRAM_UNCOMPRESSED_MB
            };
            assert!((total - target).abs() < 1e-6);
        }
    }

    #[test]
    fn compression_helps_every_layer() {
        let cfg = EyerissConfig::default();
        let net = workloads::vgg16(3);
        let n = net.len();
        for (i, l) in net.conv_layers().enumerate() {
            let raw = cfg.dram_traffic(&l.layer).total_words();
            let comp = compressed_dram_traffic(&cfg, &l.layer, i, n).total_words();
            assert!(comp <= raw, "layer {i}: compressed {comp} > raw {raw}");
        }
    }

    #[test]
    fn compression_profile_monotone_and_averaging() {
        let n = 13;
        let mut prev = 0.0;
        let mut sum = 0.0;
        for i in 0..n {
            let r = compression_ratio(i, n);
            assert!(r >= prev);
            prev = r;
            sum += r;
        }
        let avg = sum / n as f64;
        assert!((1.4..1.9).contains(&avg), "average ratio {avg}");
    }

    #[test]
    fn gbuf_traffic_dominated_by_psums_on_deep_layers() {
        let cfg = EyerissConfig::default();
        let layer = workloads::vgg16(3).layer(10).unwrap().layer; // conv5_1
        let gbuf = cfg.gbuf_access_words(&layer);
        let psum_part =
            2 * layer.output_words() * (layer.in_channels().div_ceil(cfg.channels_per_pass)) as u64;
        assert!(psum_part * 2 > gbuf, "psums should be a major component");
        assert!(gbuf > 2 * cfg.dram_traffic(&layer).total_words());
    }

    #[test]
    fn published_time_for_batch_3() {
        assert!((vgg16_execution_seconds(3) - 3.0 / 0.7).abs() < 1e-9);
    }

    /// A structurally degenerate layer that serde will happily produce but
    /// the builder never would: zero output channels, hence zero words of
    /// DRAM traffic on the filter-stationary path.
    fn zero_traffic_layer() -> ConvLayer {
        serde_json::from_str(
            r#"{"batch":1,"out_channels":0,"in_channels":1,"in_height":1,
                "in_width":1,"kernel_height":1,"kernel_width":1,"stride":1,
                "padding":{"vertical":0,"horizontal":0}}"#,
        )
        .expect("degenerate layer deserializes")
    }

    /// Regression: `calibrated_dram_mb` divided the published target by the
    /// model total with no zero guard, so a zero-traffic network produced
    /// NaN rows (and `filters_per_pass` panicked outright on zero-channel
    /// layers via `clamp(1, 0)`). Both must now degrade to finite identity
    /// rows.
    #[test]
    fn calibration_survives_zero_traffic_networks() {
        let cfg = EyerissConfig::default();
        let net = Network::new("dead", vec![("dead1".to_string(), zero_traffic_layer())]);
        for compressed in [false, true] {
            let rows = calibrated_dram_mb(&cfg, &net, compressed);
            assert_eq!(rows.len(), 1);
            assert!(
                rows.iter().all(|(_, mb)| mb.is_finite()),
                "calibration produced non-finite MB rows: {rows:?}"
            );
        }
    }

    #[test]
    fn calibration_of_empty_network_is_empty() {
        let cfg = EyerissConfig::default();
        let net = Network::new("empty", vec![]);
        assert!(calibrated_dram_mb(&cfg, &net, false).is_empty());
        assert!(calibrated_dram_mb(&cfg, &net, true).is_empty());
    }

    /// Regression: the output-ratio index clamp in `compressed_dram_traffic`
    /// computed `layer_count - 1` in `usize`, underflowing (debug panic) when
    /// called with an empty network's `layer_count == 0`.
    #[test]
    fn compressed_traffic_tolerates_zero_layer_count() {
        let cfg = EyerissConfig::default();
        let layer = workloads::vgg16(1).layer(0).unwrap().layer;
        let raw = cfg.dram_traffic(&layer).total_words();
        let comp = compressed_dram_traffic(&cfg, &layer, 0, 0).total_words();
        assert!(comp <= raw);
    }
}
