//! Offline stand-in for `proptest`: deterministic random sampling with the
//! same test-authoring surface, minus shrinking.
//!
//! The workspace's property tests use `proptest!` blocks with range, tuple,
//! `prop::bool::ANY` and `prop::collection::vec` strategies plus the
//! `prop_filter_map` combinator; this shim implements exactly that surface.
//! Each generated test runs `ProptestConfig::cases` samples from an RNG
//! seeded by the test's name, so failures reproduce across runs. On failure
//! the panic reports the assertion like a plain `assert!`; there is no
//! shrinking, so the failing inputs are whatever the sample produced (print
//! them from the test body if needed).

#![deny(missing_docs)]

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseReject, TestRng,
    };
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Marker returned through `?`/`return` by [`prop_assume!`] to reject a
/// sampled case without failing the test.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseReject;

/// Deterministic xorshift64* RNG used for sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name (FNV-1a hash), so every run of a
    /// given test draws the same sample sequence.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at the magnitudes tests use.
        self.next_u64() % bound.max(1)
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A value generator. `sample` must be able to produce a value for any RNG
/// state (rejection happens through [`Strategy::prop_filter_map`] retries or
/// [`prop_assume!`]).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, retrying (up to an internal limit)
    /// while `f` returns `None`.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map `{}` rejected 10000 consecutive samples",
            self.reason
        );
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 uniform mantissa bits scaled into the range.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                v as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start() as f64, *self.end() as f64);
                assert!(start <= end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (start + unit * (end - start)) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop::` namespace (`prop::bool::ANY`, `prop::collection::vec`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The any-boolean strategy value.
        pub const ANY: Any = Any;

        impl crate::Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut crate::TestRng) -> bool {
                rng.bool()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Length distributions accepted by [`vec`].
        pub trait SampleLen {
            /// Draws a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SampleLen for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        impl SampleLen for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
            }
        }

        impl SampleLen for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        /// Vectors of `element`-generated values with a length drawn from
        /// `len`.
        pub fn vec<S: Strategy, L: SampleLen>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SampleLen> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current sampled case (it does not count toward the case
/// budget) when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        @cfg($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(100).max(1000);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "prop_assume rejected too many cases ({} accepted of {} wanted)",
                        accepted,
                        config.cases,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseReject> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::sample(&(-64i8..=64), &mut rng);
            assert!((-64..=64).contains(&w));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(x in 1usize..=5, flip in prop::bool::ANY) {
            prop_assume!(x != 5);
            prop_assert!((1..5).contains(&x));
            let _ = flip;
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0u8..=9, 1..4)) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&d| d <= 9));
        }
    }
}
