//! Offline stand-in for `serde_json`: JSON rendering and parsing for the
//! [`serde`] shim's [`Value`] tree.
//!
//! Supports the full JSON grammar needed to round-trip every report type in
//! the workspace: objects, arrays, strings (with escapes), numbers, booleans
//! and null. Numbers are parsed into `f64`; integers up to 2⁵³ round-trip
//! exactly, which covers every counter the workspace serializes.

#![deny(missing_docs)]

pub use serde::{Error, Value};

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite number.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value as human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite number.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Maximum container nesting the parser accepts. Recursive descent uses the
/// call stack, so without a cap a hostile input of `N` opening brackets
/// overflows the stack and aborts the process; 128 levels is far beyond any
/// structure this workspace serializes.
pub const MAX_PARSE_DEPTH: usize = 128;

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, a shape mismatch, or nesting deeper
/// than [`MAX_PARSE_DEPTH`].
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) -> Result<(), Error> {
    if !n.is_finite() {
        return Err(Error::custom("cannot serialize non-finite number"));
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{n:?}"));
    }
    Ok(())
}

fn write_value(
    value: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    let (open_sep, item_sep, close_sep, pad, pad_close);
    match indent {
        Some(step) => {
            open_sep = "\n";
            item_sep = ",\n";
            close_sep = "\n";
            pad = " ".repeat(step * (depth + 1));
            pad_close = " ".repeat(step * depth);
        }
        None => {
            open_sep = "";
            item_sep = ",";
            close_sep = "";
            pad = String::new();
            pad_close = String::new();
        }
    }
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out)?,
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            out.push_str(open_sep);
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(item_sep);
                }
                out.push_str(&pad);
                write_value(item, indent, depth + 1, out)?;
            }
            out.push_str(close_sep);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            out.push_str(open_sep);
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(item_sep);
                }
                out.push_str(&pad);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            out.push_str(close_sep);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_PARSE_DEPTH {
            return Err(Error::custom(format!(
                "JSON nested deeper than {MAX_PARSE_DEPTH} levels"
            )));
        }
        match self.peek()? {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => self.parse_array(depth),
            b'{' => self.parse_object(depth),
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = *rest
                        .get(1)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded character.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            fields.push((key, self.parse_value(depth + 1)?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("vgg\"16\"".into())),
            (
                "layers".into(),
                Value::Array(vec![Value::Number(3.0), Value::Number(1.5)]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&ValueWrap(v.clone())).unwrap();
        let parsed: ValueWrap = from_str(&compact).unwrap();
        assert_eq!(parsed.0, v);
        let pretty = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        let parsed: ValueWrap = from_str(&pretty).unwrap();
        assert_eq!(parsed.0, v);
    }

    #[test]
    fn large_integers_stay_exact() {
        let n = (1u64 << 52) + 12345;
        let text = to_string(&n).unwrap();
        assert_eq!(text, format!("{n}"));
        assert_eq!(from_str::<u64>(&text).unwrap(), n);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("12 garbage").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // A 300k-bracket body fits any reasonable size cap but would
        // recurse once per bracket; the depth cap must reject it as a
        // parse error, not a process abort.
        let hostile = "[".repeat(300_000);
        assert!(from_str::<Value>(&hostile).is_err());
        let hostile = "{\"a\":".repeat(300_000);
        assert!(from_str::<Value>(&hostile).is_err());
        // Sane nesting stays accepted.
        let fine = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str::<Value>(&fine).is_ok());
    }

    /// Test-only transparent wrapper so plain `Value`s can round-trip.
    struct ValueWrap(Value);

    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl serde::Deserialize for ValueWrap {
        fn from_value(value: &Value) -> Result<Self, Error> {
            Ok(ValueWrap(value.clone()))
        }
    }
}
