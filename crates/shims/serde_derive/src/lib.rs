//! `#[derive(Serialize, Deserialize)]` for the offline `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (neither `syn` nor
//! `quote` is available in hermetic builds). The parser handles the shapes
//! this workspace derives on:
//!
//! * named-field structs (any visibility, optional generics),
//! * tuple structs (newtype transparency for single-field ones),
//! * unit-only enums (serialized as the variant-name string).
//!
//! Anything else (enums with payloads, unions) is rejected with a
//! `compile_error!` so a future mismatch fails loudly at build time rather
//! than silently misbehaving at run time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consumes leading attributes (`#[...]`, including doc comments) and a
/// visibility qualifier from `tokens[*i]` onward.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<...>` starting at `tokens[*i]` (which must be `<`), returning
/// the type-parameter names. Lifetimes, bounds and defaults are skipped.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    // True at `<` or at a `,` separating top-level parameters: the next
    // plain ident is a type-parameter name.
    let mut at_param_start = false;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                if depth == 1 {
                    at_param_start = true;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return params;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime: the following ident is not a type parameter.
                *i += 1;
                at_param_start = false;
            }
            TokenTree::Ident(id) if at_param_start && depth == 1 => {
                let name = id.to_string();
                if name != "const" {
                    params.push(name);
                }
                at_param_start = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Parses the fields of a named-field struct body.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!("unexpected token in struct body: {:?}", tokens[i]));
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, got {other:?}")),
        }
        // Skip the type: consume until a `,` at angle depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple-struct body (commas at angle depth 0).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

/// Parses the variants of an enum body, requiring them all to be unit.
fn parse_unit_variants(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!("unexpected token in enum body: {:?}", tokens[i]));
        };
        variants.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "the serde shim derive only supports unit enum variants; \
                     variant `{}` carries data",
                    variants.last().unwrap()
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next top-level comma.
                i += 1;
                while let Some(tok) = tokens.get(i) {
                    i += 1;
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token after variant: {other:?}")),
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    let generics = match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => parse_generics(&tokens, &mut i),
        _ => Vec::new(),
    };
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                generics,
                shape: Shape::Named(parse_named_fields(g)?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                generics,
                shape: Shape::Tuple(count_tuple_fields(g)),
            }),
            _ => Err("unit structs are not supported by the serde shim derive".into()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                generics,
                shape: Shape::UnitEnum(parse_unit_variants(g)?),
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// `impl<T: Bound, U: Bound> Trait for Name<T, U>` header pieces.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn derive_serialize_impl(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pushes.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("Self::{v} => {v:?},"))
                .collect();
            format!(
                "::serde::Value::String(String::from(match self {{ {} }}))",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn derive_deserialize_impl(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "::serde::Deserialize");
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.get_field({f:?})?)?"))
                .collect();
            format!("Ok(Self {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => "Ok(Self(::serde::Deserialize::from_value(value)?))".to_string(),
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = value.as_array()?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::Error::custom(\"wrong tuple arity\"));\n\
                 }}\n\
                 Ok(Self({}))",
                inits.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok(Self::{v}),"))
                .collect();
            format!(
                "match value.as_str()? {{ {} other => Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{other}}`\"))) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl{generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Derives `serde::Serialize` (shim) for structs and unit enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => derive_serialize_impl(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize` (shim) for structs and unit enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => derive_deserialize_impl(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
