//! Offline stand-in for `criterion`: the same `bench_function`/`iter`
//! surface and `criterion_group!`/`criterion_main!` macros, measuring with
//! plain wall-clock sampling.
//!
//! Compared to the real crate there is no statistical regression analysis,
//! no plotting and no CLI filtering — a benchmark run prints
//! `name  time: [min median mean]` per benchmark, which is enough to compare
//! the naive and engine search hot paths in CI logs. Timings come from
//! [`std::time::Instant`]; each benchmark warms up briefly, then takes a
//! fixed number of samples with an iteration count chosen so one sample
//! lasts roughly a millisecond or more.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects and prints one result per `bench_function`.
#[derive(Debug)]
pub struct Criterion {
    /// Number of measured samples per benchmark.
    samples: usize,
    /// Target total measuring time per benchmark.
    measure_time: Duration,
    /// Warm-up time per benchmark.
    warmup_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: 20,
            measure_time: Duration::from_millis(1500),
            warmup_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Overrides the number of measured samples.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(2);
        self
    }

    /// Overrides the measurement time budget.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measure_time = t;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            measure_time: self.measure_time,
            warmup_time: self.warmup_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(stats) => println!(
                "{id:<40} time: [{} {} {}]",
                format_duration(stats.min),
                format_duration(stats.median),
                format_duration(stats.mean),
            ),
            None => println!("{id:<40} time: [no measurement — iter() was not called]"),
        }
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    min: Duration,
    median: Duration,
    mean: Duration,
}

/// Measures one closure; handed to the `bench_function` callback.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measure_time: Duration,
    warmup_time: Duration,
    result: Option<Stats>,
}

impl Bencher {
    /// Times `f`, running it repeatedly; the closure's return value is
    /// black-boxed so the computation is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup_time {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / u32::try_from(warmup_iters).unwrap_or(u32::MAX);

        // Choose iterations per sample so a sample is long enough to time
        // accurately, while the whole measurement respects the budget.
        let budget_per_sample = self.measure_time / u32::try_from(self.samples).unwrap_or(1);
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            times.push(start.elapsed() / u32::try_from(iters_per_sample).unwrap_or(1));
        }
        times.sort_unstable();
        let total: Duration = times.iter().sum();
        self.result = Some(Stats {
            min: times[0],
            median: times[times.len() / 2],
            mean: total / u32::try_from(times.len()).unwrap_or(1),
        });
    }
}

/// Formats a duration with criterion-style units.
#[must_use]
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a group runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn formats_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(12)), "12.000 s");
    }
}
