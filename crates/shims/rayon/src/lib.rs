//! Offline stand-in for `rayon`: genuinely parallel, but a tiny API.
//!
//! The workspace builds hermetically, so the real `rayon` crate is replaced
//! by this shim built on [`std::thread::scope`]. It provides the subset the
//! tiling-search engine uses:
//!
//! * [`ThreadPoolBuilder`]/[`current_num_threads`] — a global thread-count
//!   knob (there is no persistent pool; threads are scoped per call, which
//!   is fine for the engine's coarse-grained, compute-bound tasks);
//! * [`join`] — run two closures in parallel;
//! * [`par_map`] — order-preserving parallel map over a slice with atomic
//!   work stealing, so unevenly sized work items (pruned search subtrees)
//!   balance across threads.
//!
//! Unlike real rayon there is no work-splitting of nested calls: a
//! `par_map` inside a `par_map` simply spawns its own scoped threads.
//! To keep arbitrary nesting safe (the analysis service runs `par_map`
//! pipelines from many HTTP workers at once, three levels deep), the shim
//! enforces a process-wide *worker budget*: `par_map` claims threads from
//! the budget and silently degrades toward serial execution when the
//! process is already saturated — mirroring how real rayon's fixed global
//! pool behaves under nesting, without its work-stealing machinery.
//! Results never depend on how many threads a call was granted.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global thread-count override; 0 means "use available parallelism".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Scoped worker threads currently alive across every concurrent
/// [`par_map`] in the process.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The worker-budget cap: generous enough that a CLI-style nesting
/// (depth ≤ 2) is never throttled on its own, small enough that dozens of
/// concurrent deeply-nested pipelines cannot exhaust OS thread limits.
fn worker_budget_cap() -> usize {
    8 * std::thread::available_parallelism().map_or(1, usize::from)
}

/// Claims up to `desired` workers from the process-wide budget; returns
/// how many were granted (possibly 0).
fn claim_workers(desired: usize) -> usize {
    let cap = worker_budget_cap();
    let mut current = ACTIVE_WORKERS.load(Ordering::Relaxed);
    loop {
        let grant = desired.min(cap.saturating_sub(current));
        if grant == 0 {
            return 0;
        }
        match ACTIVE_WORKERS.compare_exchange_weak(
            current,
            current + grant,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return grant,
            Err(now) => current = now,
        }
    }
}

fn release_workers(granted: usize) {
    ACTIVE_WORKERS.fetch_sub(granted, Ordering::Relaxed);
}

/// Error returned by [`ThreadPoolBuilder::build_global`] (never constructed
/// by this shim — the global knob can be set repeatedly — but kept so call
/// sites can use the real rayon error-handling idiom).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to configure the global thread count")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global parallelism configuration.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (0 = auto).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally.
    ///
    /// # Errors
    ///
    /// Never fails in this shim; the signature matches real rayon so call
    /// sites stay source-compatible.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// The number of threads parallel operations will use.
#[must_use]
pub fn current_num_threads() -> usize {
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        (handle.join().expect("joined closure panicked"), rb)
    })
}

/// Order-preserving parallel map over a slice.
///
/// Work items are claimed one at a time from an atomic counter, so threads
/// that draw cheap items (e.g. search subtrees pruned immediately) move on
/// to the next item instead of idling.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let desired = current_num_threads().min(items.len());
    if desired <= 1 {
        return items.iter().map(f).collect();
    }
    // Nested/concurrent calls share one process-wide worker budget; when
    // it is exhausted this call simply runs on the caller's thread. The
    // guard releases the claim even when `f` (or a thread spawn) panics —
    // a leak here would permanently degrade every later `par_map` toward
    // serial in long-running processes that survive handler panics.
    struct BudgetGuard(usize);
    impl Drop for BudgetGuard {
        fn drop(&mut self) {
            release_workers(self.0);
        }
    }
    let claimed = BudgetGuard(claim_workers(desired));
    if claimed.0 <= 1 {
        return items.iter().map(f).collect();
    }
    par_map_on(items, &f, claimed.0)
}

fn par_map_on<T, R, F>(items: &[T], f: &F, threads: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Batch locally and merge once per thread: the lock is taken
                // `threads` times total, not once per item.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    local.push((i, f(item)));
                }
                collected
                    .lock()
                    .expect("no poisoned lock: workers do not panic mid-merge")
                    .append(&mut local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("scope joined all workers");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_par_map_is_correct_under_the_worker_budget() {
        // Three-deep nesting would previously spawn up to n³ threads; the
        // budget degrades inner levels toward serial while results stay
        // identical to the serial map.
        let outer: Vec<u64> = (0..40).collect();
        let result = par_map(&outer, |&x| {
            let mid: Vec<u64> = (0..20).collect();
            par_map(&mid, |&y| {
                let inner: Vec<u64> = (0..10).collect();
                par_map(&inner, |&z| x * y * z).into_iter().sum::<u64>()
            })
            .into_iter()
            .sum::<u64>()
        });
        // Σy<20 Σz<10 x·y·z = x · 190 · 45
        for (x, &r) in result.iter().enumerate() {
            assert_eq!(r, (x as u64) * 190 * 45);
        }
    }

    #[test]
    fn worker_budget_claims_and_releases() {
        let cap = worker_budget_cap();
        let granted = claim_workers(cap + 10_000);
        assert!(granted <= cap, "cannot exceed the cap");
        // Whatever was left over is at most the cap too.
        let rest = claim_workers(cap);
        assert!(granted + rest <= cap + cap, "sanity under concurrent tests");
        release_workers(granted);
        release_workers(rest);
    }

    #[test]
    fn thread_count_override() {
        ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 3);
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(current_num_threads() >= 1);
    }
}
