//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the usual `serde` dependency is replaced by this API-subset shim. It
//! keeps the surface the workspace actually uses — `Serialize`,
//! `Deserialize`, and `#[derive(Serialize, Deserialize)]` re-exported under
//! the `derive` feature — but trades serde's zero-copy visitor architecture
//! for a simple tree model: serialization produces a [`Value`] and
//! deserialization consumes one. `serde_json` (the sibling shim) renders and
//! parses that tree as JSON.
//!
//! Supported shapes (everything the workspace derives): named-field structs,
//! tuple structs, unit-only enums, and generic structs whose parameters
//! themselves implement the traits. Numbers are carried as `f64`, which is
//! exact for every counter in this workspace (all < 2⁵³).

#![deny(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the JSON data model).
///
/// Objects are ordered field lists rather than maps so that serialization
/// is deterministic and mirrors declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (integers in this workspace are < 2⁵³, so `f64` is
    /// lossless for them).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered `(key, value)` list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object, erroring when missing.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `self` is not an object or lacks the field.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            _ => Err(Error::custom(format!(
                "expected object with field `{name}`"
            ))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `self` is not a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err(Error::custom("expected string")),
        }
    }

    /// The value as a number.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `self` is not a number.
    pub fn as_number(&self) -> Result<f64, Error> {
        match self {
            Value::Number(n) => Ok(*n),
            _ => Err(Error::custom("expected number")),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `self` is not an array.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(Error::custom("expected array")),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_number()?;
                if n.fract() != 0.0 {
                    return Err(Error::custom(format!(
                        "expected integer, got {n}"
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_number()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_number()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array()?;
        if items.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` itself round-trips transparently, so callers can work with raw
// JSON trees (e.g. to canonicalize a request body) without a typed schema.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn integer_rejects_fraction() {
        assert!(u64::from_value(&Value::Number(1.5)).is_err());
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(v.get_field("a").unwrap(), &Value::Number(1.0));
        assert!(v.get_field("b").is_err());
    }
}
