//! 65 nm energy model of the paper (Table II) with CACTI-like parametric
//! scaling for intermediate capacities.
//!
//! The paper measures per-operation energies with Design Compiler /
//! PrimeTime / Memory Compiler / CACTI (Section VI); those tools are
//! proprietary, so this crate substitutes the paper's **published** Table II
//! numbers directly and interpolates between them on a log-log scale for
//! capacities the table does not list (the usual CACTI behaviour: access
//! energy grows roughly polynomially with capacity). See `DESIGN.md` §2 for
//! the substitution rationale.
//!
//! # Example
//!
//! ```
//! use energy_model::{table, sram_access_pj};
//!
//! assert_eq!(table::MAC_PJ, 4.16);
//! // A 2 KiB SRAM access costs what Table II says.
//! assert!((sram_access_pj(2048.0) - 1.39).abs() < 1e-9);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use serde::{Deserialize, Serialize};

/// The verbatim constants of Table II (65 nm, 16-bit datapath), in pJ per
/// operation/access.
pub mod table {
    /// One multiply-accumulate operation.
    pub const MAC_PJ: f64 = 4.16;
    /// One access to a 0.5 KB GBuf (the weight GBuf of the example design).
    pub const GBUF_0_5KB_PJ: f64 = 0.30;
    /// One access to a 2 KB GBuf (the input GBuf of implementations 1–3).
    pub const GBUF_2KB_PJ: f64 = 1.39;
    /// One access to a 3.125 KB GBuf (the input GBuf of implementations 4–5).
    pub const GBUF_3_125KB_PJ: f64 = 2.36;
    /// One access to a 256 B LReg file (implementation 1).
    pub const LREG_256B_PJ: f64 = 3.39;
    /// One access to a 128 B LReg file (implementations 2 and 4).
    pub const LREG_128B_PJ: f64 = 1.92;
    /// One access to a 64 B LReg file (implementations 3 and 5).
    pub const LREG_64B_PJ: f64 = 1.16;
    /// One access to the 2 GB DDR3 DRAM (per 16-bit word).
    pub const DRAM_PJ: f64 = 427.9;
}

fn log_interp(anchors: &[(f64, f64)], x: f64) -> f64 {
    assert!(x > 0.0, "capacity must be positive");
    let lx = x.ln();
    // Below the first or above the last anchor: extrapolate the end segment.
    let seg = if lx <= anchors[0].0.ln() {
        (anchors[0], anchors[1])
    } else if lx >= anchors[anchors.len() - 1].0.ln() {
        (anchors[anchors.len() - 2], anchors[anchors.len() - 1])
    } else {
        let mut found = (anchors[0], anchors[1]);
        for w in anchors.windows(2) {
            if lx >= w[0].0.ln() && lx <= w[1].0.ln() {
                found = (w[0], w[1]);
                break;
            }
        }
        found
    };
    let ((x0, y0), (x1, y1)) = seg;
    let t = (lx - x0.ln()) / (x1.ln() - x0.ln());
    (y0.ln() + t * (y1.ln() - y0.ln())).exp()
}

/// Per-access energy (pJ) of an on-chip SRAM of the given capacity in bytes,
/// anchored on Table II's three GBuf points and log-log interpolated between
/// them (CACTI-like scaling).
#[must_use]
pub fn sram_access_pj(capacity_bytes: f64) -> f64 {
    log_interp(
        &[
            (512.0, table::GBUF_0_5KB_PJ),
            (2048.0, table::GBUF_2KB_PJ),
            (3200.0, table::GBUF_3_125KB_PJ),
        ],
        capacity_bytes,
    )
}

/// Per-access energy (pJ) of a register file of the given capacity in bytes,
/// anchored on Table II's three LReg points.
#[must_use]
pub fn reg_access_pj(capacity_bytes: f64) -> f64 {
    log_interp(
        &[
            (64.0, table::LREG_64B_PJ),
            (128.0, table::LREG_128B_PJ),
            (256.0, table::LREG_256B_PJ),
        ],
        capacity_bytes,
    )
}

/// Tunable constants that Table II does not pin down.
///
/// These reproduce the qualitative balance of Fig. 18: register static
/// energy noticeable for large per-PE LReg files, and a small "others"
/// overhead (controller, FIFOs, clock tree).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Static (leakage) power of register files, pJ per byte per cycle.
    pub reg_static_pj_per_byte_cycle: f64,
    /// Fraction of dynamic on-chip energy charged as "others"
    /// (controller, FIFOs, clock).
    pub other_fraction: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            reg_static_pj_per_byte_cycle: 0.003,
            other_fraction: 0.05,
        }
    }
}

/// Energy breakdown of one layer or network execution, in pJ, matching the
/// stacked components of Fig. 18.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// DRAM access energy.
    pub dram_pj: f64,
    /// GBuf (SRAM) access energy.
    pub gbuf_pj: f64,
    /// MAC (arithmetic) energy.
    pub mac_pj: f64,
    /// LReg dynamic energy (Psum writes/reads).
    pub lreg_dynamic_pj: f64,
    /// LReg static (leakage) energy over the execution time.
    pub lreg_static_pj: f64,
    /// GReg energy (input/weight sharing registers).
    pub greg_pj: f64,
    /// Everything else (controller, FIFOs, clock).
    pub other_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.dram_pj
            + self.gbuf_pj
            + self.mac_pj
            + self.lreg_dynamic_pj
            + self.lreg_static_pj
            + self.greg_pj
            + self.other_pj
    }

    /// Total LReg energy (dynamic + static).
    #[must_use]
    pub fn lreg_pj(&self) -> f64 {
        self.lreg_dynamic_pj + self.lreg_static_pj
    }

    /// Energy efficiency in pJ per MAC — the Fig. 18 metric.
    ///
    /// # Panics
    ///
    /// Panics if `macs` is zero.
    #[must_use]
    pub fn pj_per_mac(&self, macs: u64) -> f64 {
        assert!(macs > 0, "pj_per_mac needs a positive MAC count");
        self.total_pj() / macs as f64
    }

    /// Average power in watts over an execution time in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive.
    #[must_use]
    pub fn power_w(&self, seconds: f64) -> f64 {
        assert!(seconds > 0.0, "power needs a positive duration");
        self.total_pj() * 1e-12 / seconds
    }

    /// Element-wise sum (for accumulating layers into a network total).
    #[must_use]
    pub fn combined(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            dram_pj: self.dram_pj + other.dram_pj,
            gbuf_pj: self.gbuf_pj + other.gbuf_pj,
            mac_pj: self.mac_pj + other.mac_pj,
            lreg_dynamic_pj: self.lreg_dynamic_pj + other.lreg_dynamic_pj,
            lreg_static_pj: self.lreg_static_pj + other.lreg_static_pj,
            greg_pj: self.greg_pj + other.greg_pj,
            other_pj: self.other_pj + other.other_pj,
        }
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        self.combined(&rhs)
    }
}

impl std::iter::Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::default(), |acc, e| acc + e)
    }
}

/// The theoretical best energy of Fig. 18's "Lower bound" bars: DRAM energy
/// at the communication lower bound, plus the MAC energy, plus one LReg
/// write per MAC at the given LReg access cost.
#[must_use]
pub fn energy_lower_bound_pj(macs: u64, dram_bound_words: f64, lreg_access_pj: f64) -> f64 {
    dram_bound_words * table::DRAM_PJ + macs as f64 * (table::MAC_PJ + lreg_access_pj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_exact() {
        assert!((sram_access_pj(512.0) - 0.30).abs() < 1e-12);
        assert!((sram_access_pj(2048.0) - 1.39).abs() < 1e-12);
        assert!((sram_access_pj(3200.0) - 2.36).abs() < 1e-12);
        assert!((reg_access_pj(64.0) - 1.16).abs() < 1e-12);
        assert!((reg_access_pj(128.0) - 1.92).abs() < 1e-12);
        assert!((reg_access_pj(256.0) - 3.39).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_monotone() {
        let mut prev = 0.0;
        for bytes in [256.0, 512.0, 1024.0, 2048.0, 3200.0, 8192.0] {
            let e = sram_access_pj(bytes);
            assert!(e > prev, "sram energy must grow with capacity");
            prev = e;
        }
        let mut prev = 0.0;
        for bytes in [32.0, 64.0, 96.0, 128.0, 192.0, 256.0, 512.0] {
            let e = reg_access_pj(bytes);
            assert!(e > prev, "reg energy must grow with capacity");
            prev = e;
        }
    }

    #[test]
    fn interpolated_point_between_anchors() {
        let e = sram_access_pj(1024.0);
        assert!(e > 0.30 && e < 1.39);
    }

    #[test]
    fn extrapolation_beyond_last_anchor() {
        // 8 KB SRAM should cost more than the 3.125 KB anchor.
        assert!(sram_access_pj(8192.0) > 2.36);
        // 32 B reg file cheaper than the 64 B anchor.
        assert!(reg_access_pj(32.0) < 1.16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = sram_access_pj(0.0);
    }

    #[test]
    fn breakdown_totals() {
        let e = EnergyBreakdown {
            dram_pj: 1.0,
            gbuf_pj: 2.0,
            mac_pj: 3.0,
            lreg_dynamic_pj: 4.0,
            lreg_static_pj: 5.0,
            greg_pj: 6.0,
            other_pj: 7.0,
        };
        assert_eq!(e.total_pj(), 28.0);
        assert_eq!(e.lreg_pj(), 9.0);
        assert_eq!(e.pj_per_mac(14), 2.0);
        let sum: EnergyBreakdown = vec![e, e].into_iter().sum();
        assert_eq!(sum.total_pj(), 56.0);
    }

    #[test]
    fn power_conversion() {
        let e = EnergyBreakdown {
            mac_pj: 1e12, // 1 J
            ..EnergyBreakdown::default()
        };
        assert!((e.power_w(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_components() {
        let e = energy_lower_bound_pj(100, 10.0, 1.92);
        let expected = 10.0 * 427.9 + 100.0 * (4.16 + 1.92);
        assert!((e - expected).abs() < 1e-9);
    }

    #[test]
    fn default_params_sane() {
        let p = EnergyParams::default();
        assert!(p.reg_static_pj_per_byte_cycle > 0.0);
        assert!((0.0..0.5).contains(&p.other_fraction));
    }
}
