use serde::{Deserialize, Serialize};

/// Dense 4-dimensional tensor in `N×C×H×W` layout.
///
/// Used for activations (`N` = batch), weights (`N` = output channel) and
/// outputs throughout the functional tests and the simulator's functional
/// mode. The element type is generic so the same container serves `f64`
/// reference kernels and the 16-bit fixed-point PE datapath.
///
/// ```
/// use conv_model::Tensor4;
///
/// let mut t = Tensor4::zeros(1, 2, 3, 3);
/// t[(0, 1, 2, 2)] = 7.0;
/// assert_eq!(t[(0, 1, 2, 2)], 7.0);
/// assert_eq!(t.len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor4<T = f64> {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<T>,
}

impl<T: Default + Clone> Tensor4<T> {
    /// Creates an `n×c×h×w` tensor filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if the total element count overflows `usize`.
    #[must_use]
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        let len = n
            .checked_mul(c)
            .and_then(|v| v.checked_mul(h))
            .and_then(|v| v.checked_mul(w))
            .expect("tensor size overflows usize");
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![T::default(); len],
        }
    }
}

impl<T> Tensor4<T> {
    /// Creates a tensor from an existing buffer in `N×C×H×W` order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*c*h*w`.
    #[must_use]
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            n * c * h * w,
            "buffer length does not match tensor shape"
        );
        Tensor4 { n, c, h, w, data }
    }

    /// Builds a tensor by evaluating `f(n, c, h, w)` at every coordinate.
    #[must_use]
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut data = Vec::with_capacity(n * c * h * w);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        data.push(f(ni, ci, hi, wi));
                    }
                }
            }
        }
        Tensor4 { n, c, h, w, data }
    }

    /// Shape as `(n, c, h, w)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat view of the underlying buffer in `N×C×H×W` order.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the underlying buffer.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Checked element access; `None` when out of bounds.
    #[must_use]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> Option<&T> {
        if n < self.n && c < self.c && h < self.h && w < self.w {
            Some(&self.data[self.flat_index(n, c, h, w)])
        } else {
            None
        }
    }

    #[inline]
    fn flat_index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        ((n * self.c + c) * self.h + h) * self.w + w
    }
}

impl<T> std::ops::Index<(usize, usize, usize, usize)> for Tensor4<T> {
    type Output = T;

    #[inline]
    fn index(&self, (n, c, h, w): (usize, usize, usize, usize)) -> &T {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        &self.data[self.flat_index(n, c, h, w)]
    }
}

impl<T> std::ops::IndexMut<(usize, usize, usize, usize)> for Tensor4<T> {
    #[inline]
    fn index_mut(&mut self, (n, c, h, w): (usize, usize, usize, usize)) -> &mut T {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        let idx = self.flat_index(n, c, h, w);
        &mut self.data[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_len() {
        let t: Tensor4<f64> = Tensor4::zeros(2, 3, 4, 5);
        assert_eq!(t.len(), 120);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn index_roundtrip() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        t[(1, 2, 3, 4)] = 42.0;
        assert_eq!(t[(1, 2, 3, 4)], 42.0);
        assert_eq!(*t.get(1, 2, 3, 4).unwrap(), 42.0);
        assert!(t.get(2, 0, 0, 0).is_none());
    }

    #[test]
    fn from_fn_layout_matches_index() {
        let t = Tensor4::from_fn(2, 2, 2, 2, |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f64
        });
        assert_eq!(t[(1, 0, 1, 0)], 1010.0);
        assert_eq!(t[(0, 1, 0, 1)], 101.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor4::from_vec(1, 1, 2, 2, vec![0.0; 3]);
    }

    #[test]
    fn into_vec_preserves_order() {
        let t = Tensor4::from_fn(1, 1, 2, 2, |_, _, h, w| (h * 2 + w) as f64);
        assert_eq!(t.into_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }
}
