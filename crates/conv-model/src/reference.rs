//! Reference convolution kernels (the 7-loop nest of Fig. 2).
//!
//! These are deliberately straightforward implementations used as ground
//! truth: the cycle simulator's functional mode and every dataflow's traffic
//! counter are validated against them.

use std::ops::{Add, Mul};

use crate::{ConvLayer, Tensor4};

/// Runs the textbook 7-loop convolution (Fig. 2 of the paper) over arbitrary
/// ring elements.
///
/// `input` must be shaped `B×Ci×Hi×Wi` and `weights` shaped `Co×Ci×Hk×Wk`
/// according to `layer`; the result is `B×Co×Ho×Wo`. Zero padding is
/// implicit: out-of-bounds taps contribute `T::default()`.
///
/// # Panics
///
/// Panics if the tensor shapes disagree with `layer`.
pub fn convolve<T>(layer: &ConvLayer, input: &Tensor4<T>, weights: &Tensor4<T>) -> Tensor4<T>
where
    T: Copy + Default + Add<Output = T> + Mul<Output = T>,
{
    assert_eq!(
        input.shape(),
        (
            layer.batch(),
            layer.in_channels(),
            layer.in_height(),
            layer.in_width()
        ),
        "input tensor shape does not match layer"
    );
    assert_eq!(
        weights.shape(),
        (
            layer.out_channels(),
            layer.in_channels(),
            layer.kernel_height(),
            layer.kernel_width()
        ),
        "weight tensor shape does not match layer"
    );

    let (ho, wo) = (layer.output_height(), layer.output_width());
    let pad = layer.padding();
    let stride = layer.stride();
    let mut out = Tensor4::zeros(layer.batch(), layer.out_channels(), ho, wo);

    for i in 0..layer.batch() {
        for oz in 0..layer.out_channels() {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = T::default();
                    for kz in 0..layer.in_channels() {
                        for ky in 0..layer.kernel_height() {
                            for kx in 0..layer.kernel_width() {
                                let iy = (oy * stride + ky) as isize - pad.vertical as isize;
                                let ix = (ox * stride + kx) as isize - pad.horizontal as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy as usize >= layer.in_height()
                                    || ix as usize >= layer.in_width()
                                {
                                    continue;
                                }
                                let a = input[(i, kz, iy as usize, ix as usize)];
                                let w = weights[(oz, kz, ky, kx)];
                                acc = acc + a * w;
                            }
                        }
                    }
                    out[(i, oz, oy, ox)] = acc;
                }
            }
        }
    }
    out
}

/// Counts the exact number of non-padding MACs the layer performs.
///
/// With zero padding some taps fall outside the input and are skipped by
/// [`convolve`]; this walks the same nest and counts only real products.
/// Without padding it equals [`ConvLayer::macs`].
#[must_use]
pub fn effective_macs(layer: &ConvLayer) -> u64 {
    let pad = layer.padding();
    let stride = layer.stride();
    let mut macs = 0u64;
    for oy in 0..layer.output_height() {
        for ox in 0..layer.output_width() {
            let mut taps = 0u64;
            for ky in 0..layer.kernel_height() {
                for kx in 0..layer.kernel_width() {
                    let iy = (oy * stride + ky) as isize - pad.vertical as isize;
                    let ix = (ox * stride + kx) as isize - pad.horizontal as isize;
                    if iy >= 0
                        && ix >= 0
                        && (iy as usize) < layer.in_height()
                        && (ix as usize) < layer.in_width()
                    {
                        taps += 1;
                    }
                }
            }
            macs += taps;
        }
    }
    macs * layer.batch() as u64 * layer.out_channels() as u64 * layer.in_channels() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Padding;

    fn tiny_layer() -> ConvLayer {
        ConvLayer::builder()
            .batch(1)
            .out_channels(1)
            .in_channels(1)
            .input(3, 3)
            .kernel(2, 2)
            .stride(1)
            .padding(Padding::none())
            .build()
            .unwrap()
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1.0 reproduces the input.
        let layer = ConvLayer::builder()
            .batch(1)
            .out_channels(1)
            .in_channels(1)
            .input(4, 4)
            .kernel(1, 1)
            .build()
            .unwrap();
        let input = Tensor4::from_fn(1, 1, 4, 4, |_, _, h, w| (h * 4 + w) as f64);
        let weights = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
        let out = convolve(&layer, &input, &weights);
        assert_eq!(out, input);
    }

    #[test]
    fn hand_computed_2x2() {
        let layer = tiny_layer();
        let input = Tensor4::from_vec(
            1,
            1,
            3,
            3,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        );
        let weights = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let out = convolve(&layer, &input, &weights);
        // out[y][x] = in[y][x] + in[y+1][x+1]
        assert_eq!(out.as_slice(), &[6.0, 8.0, 12.0, 14.0]);
    }

    #[test]
    fn multi_channel_sums_channels() {
        let layer = ConvLayer::builder()
            .batch(1)
            .out_channels(1)
            .in_channels(2)
            .input(2, 2)
            .kernel(1, 1)
            .build()
            .unwrap();
        let input = Tensor4::from_fn(1, 2, 2, 2, |_, c, h, w| ((c + 1) * (h * 2 + w + 1)) as f64);
        let weights = Tensor4::from_vec(1, 2, 1, 1, vec![1.0, 1.0]);
        let out = convolve(&layer, &input, &weights);
        // each output = in_ch0 + in_ch1 = 3 * (h*2+w+1)
        assert_eq!(out.as_slice(), &[3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn padding_contributes_zeros() {
        let layer = ConvLayer::builder()
            .batch(1)
            .out_channels(1)
            .in_channels(1)
            .input(2, 2)
            .kernel(3, 3)
            .padding(Padding::same(3))
            .build()
            .unwrap();
        let input = Tensor4::from_vec(1, 1, 2, 2, vec![1.0; 4]);
        let weights = Tensor4::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let out = convolve(&layer, &input, &weights);
        // All four positions see all four ones exactly once.
        assert_eq!(out.as_slice(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn stride_two_subsamples() {
        let layer = ConvLayer::builder()
            .batch(1)
            .out_channels(1)
            .in_channels(1)
            .input(4, 4)
            .kernel(1, 1)
            .stride(2)
            .build()
            .unwrap();
        let input = Tensor4::from_fn(1, 1, 4, 4, |_, _, h, w| (h * 4 + w) as f64);
        let weights = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
        let out = convolve(&layer, &input, &weights);
        assert_eq!(out.as_slice(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn effective_macs_no_padding_equals_macs() {
        let layer = tiny_layer();
        assert_eq!(effective_macs(&layer), layer.macs());
    }

    #[test]
    fn effective_macs_with_padding_is_smaller() {
        let layer = ConvLayer::square(1, 4, 8, 3, 3, 1).unwrap();
        assert!(effective_macs(&layer) < layer.macs());
    }

    #[test]
    #[should_panic(expected = "input tensor shape")]
    fn shape_mismatch_panics() {
        let layer = tiny_layer();
        let input: Tensor4<f64> = Tensor4::zeros(1, 1, 4, 4);
        let weights: Tensor4<f64> = Tensor4::zeros(1, 1, 2, 2);
        let _ = convolve(&layer, &input, &weights);
    }
}
