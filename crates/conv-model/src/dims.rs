use serde::{Deserialize, Serialize};

use crate::error::LayerError;
use crate::BYTES_PER_WORD;

/// Symmetric zero padding applied to the input feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Padding {
    /// Rows of zeros added above and below the input.
    pub vertical: usize,
    /// Columns of zeros added left and right of the input.
    pub horizontal: usize,
}

impl Padding {
    /// `same`-style padding for odd square kernels: `(k - 1) / 2` on each side.
    #[must_use]
    pub fn same(kernel: usize) -> Self {
        Padding {
            vertical: kernel.saturating_sub(1) / 2,
            horizontal: kernel.saturating_sub(1) / 2,
        }
    }

    /// No padding.
    #[must_use]
    pub fn none() -> Self {
        Padding::default()
    }
}

/// Geometry of one convolutional layer.
///
/// Follows the naming of the paper (Fig. 1/2): a batch of `B` input images
/// with `Ci` channels of `Hi×Wi` pixels is convolved with `Co` kernels of
/// shape `Ci×Hk×Wk` at stride `D`, producing `B` output images with `Co`
/// channels of `Ho×Wo` pixels.
///
/// A `ConvLayer` is validated at construction: all dimensions are positive
/// and at least one sliding window fits. Use [`ConvLayer::builder`] for named
/// construction or [`ConvLayer::square`] for the common square case.
///
/// ```
/// use conv_model::ConvLayer;
///
/// // VGG-16 conv3-1: 128→256 channels on a 56×56 map.
/// let layer = ConvLayer::square(1, 256, 56, 128, 3, 1).unwrap();
/// assert_eq!(layer.output_height(), 56);
/// assert_eq!(layer.macs(), 56 * 56 * 256 * 128 * 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayer {
    batch: usize,
    out_channels: usize,
    in_channels: usize,
    in_height: usize,
    in_width: usize,
    kernel_height: usize,
    kernel_width: usize,
    stride: usize,
    padding: Padding,
}

impl ConvLayer {
    /// Starts building a layer with named setters.
    #[must_use]
    pub fn builder() -> ConvLayerBuilder {
        ConvLayerBuilder::default()
    }

    /// Builds the common square layer: square input `size×size`, square
    /// kernel `kernel×kernel`, `same` padding, given stride.
    ///
    /// # Errors
    ///
    /// Returns [`LayerError`] if any dimension is zero or the kernel does not
    /// fit in the padded input.
    pub fn square(
        batch: usize,
        out_channels: usize,
        size: usize,
        in_channels: usize,
        kernel: usize,
        stride: usize,
    ) -> Result<Self, LayerError> {
        ConvLayer::builder()
            .batch(batch)
            .out_channels(out_channels)
            .in_channels(in_channels)
            .input(size, size)
            .kernel(kernel, kernel)
            .stride(stride)
            .padding(Padding::same(kernel))
            .build()
    }

    /// Batch size `B`.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Output channels `Co` (number of kernels).
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channels `Ci`.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Input feature-map height `Hi` (unpadded).
    #[must_use]
    pub fn in_height(&self) -> usize {
        self.in_height
    }

    /// Input feature-map width `Wi` (unpadded).
    #[must_use]
    pub fn in_width(&self) -> usize {
        self.in_width
    }

    /// Kernel height `Hk`.
    #[must_use]
    pub fn kernel_height(&self) -> usize {
        self.kernel_height
    }

    /// Kernel width `Wk`.
    #[must_use]
    pub fn kernel_width(&self) -> usize {
        self.kernel_width
    }

    /// Stride `D` (identical in both spatial directions, as in the paper).
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding applied to the input.
    #[must_use]
    pub fn padding(&self) -> Padding {
        self.padding
    }

    /// Output height `Ho = (Hi + 2·pad_v − Hk) / D + 1`.
    #[must_use]
    pub fn output_height(&self) -> usize {
        (self.in_height + 2 * self.padding.vertical - self.kernel_height) / self.stride + 1
    }

    /// Output width `Wo = (Wi + 2·pad_h − Wk) / D + 1`.
    #[must_use]
    pub fn output_width(&self) -> usize {
        (self.in_width + 2 * self.padding.horizontal - self.kernel_width) / self.stride + 1
    }

    /// Number of multiply-accumulate operations:
    /// `B·Wo·Ho·Co·Wk·Hk·Ci`.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.batch as u64
            * self.output_height() as u64
            * self.output_width() as u64
            * self.out_channels as u64
            * self.kernel_height as u64
            * self.kernel_width as u64
            * self.in_channels as u64
    }

    /// Total input words `B·Ci·Hi·Wi` (unpadded; zeros are never fetched).
    #[must_use]
    pub fn input_words(&self) -> u64 {
        self.batch as u64 * self.in_channels as u64 * self.in_height as u64 * self.in_width as u64
    }

    /// Total weight words `Co·Ci·Hk·Wk`.
    #[must_use]
    pub fn weight_words(&self) -> u64 {
        self.out_channels as u64
            * self.in_channels as u64
            * self.kernel_height as u64
            * self.kernel_width as u64
    }

    /// Total output words `B·Co·Ho·Wo`.
    #[must_use]
    pub fn output_words(&self) -> u64 {
        self.batch as u64
            * self.out_channels as u64
            * self.output_height() as u64
            * self.output_width() as u64
    }

    /// Total input bytes at 16-bit precision.
    #[must_use]
    pub fn input_bytes(&self) -> u64 {
        self.input_words() * BYTES_PER_WORD
    }

    /// Total weight bytes at 16-bit precision.
    #[must_use]
    pub fn weight_bytes(&self) -> u64 {
        self.weight_words() * BYTES_PER_WORD
    }

    /// Total output bytes at 16-bit precision.
    #[must_use]
    pub fn output_bytes(&self) -> u64 {
        self.output_words() * BYTES_PER_WORD
    }

    /// Maximum sliding-window reuse factor of Eq. 2 of the paper:
    /// `R = Wk·Hk / D²`, clamped below at 1.
    ///
    /// Each input element can participate in at most this many overlapping
    /// sliding windows. For a fully-connected layer (or any layer whose
    /// stride covers the kernel) `R = 1` and the layer degenerates to a pure
    /// matrix multiplication.
    #[must_use]
    pub fn window_reuse(&self) -> f64 {
        let r =
            (self.kernel_height * self.kernel_width) as f64 / (self.stride * self.stride) as f64;
        r.max(1.0)
    }

    /// True when the layer is logically a matrix multiplication
    /// (`R == 1`, i.e. no sliding-window overlap).
    #[must_use]
    pub fn is_matrix_multiply(&self) -> bool {
        self.kernel_height * self.kernel_width <= self.stride * self.stride
    }

    /// Arithmetic intensity in MACs per word touched, assuming every datum is
    /// moved exactly once (the ideal-case denominator).
    #[must_use]
    pub fn ideal_intensity(&self) -> f64 {
        self.macs() as f64 / (self.input_words() + self.weight_words() + self.output_words()) as f64
    }

    /// The input rows/columns spanned by a tile of `y` output rows and `x`
    /// output columns: `(x', y') = (D·(x−1) + Wk, D·(y−1) + Hk)`.
    ///
    /// This is the halo relation of Section IV (Fig. 6): for stride 1 it
    /// reduces to `x' = x + Wk − 1`, `y' = y + Hk − 1`.
    #[must_use]
    pub fn input_footprint(&self, x: usize, y: usize) -> (usize, usize) {
        (
            self.stride * (x.saturating_sub(1)) + self.kernel_width,
            self.stride * (y.saturating_sub(1)) + self.kernel_height,
        )
    }
}

impl std::fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conv B{}x{}x{}x{} <- Ci{} k{}x{} s{}",
            self.batch,
            self.out_channels,
            self.output_height(),
            self.output_width(),
            self.in_channels,
            self.kernel_height,
            self.kernel_width,
            self.stride,
        )
    }
}

/// Incremental builder for [`ConvLayer`] (see `C-BUILDER`).
///
/// ```
/// use conv_model::{ConvLayer, Padding};
///
/// let layer = ConvLayer::builder()
///     .batch(3)
///     .out_channels(64)
///     .in_channels(3)
///     .input(224, 224)
///     .kernel(3, 3)
///     .stride(1)
///     .padding(Padding::same(3))
///     .build()
///     .unwrap();
/// assert_eq!(layer.output_width(), 224);
/// ```
#[derive(Debug, Clone)]
pub struct ConvLayerBuilder {
    batch: usize,
    out_channels: usize,
    in_channels: usize,
    in_height: usize,
    in_width: usize,
    kernel_height: usize,
    kernel_width: usize,
    stride: usize,
    padding: Padding,
}

impl Default for ConvLayerBuilder {
    fn default() -> Self {
        ConvLayerBuilder {
            batch: 1,
            out_channels: 1,
            in_channels: 1,
            in_height: 1,
            in_width: 1,
            kernel_height: 1,
            kernel_width: 1,
            stride: 1,
            padding: Padding::none(),
        }
    }
}

impl ConvLayerBuilder {
    /// Sets the batch size `B`.
    #[must_use]
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the number of kernels / output channels `Co`.
    #[must_use]
    pub fn out_channels(mut self, co: usize) -> Self {
        self.out_channels = co;
        self
    }

    /// Sets the number of input channels `Ci`.
    #[must_use]
    pub fn in_channels(mut self, ci: usize) -> Self {
        self.in_channels = ci;
        self
    }

    /// Sets the unpadded input feature-map extent `Hi×Wi`.
    #[must_use]
    pub fn input(mut self, height: usize, width: usize) -> Self {
        self.in_height = height;
        self.in_width = width;
        self
    }

    /// Sets the kernel extent `Hk×Wk`.
    #[must_use]
    pub fn kernel(mut self, height: usize, width: usize) -> Self {
        self.kernel_height = height;
        self.kernel_width = width;
        self
    }

    /// Sets the stride `D`.
    #[must_use]
    pub fn stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the symmetric zero padding.
    #[must_use]
    pub fn padding(mut self, padding: Padding) -> Self {
        self.padding = padding;
        self
    }

    /// Validates and builds the layer.
    ///
    /// # Errors
    ///
    /// Returns [`LayerError::ZeroDimension`] if any extent is zero,
    /// [`LayerError::ZeroStride`] for a zero stride, and
    /// [`LayerError::KernelTooLarge`] when no sliding window fits inside the
    /// padded input.
    pub fn build(self) -> Result<ConvLayer, LayerError> {
        let dims: [(&'static str, usize); 7] = [
            ("batch", self.batch),
            ("out_channels", self.out_channels),
            ("in_channels", self.in_channels),
            ("in_height", self.in_height),
            ("in_width", self.in_width),
            ("kernel_height", self.kernel_height),
            ("kernel_width", self.kernel_width),
        ];
        for (dimension, value) in dims {
            if value == 0 {
                return Err(LayerError::ZeroDimension { dimension });
            }
        }
        if self.stride == 0 {
            return Err(LayerError::ZeroStride);
        }
        let padded_h = self.in_height + 2 * self.padding.vertical;
        let padded_w = self.in_width + 2 * self.padding.horizontal;
        if self.kernel_height > padded_h {
            return Err(LayerError::KernelTooLarge {
                kernel: self.kernel_height,
                input: padded_h,
            });
        }
        if self.kernel_width > padded_w {
            return Err(LayerError::KernelTooLarge {
                kernel: self.kernel_width,
                input: padded_w,
            });
        }
        Ok(ConvLayer {
            batch: self.batch,
            out_channels: self.out_channels,
            in_channels: self.in_channels,
            in_height: self.in_height,
            in_width: self.in_width,
            kernel_height: self.kernel_height,
            kernel_width: self.kernel_width,
            stride: self.stride,
            padding: self.padding,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_layer_dimensions() {
        let layer = ConvLayer::square(3, 64, 224, 3, 3, 1).unwrap();
        assert_eq!(layer.batch(), 3);
        assert_eq!(layer.output_height(), 224);
        assert_eq!(layer.output_width(), 224);
        assert_eq!(layer.window_reuse(), 9.0);
    }

    #[test]
    fn strided_output_dims() {
        // 11x11 kernel, stride 4, pad 2 on 227 input -> 56 output (AlexNet-ish).
        let layer = ConvLayer::builder()
            .batch(1)
            .out_channels(96)
            .in_channels(3)
            .input(227, 227)
            .kernel(11, 11)
            .stride(4)
            .padding(Padding::none())
            .build()
            .unwrap();
        assert_eq!(layer.output_height(), 55);
        assert_eq!(layer.output_width(), 55);
    }

    #[test]
    fn window_reuse_clamped_at_one() {
        // 1x1 kernel stride 2: R would be 0.25, clamped to 1.
        let layer = ConvLayer::square(1, 8, 16, 8, 1, 2).unwrap();
        assert_eq!(layer.window_reuse(), 1.0);
        assert!(layer.is_matrix_multiply());
    }

    #[test]
    fn mac_count_matches_loop_nest_size() {
        let layer = ConvLayer::square(2, 4, 8, 3, 3, 1).unwrap();
        assert_eq!(layer.macs(), 2 * 4 * 8 * 8 * 3 * 3 * 3);
    }

    #[test]
    fn zero_dimension_rejected() {
        let err = ConvLayer::square(0, 4, 8, 3, 3, 1).unwrap_err();
        assert_eq!(err, LayerError::ZeroDimension { dimension: "batch" });
    }

    #[test]
    fn zero_stride_rejected() {
        let err = ConvLayer::square(1, 4, 8, 3, 3, 0).unwrap_err();
        assert_eq!(err, LayerError::ZeroStride);
    }

    #[test]
    fn oversized_kernel_rejected() {
        let err = ConvLayer::builder()
            .input(4, 4)
            .kernel(9, 9)
            .build()
            .unwrap_err();
        assert!(matches!(err, LayerError::KernelTooLarge { .. }));
    }

    #[test]
    fn input_footprint_halo() {
        let layer = ConvLayer::square(1, 4, 32, 4, 3, 1).unwrap();
        // stride 1: x' = x + Wk - 1
        assert_eq!(layer.input_footprint(10, 7), (12, 9));
        let strided = ConvLayer::builder()
            .input(64, 64)
            .kernel(5, 5)
            .stride(2)
            .build()
            .unwrap();
        // stride 2: x' = 2(x-1) + 5
        assert_eq!(strided.input_footprint(10, 7), (23, 17));
    }

    #[test]
    fn footprint_of_single_output_is_kernel() {
        let layer = ConvLayer::square(1, 4, 32, 4, 3, 1).unwrap();
        assert_eq!(layer.input_footprint(1, 1), (3, 3));
    }

    #[test]
    fn display_is_nonempty() {
        let layer = ConvLayer::square(1, 4, 8, 3, 3, 1).unwrap();
        assert!(!layer.to_string().is_empty());
    }

    #[test]
    fn byte_counts_are_twice_words() {
        let layer = ConvLayer::square(2, 4, 8, 3, 3, 1).unwrap();
        assert_eq!(layer.input_bytes(), 2 * layer.input_words());
        assert_eq!(layer.weight_bytes(), 2 * layer.weight_words());
        assert_eq!(layer.output_bytes(), 2 * layer.output_words());
    }
}
