use std::error::Error;
use std::fmt;

/// Error produced when constructing an invalid [`ConvLayer`](crate::ConvLayer).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayerError {
    /// A dimension that must be positive was zero.
    ZeroDimension {
        /// Name of the offending dimension (e.g. `"batch"`).
        dimension: &'static str,
    },
    /// The kernel extent exceeds the padded input extent, so no sliding
    /// window fits.
    KernelTooLarge {
        /// Kernel extent along the offending axis.
        kernel: usize,
        /// Padded input extent along the offending axis.
        input: usize,
    },
    /// The stride is zero.
    ZeroStride,
}

impl fmt::Display for LayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerError::ZeroDimension { dimension } => {
                write!(f, "layer dimension `{dimension}` must be positive")
            }
            LayerError::KernelTooLarge { kernel, input } => write!(
                f,
                "kernel extent {kernel} exceeds padded input extent {input}"
            ),
            LayerError::ZeroStride => write!(f, "stride must be positive"),
        }
    }
}

impl Error for LayerError {}
