//! Logical convolution→matrix-multiplication conversion (Section III-A).
//!
//! The paper's lower-bound derivation views a convolutional layer as a matrix
//! multiplication `A·B = C` where `A` is the *unfolded* input matrix (one row
//! per sliding window), `B` the reshaped weight matrix and `C` the reshaped
//! output matrix (Fig. 3). The conversion is logical — the dataflow never
//! materialises `A` — but this module *can* materialise it for small layers,
//! which the test-suite uses to validate that convolution and the converted
//! MM agree, and to measure the realised sliding-window reuse.

use std::ops::{Add, Mul};

use crate::{ConvLayer, Tensor4};

/// Shapes of the converted matrix multiplication `A·B = C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MmShape {
    /// Rows of `A` and `C`: `B·Wo·Ho` (one per sliding window per image).
    pub rows: u64,
    /// Columns of `A` / rows of `B`: `Wk·Hk·Ci` (one per kernel tap).
    pub inner: u64,
    /// Columns of `B` and `C`: `Co` (one per kernel).
    pub cols: u64,
}

impl MmShape {
    /// Computes the converted-MM shape for a layer.
    #[must_use]
    pub fn of(layer: &ConvLayer) -> Self {
        MmShape {
            rows: layer.batch() as u64 * layer.output_height() as u64 * layer.output_width() as u64,
            inner: layer.kernel_height() as u64
                * layer.kernel_width() as u64
                * layer.in_channels() as u64,
            cols: layer.out_channels() as u64,
        }
    }

    /// Number of multiply-accumulates of the MM (`rows·inner·cols`), which
    /// equals [`ConvLayer::macs`].
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.rows * self.inner * self.cols
    }

    /// Number of entries in the unfolded input matrix (`rows·inner`).
    #[must_use]
    pub fn unfolded_input_entries(&self) -> u64 {
        self.rows * self.inner
    }
}

/// Realised average sliding-window reuse: unfolded entries per *distinct*
/// input element actually touched.
///
/// This is the empirical counterpart of Eq. 2's upper bound
/// `R = Wk·Hk / D²`; interior pixels of a large map reach the bound while
/// border pixels fall short, so the average is slightly below `R`.
#[must_use]
pub fn realized_window_reuse(layer: &ConvLayer) -> f64 {
    let shape = MmShape::of(layer);
    // Count distinct (non-padding) input elements referenced by some window,
    // and the total number of (window, tap) pairs that hit real inputs.
    let pad = layer.padding();
    let stride = layer.stride();
    let mut touched = vec![false; layer.in_height() * layer.in_width()];
    let mut hits = 0u64;
    for oy in 0..layer.output_height() {
        for ox in 0..layer.output_width() {
            for ky in 0..layer.kernel_height() {
                for kx in 0..layer.kernel_width() {
                    let iy = (oy * stride + ky) as isize - pad.vertical as isize;
                    let ix = (ox * stride + kx) as isize - pad.horizontal as isize;
                    if iy >= 0
                        && ix >= 0
                        && (iy as usize) < layer.in_height()
                        && (ix as usize) < layer.in_width()
                    {
                        touched[iy as usize * layer.in_width() + ix as usize] = true;
                        hits += 1;
                    }
                }
            }
        }
    }
    let distinct = touched.iter().filter(|&&t| t).count() as u64;
    if distinct == 0 {
        return 1.0;
    }
    // `hits`/`distinct` is per-channel and per-image; channels and batch
    // scale numerator and denominator identically.
    let _ = shape;
    hits as f64 / distinct as f64
}

/// Materialises the unfolded input matrix `A` (`rows×inner`, row-major).
///
/// Out-of-bounds (padding) taps are `T::default()`. Intended for small
/// layers in tests; the storage is `rows × inner` elements.
///
/// # Panics
///
/// Panics if `input` does not match `layer`.
#[must_use]
pub fn unfold_input<T>(layer: &ConvLayer, input: &Tensor4<T>) -> Vec<T>
where
    T: Copy + Default,
{
    assert_eq!(
        input.shape(),
        (
            layer.batch(),
            layer.in_channels(),
            layer.in_height(),
            layer.in_width()
        ),
        "input tensor shape does not match layer"
    );
    let shape = MmShape::of(layer);
    let mut a = Vec::with_capacity((shape.rows * shape.inner) as usize);
    let pad = layer.padding();
    let stride = layer.stride();
    for i in 0..layer.batch() {
        for oy in 0..layer.output_height() {
            for ox in 0..layer.output_width() {
                for kz in 0..layer.in_channels() {
                    for ky in 0..layer.kernel_height() {
                        for kx in 0..layer.kernel_width() {
                            let iy = (oy * stride + ky) as isize - pad.vertical as isize;
                            let ix = (ox * stride + kx) as isize - pad.horizontal as isize;
                            let v = if iy >= 0
                                && ix >= 0
                                && (iy as usize) < layer.in_height()
                                && (ix as usize) < layer.in_width()
                            {
                                input[(i, kz, iy as usize, ix as usize)]
                            } else {
                                T::default()
                            };
                            a.push(v);
                        }
                    }
                }
            }
        }
    }
    a
}

/// Reshapes kernels into the weight matrix `B` (`inner×cols`, row-major);
/// column `j` holds kernel `j`'s taps in the same order as
/// [`unfold_input`]'s columns.
///
/// # Panics
///
/// Panics if `weights` does not match `layer`.
#[must_use]
pub fn reshape_weights<T>(layer: &ConvLayer, weights: &Tensor4<T>) -> Vec<T>
where
    T: Copy + Default,
{
    assert_eq!(
        weights.shape(),
        (
            layer.out_channels(),
            layer.in_channels(),
            layer.kernel_height(),
            layer.kernel_width()
        ),
        "weight tensor shape does not match layer"
    );
    let shape = MmShape::of(layer);
    let mut b = vec![T::default(); (shape.inner * shape.cols) as usize];
    for oz in 0..layer.out_channels() {
        let mut row = 0usize;
        for kz in 0..layer.in_channels() {
            for ky in 0..layer.kernel_height() {
                for kx in 0..layer.kernel_width() {
                    b[row * shape.cols as usize + oz] = weights[(oz, kz, ky, kx)];
                    row += 1;
                }
            }
        }
    }
    b
}

/// Plain triple-loop matrix multiply `A(rows×inner) · B(inner×cols)`,
/// row-major, used to validate the conversion.
#[must_use]
pub fn matmul<T>(a: &[T], b: &[T], rows: usize, inner: usize, cols: usize) -> Vec<T>
where
    T: Copy + Default + Add<Output = T> + Mul<Output = T>,
{
    assert_eq!(a.len(), rows * inner);
    assert_eq!(b.len(), inner * cols);
    let mut c = vec![T::default(); rows * cols];
    for r in 0..rows {
        for k in 0..inner {
            let av = a[r * inner + k];
            for j in 0..cols {
                c[r * cols + j] = c[r * cols + j] + av * b[k * cols + j];
            }
        }
    }
    c
}

/// Reshapes a convolution output tensor into the output matrix `C`
/// (`rows×cols`) so it can be compared against [`matmul`]'s result.
#[must_use]
pub fn reshape_output<T>(layer: &ConvLayer, output: &Tensor4<T>) -> Vec<T>
where
    T: Copy + Default,
{
    let shape = MmShape::of(layer);
    let mut c = Vec::with_capacity((shape.rows * shape.cols) as usize);
    for i in 0..layer.batch() {
        for oy in 0..layer.output_height() {
            for ox in 0..layer.output_width() {
                for oz in 0..layer.out_channels() {
                    c.push(output[(i, oz, oy, ox)]);
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::convolve;
    use crate::Padding;

    fn layer_3x3() -> ConvLayer {
        ConvLayer::builder()
            .batch(2)
            .out_channels(3)
            .in_channels(2)
            .input(5, 5)
            .kernel(3, 3)
            .stride(1)
            .padding(Padding::none())
            .build()
            .unwrap()
    }

    #[test]
    fn mm_shape_matches_paper() {
        let layer = layer_3x3();
        let shape = MmShape::of(&layer);
        assert_eq!(shape.rows, 2 * 3 * 3); // B*Ho*Wo
        assert_eq!(shape.inner, 3 * 3 * 2); // Hk*Wk*Ci
        assert_eq!(shape.cols, 3); // Co
        assert_eq!(shape.macs(), layer.macs());
    }

    #[test]
    fn conversion_is_logically_equivalent() {
        // convolution == unfold . matmul . reshape (Fig. 3)
        let layer = layer_3x3();
        let input = Tensor4::from_fn(2, 2, 5, 5, |n, c, h, w| {
            (n * 131 + c * 17 + h * 5 + w) as f64 * 0.25 - 3.0
        });
        let weights = Tensor4::from_fn(3, 2, 3, 3, |n, c, h, w| {
            (n * 7 + c * 3 + h + w) as f64 * 0.5
        });

        let direct = convolve(&layer, &input, &weights);

        let shape = MmShape::of(&layer);
        let a = unfold_input(&layer, &input);
        let b = reshape_weights(&layer, &weights);
        let c = matmul(
            &a,
            &b,
            shape.rows as usize,
            shape.inner as usize,
            shape.cols as usize,
        );
        assert_eq!(c, reshape_output(&layer, &direct));
    }

    #[test]
    fn conversion_equivalent_with_padding_and_stride() {
        let layer = ConvLayer::builder()
            .batch(1)
            .out_channels(2)
            .in_channels(3)
            .input(7, 7)
            .kernel(3, 3)
            .stride(2)
            .padding(Padding::same(3))
            .build()
            .unwrap();
        let input = Tensor4::from_fn(1, 3, 7, 7, |_, c, h, w| ((c + h * w) % 5) as f64 - 2.0);
        let weights = Tensor4::from_fn(2, 3, 3, 3, |n, c, h, w| ((n + c + h + w) % 3) as f64);
        let direct = convolve(&layer, &input, &weights);
        let shape = MmShape::of(&layer);
        let c = matmul(
            &unfold_input(&layer, &input),
            &reshape_weights(&layer, &weights),
            shape.rows as usize,
            shape.inner as usize,
            shape.cols as usize,
        );
        assert_eq!(c, reshape_output(&layer, &direct));
    }

    #[test]
    fn realized_reuse_below_bound() {
        let layer = ConvLayer::square(1, 8, 32, 4, 3, 1).unwrap();
        let realized = realized_window_reuse(&layer);
        assert!(realized <= layer.window_reuse() + 1e-9);
        // Interior-dominated map: should be close to the bound.
        assert!(realized > 0.8 * layer.window_reuse());
    }

    #[test]
    fn realized_reuse_approaches_bound_on_large_maps() {
        let small = ConvLayer::square(1, 1, 8, 1, 3, 1).unwrap();
        let large = ConvLayer::square(1, 1, 128, 1, 3, 1).unwrap();
        assert!(realized_window_reuse(&large) > realized_window_reuse(&small));
    }

    #[test]
    fn mm_layer_reuse_is_one() {
        // 1x1 kernel stride 1: every input used once per window it owns.
        let layer = ConvLayer::square(1, 8, 16, 4, 1, 1).unwrap();
        assert_eq!(realized_window_reuse(&layer), 1.0);
    }

    #[test]
    fn unfolded_entries_count() {
        let layer = layer_3x3();
        let input: Tensor4<f64> = Tensor4::zeros(2, 2, 5, 5);
        let a = unfold_input(&layer, &input);
        assert_eq!(a.len() as u64, MmShape::of(&layer).unfolded_input_entries());
    }
}
