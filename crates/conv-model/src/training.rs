//! Backward-pass layers for CNN training.
//!
//! The paper notes its bound targets "general convolution operations, so
//! that our approach can be adopted in both inference and training"
//! (Section II-A). Both backward computations of a convolutional layer are
//! themselves convolutions, so the whole machinery — Theorem 2, the optimal
//! dataflow, the accelerator — applies to them unchanged once they are
//! expressed as [`ConvLayer`]s:
//!
//! * **weight gradient**: `dW[co][ci] = Σᵢ  in[i][ci] ⊛ dOut[i][co]` — a
//!   convolution whose "images" are the input channels, whose kernels are
//!   the output gradients (one per output channel), and whose reduction
//!   channel is the batch. See [`weight_gradient_layer`].
//! * **input gradient**: `dIn[i][ci] = dOut[i] ⊛ rot180(W)` with full
//!   padding — a convolution with `Co` input channels and `Ci` kernels.
//!   See [`input_gradient_layer`].
//!
//! Both mappings require a unit-stride forward layer (strided backward
//! passes are *dilated* convolutions, outside the paper's ordinary-
//! convolution scope).

use crate::error::LayerError;
use crate::{ConvLayer, Padding};

/// Expresses the weight-gradient computation of `forward` as a
/// convolutional layer.
///
/// Dimension mapping (forward → weight-gradient):
///
/// | gradient dim | value |
/// |---|---|
/// | batch | `Ci` (each input channel is an independent image) |
/// | in channels | `B` (the batch is the reduction dimension) |
/// | input | `Hi×Wi` |
/// | kernels | `Co`, each of extent `Ho×Wo` |
/// | output | `Hk×Wk` (the kernel taps) |
///
/// The gradient layer performs exactly the same number of MACs as the
/// forward layer.
///
/// # Errors
///
/// Returns [`LayerError::ZeroStride`]-style validation errors from the
/// builder, and fails for non-unit strides (dilated backward convolutions
/// are out of scope).
pub fn weight_gradient_layer(forward: &ConvLayer) -> Result<ConvLayer, LayerError> {
    if forward.stride() != 1 {
        // A strided forward pass makes the weight gradient a *dilated*
        // convolution; signal with the closest meaningful error.
        return Err(LayerError::ZeroStride);
    }
    ConvLayer::builder()
        .batch(forward.in_channels())
        .out_channels(forward.out_channels())
        .in_channels(forward.batch())
        .input(forward.in_height(), forward.in_width())
        .kernel(forward.output_height(), forward.output_width())
        .stride(1)
        .padding(forward.padding())
        .build()
}

/// Expresses the input-gradient computation of `forward` as a
/// convolutional layer: `dOut` convolved with the 180°-rotated kernels
/// under full padding.
///
/// | gradient dim | value |
/// |---|---|
/// | batch | `B` |
/// | in channels | `Co` |
/// | input | `Ho×Wo` |
/// | kernels | `Ci`, each `Hk×Wk` |
/// | padding | full (`Hk−1`, `Wk−1`) minus the forward padding |
/// | output | `Hi×Wi` |
///
/// # Errors
///
/// Fails for non-unit strides, like [`weight_gradient_layer`].
pub fn input_gradient_layer(forward: &ConvLayer) -> Result<ConvLayer, LayerError> {
    if forward.stride() != 1 {
        return Err(LayerError::ZeroStride);
    }
    let pad = Padding {
        vertical: forward.kernel_height() - 1 - forward.padding().vertical,
        horizontal: forward.kernel_width() - 1 - forward.padding().horizontal,
    };
    ConvLayer::builder()
        .batch(forward.batch())
        .out_channels(forward.in_channels())
        .in_channels(forward.out_channels())
        .input(forward.output_height(), forward.output_width())
        .kernel(forward.kernel_height(), forward.kernel_width())
        .stride(1)
        .padding(pad)
        .build()
}

/// The three layers of one training step (forward, input gradient, weight
/// gradient) as named layers, for feeding a whole step to the analysis
/// pipeline.
///
/// # Errors
///
/// Fails for non-unit strides.
pub fn training_step(
    name: &str,
    forward: &ConvLayer,
) -> Result<Vec<(String, ConvLayer)>, LayerError> {
    Ok(vec![
        (format!("{name}.fwd"), *forward),
        (format!("{name}.dx"), input_gradient_layer(forward)?),
        (format!("{name}.dw"), weight_gradient_layer(forward)?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::convolve;
    use crate::Tensor4;

    fn forward() -> ConvLayer {
        ConvLayer::square(2, 6, 12, 4, 3, 1).unwrap()
    }

    #[test]
    fn weight_gradient_macs_equal_forward_macs() {
        let f = forward();
        let g = weight_gradient_layer(&f).unwrap();
        assert_eq!(g.macs(), f.macs());
    }

    #[test]
    fn input_gradient_macs_equal_forward_macs() {
        let f = forward();
        let g = input_gradient_layer(&f).unwrap();
        assert_eq!(g.macs(), f.macs());
    }

    #[test]
    fn weight_gradient_output_is_kernel_shaped() {
        let f = forward();
        let g = weight_gradient_layer(&f).unwrap();
        assert_eq!(g.output_height(), f.kernel_height());
        assert_eq!(g.output_width(), f.kernel_width());
        assert_eq!(g.out_channels(), f.out_channels());
        assert_eq!(g.batch(), f.in_channels());
    }

    #[test]
    fn input_gradient_output_is_input_shaped() {
        let f = forward();
        let g = input_gradient_layer(&f).unwrap();
        assert_eq!(g.output_height(), f.in_height());
        assert_eq!(g.output_width(), f.in_width());
        assert_eq!(g.out_channels(), f.in_channels());
    }

    #[test]
    fn strided_layers_rejected() {
        let f = ConvLayer::square(1, 4, 16, 4, 3, 2).unwrap();
        assert!(weight_gradient_layer(&f).is_err());
        assert!(input_gradient_layer(&f).is_err());
    }

    #[test]
    fn training_step_has_three_layers() {
        let step = training_step("conv1", &forward()).unwrap();
        assert_eq!(step.len(), 3);
        assert!(step[0].0.ends_with(".fwd"));
        assert!(step[1].0.ends_with(".dx"));
        assert!(step[2].0.ends_with(".dw"));
    }

    #[test]
    fn window_reuse_of_gradients() {
        // The weight gradient has an enormous sliding window (Ho×Wo kernel),
        // so its R is much larger than the forward R = 9; the input gradient
        // keeps the forward kernel so R matches.
        let f = forward();
        let dw = weight_gradient_layer(&f).unwrap();
        let dx = input_gradient_layer(&f).unwrap();
        assert!(dw.window_reuse() > f.window_reuse());
        assert_eq!(dx.window_reuse(), f.window_reuse());
    }

    #[test]
    fn input_gradient_computes_true_gradient() {
        // Numerical check on a tiny layer: convolving dOut (ones) with the
        // rotated kernels under full padding equals the analytic dIn
        // (sum of the kernel taps that touch each input position).
        let f = ConvLayer::builder()
            .batch(1)
            .out_channels(1)
            .in_channels(1)
            .input(4, 4)
            .kernel(2, 2)
            .padding(Padding::none())
            .build()
            .unwrap();
        let g = input_gradient_layer(&f).unwrap();
        // dOut = all ones (3x3 outputs), weights rotated 180°.
        let dout = Tensor4::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let w = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w_rot = Tensor4::from_vec(1, 1, 2, 2, vec![4.0, 3.0, 2.0, 1.0]);
        let din = convolve(&g, &dout, &w_rot);
        // Interior input positions are touched by all 4 taps: sum = 10.
        assert_eq!(din[(0, 0, 1, 1)], 10.0);
        assert_eq!(din[(0, 0, 2, 2)], 10.0);
        // Corner (0,0) only sees tap (0,0) of the kernel: weight 1.
        assert_eq!(din[(0, 0, 0, 0)], 1.0);
        // And the shape matches the forward input.
        assert_eq!(din.shape(), (1, 1, 4, 4));
        let _ = w; // (unrotated kernel only used to document the setup)
    }
}
