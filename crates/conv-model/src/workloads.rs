//! Workload zoo: layer-dimension definitions for the networks used in the
//! paper's evaluation and in the wider test-suite.
//!
//! The paper evaluates on **VGGNet-16 with batch size 3** (Section VI); all
//! figure-reproduction benches iterate [`vgg16`]`(3)`. Only layer
//! *dimensions* matter for every evaluated quantity (communication volumes,
//! energy, cycles), so no pretrained weights are involved.

use serde::{Deserialize, Serialize};

use crate::{ConvLayer, Padding};

/// A named network: an ordered list of named convolutional layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<NamedLayer>,
}

/// One layer of a [`Network`], with its human-readable name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedLayer {
    /// Layer name, e.g. `"conv3_2"`.
    pub name: String,
    /// Layer geometry.
    pub layer: ConvLayer,
}

impl Network {
    /// Creates a network from `(name, layer)` pairs.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: Vec<(String, ConvLayer)>) -> Self {
        Network {
            name: name.into(),
            layers: layers
                .into_iter()
                .map(|(name, layer)| NamedLayer { name, layer })
                .collect(),
        }
    }

    /// Network name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterates over the layers in order.
    pub fn conv_layers(&self) -> impl Iterator<Item = &NamedLayer> {
        self.layers.iter()
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer by index.
    #[must_use]
    pub fn layer(&self, index: usize) -> Option<&NamedLayer> {
        self.layers.get(index)
    }

    /// Total MAC count over all layers, saturating at `u64::MAX`.
    ///
    /// The sum is accumulated in `u128` — per-layer counts are `u64`, so a
    /// user-supplied network a few layers deep can exceed `u64::MAX` even
    /// when every individual layer is in range. Use [`Self::total_macs_u128`]
    /// when the exact value matters.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        u64::try_from(self.total_macs_u128()).unwrap_or(u64::MAX)
    }

    /// Exact total MAC count over all layers, accumulated in `u128` so it
    /// cannot overflow (`u64::MAX` per layer × practical layer counts is far
    /// below `u128::MAX`).
    #[must_use]
    pub fn total_macs_u128(&self) -> u128 {
        self.layers
            .iter()
            .map(|l| u128::from(l.layer.macs()))
            .sum()
    }
}

fn square(batch: usize, co: usize, size: usize, ci: usize) -> ConvLayer {
    ConvLayer::square(batch, co, size, ci, 3, 1).expect("static VGG layer is valid")
}

/// The 13 convolutional layers of VGGNet-16 (Simonyan & Zisserman 2014) at
/// the given batch size — the paper's evaluation workload with `batch = 3`.
///
/// All layers use 3×3 kernels, stride 1 and `same` padding, so each has the
/// maximum sliding-window reuse `R = 9`.
#[must_use]
pub fn vgg16(batch: usize) -> Network {
    let spec: [(&str, usize, usize, usize); 13] = [
        ("conv1_1", 64, 224, 3),
        ("conv1_2", 64, 224, 64),
        ("conv2_1", 128, 112, 64),
        ("conv2_2", 128, 112, 128),
        ("conv3_1", 256, 56, 128),
        ("conv3_2", 256, 56, 256),
        ("conv3_3", 256, 56, 256),
        ("conv4_1", 512, 28, 256),
        ("conv4_2", 512, 28, 512),
        ("conv4_3", 512, 28, 512),
        ("conv5_1", 512, 14, 512),
        ("conv5_2", 512, 14, 512),
        ("conv5_3", 512, 14, 512),
    ];
    Network::new(
        "VGGNet-16",
        spec.iter()
            .map(|&(name, co, size, ci)| (name.to_string(), square(batch, co, size, ci)))
            .collect(),
    )
}

/// The 5 convolutional layers of AlexNet (Krizhevsky et al. 2012) at the
/// given batch size. Exercises large kernels (11×11, 5×5) and stride 4.
#[must_use]
pub fn alexnet(batch: usize) -> Network {
    let l1 = ConvLayer::builder()
        .batch(batch)
        .out_channels(96)
        .in_channels(3)
        .input(227, 227)
        .kernel(11, 11)
        .stride(4)
        .padding(Padding::none())
        .build()
        .expect("static AlexNet layer is valid");
    let l2 = ConvLayer::builder()
        .batch(batch)
        .out_channels(256)
        .in_channels(96)
        .input(27, 27)
        .kernel(5, 5)
        .stride(1)
        .padding(Padding::same(5))
        .build()
        .expect("static AlexNet layer is valid");
    let mk3 = |co: usize, ci: usize| {
        ConvLayer::square(batch, co, 13, ci, 3, 1).expect("static AlexNet layer is valid")
    };
    Network::new(
        "AlexNet",
        vec![
            ("conv1".to_string(), l1),
            ("conv2".to_string(), l2),
            ("conv3".to_string(), mk3(384, 256)),
            ("conv4".to_string(), mk3(384, 384)),
            ("conv5".to_string(), mk3(256, 384)),
        ],
    )
}

/// A ResNet-style bottleneck block (1×1 → 3×3 → 1×1) at `size×size` with the
/// given channel widths. The 1×1 layers have `R = 1` — they are logically
/// matrix multiplications — so this workload exercises the MM corner of the
/// lower bound.
#[must_use]
pub fn resnet_bottleneck(batch: usize, size: usize, in_ch: usize, mid_ch: usize) -> Network {
    let reduce =
        ConvLayer::square(batch, mid_ch, size, in_ch, 1, 1).expect("static ResNet layer is valid");
    let conv =
        ConvLayer::square(batch, mid_ch, size, mid_ch, 3, 1).expect("static ResNet layer is valid");
    let expand =
        ConvLayer::square(batch, in_ch, size, mid_ch, 1, 1).expect("static ResNet layer is valid");
    Network::new(
        "ResNet-bottleneck",
        vec![
            ("reduce_1x1".to_string(), reduce),
            ("conv_3x3".to_string(), conv),
            ("expand_1x1".to_string(), expand),
        ],
    )
}

/// The convolutional layers of ResNet-50 (He et al. 2016) at the given
/// batch size: the 7×7 stem plus four bottleneck stages. Downsampling
/// 1×1 convolutions with stride 2 and the projection shortcuts are
/// included, so the network mixes `R = 9`, `R = 1` and `R < 1`-clamped
/// layers — a broad exercise of the bound.
#[must_use]
pub fn resnet50(batch: usize) -> Network {
    let mut layers: Vec<(String, ConvLayer)> = Vec::new();
    let stem = ConvLayer::builder()
        .batch(batch)
        .out_channels(64)
        .in_channels(3)
        .input(224, 224)
        .kernel(7, 7)
        .stride(2)
        .padding(Padding::same(7))
        .build()
        .expect("static ResNet-50 layer is valid");
    layers.push(("conv1".to_string(), stem));

    // (stage, blocks, size, in_ch of the stage, mid_ch, out_ch)
    let stages: [(usize, usize, usize, usize, usize, usize); 4] = [
        (2, 3, 56, 64, 64, 256),
        (3, 4, 28, 256, 128, 512),
        (4, 6, 14, 512, 256, 1024),
        (5, 3, 7, 1024, 512, 2048),
    ];
    for (stage, blocks, size, stage_in, mid, out) in stages {
        for block in 0..blocks {
            let in_ch = if block == 0 { stage_in } else { out };
            let prefix = format!("conv{stage}_{}", block + 1);
            let mk = |co: usize, ci: usize, k: usize| {
                ConvLayer::square(batch, co, size, ci, k, 1)
                    .expect("static ResNet-50 layer is valid")
            };
            layers.push((format!("{prefix}a"), mk(mid, in_ch, 1)));
            layers.push((format!("{prefix}b"), mk(mid, mid, 3)));
            layers.push((format!("{prefix}c"), mk(out, mid, 1)));
            if block == 0 {
                layers.push((format!("{prefix}sc"), mk(out, in_ch, 1)));
            }
        }
    }
    Network::new("ResNet-50", layers)
}

/// One GoogLeNet-style Inception module at `size×size` with the classic
/// 3a-block channel widths: parallel 1×1, 1×1→3×3, 1×1→5×5 and pool-proj
/// branches. Mixes four kernel sizes — and therefore four different `R`
/// values — in one workload.
#[must_use]
pub fn inception_module(batch: usize, size: usize, in_ch: usize) -> Network {
    let mk = |name: &str, co: usize, ci: usize, k: usize| {
        (
            name.to_string(),
            ConvLayer::square(batch, co, size, ci, k, 1).expect("static Inception layer is valid"),
        )
    };
    Network::new(
        "Inception-3a",
        vec![
            mk("branch1x1", 64, in_ch, 1),
            mk("branch3x3_reduce", 96, in_ch, 1),
            mk("branch3x3", 128, 96, 3),
            mk("branch5x5_reduce", 16, in_ch, 1),
            mk("branch5x5", 32, 16, 5),
            mk("pool_proj", 32, in_ch, 1),
        ],
    )
}

/// A fully-connected layer expressed as a 1×1 convolution on a 1×1 map,
/// which makes it exactly a matrix multiplication (`R = 1`), the case the
/// paper notes its theory covers with the classic `√S` factor.
#[must_use]
pub fn fully_connected(batch: usize, in_features: usize, out_features: usize) -> ConvLayer {
    ConvLayer::builder()
        .batch(batch)
        .out_channels(out_features)
        .in_channels(in_features)
        .input(1, 1)
        .kernel(1, 1)
        .stride(1)
        .build()
        .expect("static FC layer is valid")
}

/// A VGG-style fully-connected classifier head (fc6 → fc7 → fc8) expressed
/// as 1×1 convolutions on 1×1 maps via [`fully_connected`]'s im2col view:
/// each layer is exactly a GEMM with `R = 1`, exercising the pure
/// matrix-multiply corner of the bound at realistic feature widths.
#[must_use]
pub fn fc_stack(batch: usize) -> Network {
    Network::new(
        "FC-stack",
        vec![
            ("fc6".to_string(), fully_connected(batch, 512, 4096)),
            ("fc7".to_string(), fully_connected(batch, 4096, 4096)),
            ("fc8".to_string(), fully_connected(batch, 4096, 1000)),
        ],
    )
}

/// Small synthetic layers for functional tests: every combination stays tiny
/// enough for the reference kernel and the cycle simulator to run in
/// milliseconds while still covering stride, padding, batch and channel
/// variety.
#[must_use]
pub fn tiny_test_layers() -> Vec<ConvLayer> {
    let mut layers = Vec::new();
    for (b, co, size, ci, k, s) in [
        (1, 1, 4, 1, 1, 1),
        (1, 2, 5, 1, 3, 1),
        (2, 3, 6, 2, 3, 1),
        (1, 4, 8, 3, 3, 2),
        (2, 2, 7, 2, 5, 1),
        (1, 8, 6, 4, 1, 1),
    ] {
        if let Ok(layer) = ConvLayer::square(b, co, size, ci, k, s) {
            layers.push(layer);
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_13_layers() {
        let net = vgg16(3);
        assert_eq!(net.len(), 13);
        assert_eq!(net.name(), "VGGNet-16");
    }

    #[test]
    fn vgg16_macs_match_published_totals() {
        // VGG-16 convolution MACs are ~15.35 GMAC per image.
        let net = vgg16(1);
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!(
            (15.0..15.7).contains(&gmacs),
            "unexpected VGG-16 MACs: {gmacs} G"
        );
    }

    #[test]
    fn vgg16_batch_scales_macs_linearly() {
        assert_eq!(vgg16(3).total_macs(), 3 * vgg16(1).total_macs());
    }

    #[test]
    fn vgg16_first_layer_shape() {
        let net = vgg16(3);
        let first = &net.layer(0).unwrap().layer;
        assert_eq!(first.in_channels(), 3);
        assert_eq!(first.out_channels(), 64);
        assert_eq!(first.output_height(), 224);
        assert_eq!(first.window_reuse(), 9.0);
    }

    #[test]
    fn alexnet_first_layer_strided() {
        let net = alexnet(1);
        let first = &net.layer(0).unwrap().layer;
        assert_eq!(first.stride(), 4);
        assert_eq!(first.output_height(), 55);
        // R = 121/16 ≈ 7.56
        assert!((first.window_reuse() - 121.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn fc_layer_is_mm() {
        let fc = fully_connected(16, 4096, 1000);
        assert!(fc.is_matrix_multiply());
        assert_eq!(fc.macs(), 16 * 4096 * 1000);
    }

    #[test]
    fn bottleneck_mixes_r_values() {
        let net = resnet_bottleneck(1, 28, 256, 64);
        let rs: Vec<f64> = net.conv_layers().map(|l| l.layer.window_reuse()).collect();
        assert_eq!(rs, vec![1.0, 9.0, 1.0]);
    }

    #[test]
    fn tiny_layers_all_valid() {
        assert!(!tiny_test_layers().is_empty());
    }

    #[test]
    fn inception_mixes_kernel_sizes() {
        let net = inception_module(1, 28, 192);
        assert_eq!(net.len(), 6);
        let mut rs: Vec<f64> = net.conv_layers().map(|l| l.layer.window_reuse()).collect();
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rs.dedup();
        assert_eq!(rs, vec![1.0, 9.0, 25.0]);
    }

    #[test]
    fn fc_stack_is_all_matrix_multiplies() {
        let net = fc_stack(3);
        assert_eq!(net.len(), 3);
        assert!(net.conv_layers().all(|l| l.layer.is_matrix_multiply()));
        // fc6 512→4096 + fc7 4096→4096 + fc8 4096→1000, batch 3.
        assert_eq!(
            net.total_macs(),
            3 * (512 * 4096 + 4096 * 4096 + 4096 * 1000)
        );
    }

    /// Regression: `total_macs` used to `sum()` per-layer `u64`s unchecked,
    /// panicking in debug (and wrapping in release) once a user-supplied
    /// network's MACs crossed `u64::MAX`. Five layers of 2^62 MACs each must
    /// now saturate instead, with the exact value available in `u128`.
    #[test]
    fn total_macs_saturates_instead_of_overflowing() {
        let big = ConvLayer::builder()
            .batch(1 << 16)
            .out_channels(1 << 16)
            .in_channels(1 << 16)
            .input(128, 128)
            .kernel(1, 1)
            .stride(1)
            .padding(Padding::none())
            .build()
            .expect("huge but structurally valid layer");
        assert_eq!(big.macs(), 1 << 62);
        let layers = (0..5).map(|i| (format!("huge{i}"), big)).collect();
        let net = Network::new("overflow-probe", layers);
        assert_eq!(net.total_macs(), u64::MAX);
        assert_eq!(net.total_macs_u128(), 5 * (1u128 << 62));
    }

    #[test]
    fn resnet50_layer_count() {
        // 1 stem + Σ blocks*3 + 4 shortcuts = 1 + (3+4+6+3)*3 + 4 = 53.
        let net = resnet50(1);
        assert_eq!(net.len(), 53);
    }

    #[test]
    fn resnet50_macs_match_published_scale() {
        // ResNet-50 convolutions are ~3.8 GMACs per image (excluding FC).
        let gmacs = resnet50(1).total_macs() as f64 / 1e9;
        assert!((3.2..4.3).contains(&gmacs), "ResNet-50 MACs: {gmacs} G");
    }

    #[test]
    fn resnet50_mixes_reuse_factors() {
        let net = resnet50(1);
        let rs: Vec<f64> = net.conv_layers().map(|l| l.layer.window_reuse()).collect();
        assert!(rs.contains(&9.0));
        assert!(rs.contains(&1.0));
        // The strided 7x7 stem: R = 49/4.
        assert!(rs.iter().any(|&r| (r - 12.25).abs() < 1e-12));
    }
}
