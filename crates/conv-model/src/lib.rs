//! Convolutional-layer modelling substrate.
//!
//! This crate provides the geometric and functional foundations used by the
//! rest of the workspace:
//!
//! * [`ConvLayer`] — the seven-dimensional geometry of a convolutional layer
//!   (`B, Co, Ho, Wo, Ci, Hk, Wk` plus stride), with derived quantities such
//!   as MAC counts, tensor footprints and the sliding-window reuse factor `R`
//!   of the paper (Eq. 2).
//! * [`Tensor4`] — a dense `N×C×H×W` tensor used by the reference kernels and
//!   the functional mode of the cycle simulator.
//! * [`mod@reference`] — the textbook 7-loop convolution (Fig. 2 of the paper),
//!   used as ground truth for every functional test in the workspace.
//! * [`im2col`] — the logical convolution→matrix-multiplication conversion of
//!   Section III-A (Fig. 3), used by the lower-bound derivation.
//! * [`fixed`] — 16-bit fixed-point arithmetic matching the paper's PEs.
//! * [`workloads`] — layer-dimension zoos (VGGNet-16 with batch 3 as used in
//!   the paper's evaluation, plus AlexNet/ResNet for wider testing).
//!
//! # Example
//!
//! ```
//! use conv_model::{ConvLayer, workloads};
//!
//! let layer = ConvLayer::square(1, 64, 224, 3, 3, 1).unwrap();
//! assert_eq!(layer.macs(), 224 * 224 * 64 * 3 * 3 * 3);
//!
//! let vgg = workloads::vgg16(3);
//! assert_eq!(vgg.conv_layers().count(), 13);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod dims;
mod error;
pub mod fixed;
pub mod im2col;
pub mod reference;
mod tensor;
pub mod training;
pub mod workloads;

pub use dims::{ConvLayer, ConvLayerBuilder, Padding};
pub use error::LayerError;
pub use tensor::Tensor4;

/// Number of bytes per data word everywhere in this reproduction.
///
/// The paper uses 16-bit fixed-point arithmetic units (Section V), so every
/// input, weight, output and partial sum occupies two bytes. Communication
/// *volumes* in the paper's figures are reported in bytes; communication
/// *entries* (what the tiling mathematics reasons about) are words. This
/// constant converts between the two.
pub const BYTES_PER_WORD: u64 = 2;
