//! 16-bit fixed-point arithmetic matching the paper's PEs.
//!
//! The accelerator of Section V uses 16-bit fixed-point arithmetic units.
//! [`Q8_8`] is a signed Q8.8 value (8 integer bits, 8 fractional bits) with
//! saturating arithmetic, which is what the simulator's functional mode
//! computes with. Accumulation inside a PE is done in a wider 32-bit
//! accumulator ([`Acc32`]) exactly as real MAC units do, and only the final
//! write-back saturates.

use std::ops::{Add, Mul};

use serde::{Deserialize, Serialize};

/// Signed Q8.8 fixed-point number (range −128.0 ..= 127.996).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Q8_8(i16);

/// Number of fractional bits in [`Q8_8`].
pub const FRAC_BITS: u32 = 8;

impl Q8_8 {
    /// The value zero.
    pub const ZERO: Q8_8 = Q8_8(0);
    /// The value one.
    pub const ONE: Q8_8 = Q8_8(1 << FRAC_BITS);
    /// Largest representable value (≈127.996).
    pub const MAX: Q8_8 = Q8_8(i16::MAX);
    /// Smallest representable value (−128.0).
    pub const MIN: Q8_8 = Q8_8(i16::MIN);

    /// Creates a value from its raw two's-complement bit pattern.
    #[must_use]
    pub fn from_bits(bits: i16) -> Self {
        Q8_8(bits)
    }

    /// Raw two's-complement bit pattern.
    #[must_use]
    pub fn to_bits(self) -> i16 {
        self.0
    }

    /// Converts from `f64`, rounding to nearest and saturating to the
    /// representable range.
    #[must_use]
    pub fn from_f64(v: f64) -> Self {
        let scaled = (v * f64::from(1 << FRAC_BITS)).round();
        Q8_8(scaled.clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16)
    }

    /// Converts to `f64` exactly.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / f64::from(1 << FRAC_BITS)
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, rhs: Q8_8) -> Q8_8 {
        Q8_8(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication with round-to-zero, as a combinational
    /// fixed-point multiplier would produce.
    #[must_use]
    pub fn saturating_mul(self, rhs: Q8_8) -> Q8_8 {
        let wide = (i32::from(self.0) * i32::from(rhs.0)) >> FRAC_BITS;
        Q8_8(wide.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16)
    }
}

impl Add for Q8_8 {
    type Output = Q8_8;

    fn add(self, rhs: Q8_8) -> Q8_8 {
        self.saturating_add(rhs)
    }
}

impl Mul for Q8_8 {
    type Output = Q8_8;

    fn mul(self, rhs: Q8_8) -> Q8_8 {
        self.saturating_mul(rhs)
    }
}

impl From<i8> for Q8_8 {
    fn from(v: i8) -> Self {
        Q8_8(i16::from(v) << FRAC_BITS)
    }
}

impl std::fmt::Display for Q8_8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// 32-bit MAC accumulator: products are accumulated at full Q16.16 precision
/// and only the final [`Acc32::to_q8_8`] conversion rounds and saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Acc32(i32);

impl Acc32 {
    /// A cleared accumulator.
    pub const ZERO: Acc32 = Acc32(0);

    /// Accumulates one `a × w` product at full precision.
    #[must_use]
    pub fn mac(self, a: Q8_8, w: Q8_8) -> Acc32 {
        Acc32(self.0.wrapping_add(i32::from(a.0) * i32::from(w.0)))
    }

    /// Adds another accumulator (used when merging partial sums).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Acc32) -> Acc32 {
        Acc32(self.0.wrapping_add(rhs.0))
    }

    /// Raw Q16.16 bits.
    #[must_use]
    pub fn to_bits(self) -> i32 {
        self.0
    }

    /// Rounds (to zero) and saturates down to a Q8.8 word, as on write-back
    /// to a 16-bit LReg.
    #[must_use]
    pub fn to_q8_8(self) -> Q8_8 {
        let narrowed = self.0 >> FRAC_BITS;
        Q8_8(narrowed.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_values() {
        for v in [-3.5, -0.25, 0.0, 0.5, 1.0, 42.125] {
            assert_eq!(Q8_8::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn one_times_one_is_one() {
        assert_eq!(Q8_8::ONE * Q8_8::ONE, Q8_8::ONE);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(Q8_8::MAX + Q8_8::ONE, Q8_8::MAX);
        assert_eq!(Q8_8::MIN + Q8_8::from_f64(-1.0), Q8_8::MIN);
    }

    #[test]
    fn saturating_mul_clamps() {
        let big = Q8_8::from_f64(100.0);
        assert_eq!(big * big, Q8_8::MAX);
        let negbig = Q8_8::from_f64(-100.0);
        assert_eq!(negbig * big, Q8_8::MIN);
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q8_8::from_f64(1e9), Q8_8::MAX);
        assert_eq!(Q8_8::from_f64(-1e9), Q8_8::MIN);
    }

    #[test]
    fn accumulator_keeps_precision() {
        // 0.5 * 0.5 = 0.25 would round to zero bits in Q8.8 product chains of
        // eighth-precision values; the wide accumulator keeps them.
        let a = Q8_8::from_f64(0.0625);
        let w = Q8_8::from_f64(0.0625);
        let mut acc = Acc32::ZERO;
        for _ in 0..256 {
            acc = acc.mac(a, w);
        }
        // 256 * (0.0625^2) = 1.0
        assert_eq!(acc.to_q8_8(), Q8_8::ONE);
    }

    #[test]
    fn from_i8_is_exact() {
        assert_eq!(Q8_8::from(3i8).to_f64(), 3.0);
        assert_eq!(Q8_8::from(-7i8).to_f64(), -7.0);
    }

    #[test]
    fn accumulator_merge() {
        let a = Acc32::ZERO.mac(Q8_8::ONE, Q8_8::ONE);
        let b = Acc32::ZERO.mac(Q8_8::ONE, Q8_8::ONE);
        assert_eq!(a.add(b).to_q8_8().to_f64(), 2.0);
    }
}
