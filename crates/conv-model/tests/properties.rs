//! Property-based tests of the modelling substrate: layer arithmetic,
//! fixed-point behaviour, tensor layout and the conv→MM conversion.

use conv_model::fixed::{Acc32, Q8_8};
use conv_model::{im2col, reference, ConvLayer, Padding, Tensor4};
use proptest::prelude::*;

fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..=3,
        1usize..=8,
        3usize..=12,
        1usize..=4,
        1usize..=3,
        1usize..=3,
        prop::bool::ANY,
    )
        .prop_filter_map("valid layer", |(b, co, size, ci, k, s, pad)| {
            ConvLayer::builder()
                .batch(b)
                .out_channels(co)
                .in_channels(ci)
                .input(size, size)
                .kernel(k, k)
                .stride(s)
                .padding(if pad {
                    Padding::same(k)
                } else {
                    Padding::none()
                })
                .build()
                .ok()
        })
}

proptest! {
    #[test]
    fn macs_equal_mm_shape_macs(layer in layer_strategy()) {
        let shape = im2col::MmShape::of(&layer);
        prop_assert_eq!(shape.macs(), layer.macs());
    }

    #[test]
    fn output_dims_fit_input(layer in layer_strategy()) {
        // Every sliding window must fit in the padded input.
        let last_y = (layer.output_height() - 1) * layer.stride() + layer.kernel_height();
        let last_x = (layer.output_width() - 1) * layer.stride() + layer.kernel_width();
        prop_assert!(last_y <= layer.in_height() + 2 * layer.padding().vertical);
        prop_assert!(last_x <= layer.in_width() + 2 * layer.padding().horizontal);
    }

    #[test]
    fn window_reuse_bounds_realized_reuse(layer in layer_strategy()) {
        let realized = im2col::realized_window_reuse(&layer);
        prop_assert!(realized <= layer.window_reuse() + 1e-9);
        prop_assert!(realized >= 1.0 - 1e-9);
    }

    #[test]
    fn effective_macs_at_most_macs(layer in layer_strategy()) {
        prop_assert!(reference::effective_macs(&layer) <= layer.macs());
        if layer.padding() == Padding::none() {
            prop_assert_eq!(reference::effective_macs(&layer), layer.macs());
        }
    }

    #[test]
    fn footprint_monotone(layer in layer_strategy(), x in 1usize..=8, y in 1usize..=8) {
        let (x1, y1) = layer.input_footprint(x, y);
        let (x2, y2) = layer.input_footprint(x + 1, y + 2);
        prop_assert!(x2 >= x1);
        prop_assert!(y2 >= y1);
    }

    #[test]
    fn conv_is_linear_in_weights(layer in layer_strategy(), seed in 0u64..10_000) {
        // convolve(in, w1 + w2) == convolve(in, w1) + convolve(in, w2)
        let (b, ci, hi, wi) = (layer.batch(), layer.in_channels(), layer.in_height(), layer.in_width());
        let (kh, kw) = (layer.kernel_height(), layer.kernel_width());
        let rnd = |i: usize, base: u64| ((base.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64 * 0x100000001B3)) % 17) as f64 - 8.0;
        let input = {
            let mut i = 0usize;
            Tensor4::from_fn(b, ci, hi, wi, |_, _, _, _| { i += 1; rnd(i, seed) })
        };
        let w1 = {
            let mut i = 0usize;
            Tensor4::from_fn(layer.out_channels(), ci, kh, kw, |_, _, _, _| { i += 1; rnd(i, seed ^ 0xABCD) })
        };
        let w2 = {
            let mut i = 0usize;
            Tensor4::from_fn(layer.out_channels(), ci, kh, kw, |_, _, _, _| { i += 1; rnd(i, seed ^ 0x1234) })
        };
        let wsum = {
            let mut v = w1.clone().into_vec();
            for (a, b) in v.iter_mut().zip(w2.as_slice()) {
                *a += *b;
            }
            Tensor4::from_vec(layer.out_channels(), ci, kh, kw, v)
        };
        let y1 = reference::convolve(&layer, &input, &w1);
        let y2 = reference::convolve(&layer, &input, &w2);
        let ysum = reference::convolve(&layer, &input, &wsum);
        for (i, v) in ysum.as_slice().iter().enumerate() {
            prop_assert!((v - (y1.as_slice()[i] + y2.as_slice()[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn q8_8_roundtrip_on_grid(raw in i16::MIN..=i16::MAX) {
        let q = Q8_8::from_bits(raw);
        prop_assert_eq!(Q8_8::from_f64(q.to_f64()), q);
    }

    #[test]
    fn q8_8_add_commutes_and_saturates(a in i16::MIN..=i16::MAX, b in i16::MIN..=i16::MAX) {
        let (x, y) = (Q8_8::from_bits(a), Q8_8::from_bits(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert!(x.saturating_add(y) <= Q8_8::MAX);
        prop_assert!(x.saturating_add(y) >= Q8_8::MIN);
    }

    #[test]
    fn q8_8_mul_commutes(a in -1000i16..=1000, b in -1000i16..=1000) {
        let (x, y) = (Q8_8::from_bits(a), Q8_8::from_bits(b));
        prop_assert_eq!(x * y, y * x);
    }

    #[test]
    fn acc32_order_independent(vals in prop::collection::vec((-64i8..=64, -64i8..=64), 1..32)) {
        // Wide accumulation is exact, so order must not matter.
        let fwd = vals.iter().fold(Acc32::ZERO, |acc, &(a, w)| {
            acc.mac(Q8_8::from(a), Q8_8::from(w))
        });
        let rev = vals.iter().rev().fold(Acc32::ZERO, |acc, &(a, w)| {
            acc.mac(Q8_8::from(a), Q8_8::from(w))
        });
        prop_assert_eq!(fwd.to_bits(), rev.to_bits());
    }

    #[test]
    fn tensor_from_fn_indexing(n in 1usize..=3, c in 1usize..=3, h in 1usize..=5, w in 1usize..=5) {
        let t = Tensor4::from_fn(n, c, h, w, |a, b, cc, d| (a * 1000 + b * 100 + cc * 10 + d) as f64);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        prop_assert_eq!(t[(ni, ci, hi, wi)], (ni * 1000 + ci * 100 + hi * 10 + wi) as f64);
                    }
                }
            }
        }
    }
}
