//! Property tests pinning the search engine to the retained naive
//! reference: the pruned, parallel, memoized engine must return
//! bit-identical [`DataflowChoice`]s across all eight dataflow kinds,
//! several memory sizes, and stride/padding-heavy layers.

use comm_bound::OnChipMemory;
use conv_model::{ConvLayer, Padding};
use dataflow::engine::{self, naive};
use dataflow::DataflowKind;
use proptest::prelude::*;

/// Random layers biased toward awkward geometry: strides up to 3, kernels
/// up to 5, optional same-padding, non-divisible output sizes.
fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..=3,  // batch
        1usize..=48, // out channels
        6usize..=40, // input size
        1usize..=8,  // in channels
        1usize..=5,  // kernel
        1usize..=3,  // stride
        prop::bool::ANY,
    )
        .prop_filter_map("valid layer", |(b, co, size, ci, k, s, pad)| {
            ConvLayer::builder()
                .batch(b)
                .out_channels(co)
                .in_channels(ci)
                .input(size, size)
                .kernel(k, k)
                .stride(s)
                .padding(if pad {
                    Padding::same(k)
                } else {
                    Padding::none()
                })
                .build()
                .ok()
        })
}

/// Memory sizes from cramped to roomy, including the paper's fractional
/// 66.5 KiB configuration.
const MEM_KIB: [f64; 4] = [2.0, 16.0, 66.5, 173.5];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_naive_for_every_kind(layer in layer_strategy(), mem_i in 0usize..4) {
        let mem = OnChipMemory::from_kib(MEM_KIB[mem_i]);
        for kind in DataflowKind::ALL {
            let fast = engine::search_dataflow(kind, &layer, mem);
            let slow = naive::search_dataflow(kind, &layer, mem);
            prop_assert_eq!(fast, slow, "{:?} diverged on {} at {} KiB", kind, layer, MEM_KIB[mem_i]);
        }
    }

    #[test]
    fn found_minimum_matches_naive(layer in layer_strategy(), mem_i in 0usize..4) {
        let mem = OnChipMemory::from_kib(MEM_KIB[mem_i]);
        prop_assert_eq!(
            engine::found_minimum(&layer, mem),
            naive::found_minimum(&layer, mem)
        );
    }

    #[test]
    fn memoized_result_is_stable(layer in layer_strategy()) {
        // A cached answer must be the same object a fresh search returns.
        let mem = OnChipMemory::from_kib(66.5);
        let first = engine::found_minimum(&layer, mem);
        let cached = engine::found_minimum(&layer, mem);
        prop_assert_eq!(first, cached);
    }
}

#[test]
fn engine_matches_naive_on_all_vgg16_layers() {
    // The acceptance-criteria workload: every VGG-16 conv layer at the
    // paper's 66.5 KiB, all eight dataflows, plus the found minimum.
    let mem = OnChipMemory::from_kib(66.5);
    for named in conv_model::workloads::vgg16(3).conv_layers() {
        for kind in DataflowKind::ALL {
            assert_eq!(
                engine::search_dataflow(kind, &named.layer, mem),
                naive::search_dataflow(kind, &named.layer, mem),
                "{kind:?} diverged on {}",
                named.name
            );
        }
        let fast = engine::found_minimum(&named.layer, mem);
        let slow = naive::found_minimum(&named.layer, mem);
        assert_eq!(fast, slow, "found_minimum diverged on {}", named.name);
        assert_eq!(
            fast.traffic.total_words(),
            slow.traffic.total_words(),
            "traffic totals diverged on {}",
            named.name
        );
    }
}

#[test]
fn engine_matches_naive_on_strided_padded_stress_layers() {
    // Hand-picked geometry stress cases: stride > kernel (input gaps),
    // heavy padding, non-square-friendly sizes, 1×1 kernels.
    let cases = [
        ConvLayer::square(2, 96, 31, 3, 7, 3).unwrap(),
        ConvLayer::square(1, 13, 17, 5, 1, 1).unwrap(),
        ConvLayer::square(3, 64, 23, 24, 5, 4).unwrap(),
        ConvLayer::builder()
            .batch(2)
            .out_channels(32)
            .in_channels(6)
            .input(29, 29)
            .kernel(3, 3)
            .stride(2)
            .padding(Padding::same(3))
            .build()
            .unwrap(),
    ];
    for layer in &cases {
        for kib in [4.0, 32.0, 66.5] {
            let mem = OnChipMemory::from_kib(kib);
            for kind in DataflowKind::ALL {
                assert_eq!(
                    engine::search_dataflow(kind, layer, mem),
                    naive::search_dataflow(kind, layer, mem),
                    "{kind:?} diverged on {layer} at {kib} KiB"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hoisted_candidate_grids_match_recomputation(layer in layer_strategy()) {
        // `LayerTables` hoists the `candidates()` grids so per-search
        // recomputation stops; the hoisted lists must stay exactly the
        // grids a direct call recomputes, for every swept dimension.
        let tables = engine::LayerTables::new(&layer);
        prop_assert_eq!(tables.z_candidates(), &dataflow::candidates(layer.out_channels())[..]);
        prop_assert_eq!(tables.k_candidates(), &dataflow::candidates(layer.in_channels())[..]);
        prop_assert_eq!(tables.y_candidates(), &dataflow::candidates(layer.output_height())[..]);
        prop_assert_eq!(tables.x_candidates(), &dataflow::candidates(layer.output_width())[..]);
    }
}
