//! Network-level checks that the dataflow comparison reproduces the
//! qualitative ordering of Fig. 13 of the paper on VGG-16 (batch 3).

use comm_bound::OnChipMemory;
use conv_model::workloads;
use dataflow::{found_minimum, search_dataflow, DataflowKind, DramTraffic};

fn network_total(kind: DataflowKind, kib: f64) -> Option<u64> {
    let net = workloads::vgg16(3);
    let mem = OnChipMemory::from_kib(kib);
    let mut total = 0u64;
    for l in net.conv_layers() {
        total += search_dataflow(kind, &l.layer, mem)?.traffic.total_words();
    }
    Some(total)
}

fn bound_total(kib: f64) -> f64 {
    let net = workloads::vgg16(3);
    let mem = OnChipMemory::from_kib(kib);
    net.conv_layers()
        .map(|l| comm_bound::dram_bound_words(&l.layer, mem))
        .sum()
}

#[test]
fn ours_within_25_percent_of_bound_at_66_5_kib() {
    // Paper: our dataflow produces ~10% more DRAM access than the bound.
    let ours = network_total(DataflowKind::Ours, 66.5).unwrap() as f64;
    let bound = bound_total(66.5);
    let gap = ours / bound - 1.0;
    assert!(
        (0.0..0.25).contains(&gap),
        "ours/bound gap at 66.5KiB should be small & positive, got {gap:.3}"
    );
}

#[test]
fn ours_close_to_found_minimum() {
    // Paper: difference between ours and the found minimum is 4.5% on average.
    let net = workloads::vgg16(3);
    let mem = OnChipMemory::from_kib(66.5);
    let mut ours = 0u64;
    let mut minimum = 0u64;
    for l in net.conv_layers() {
        ours += search_dataflow(DataflowKind::Ours, &l.layer, mem)
            .unwrap()
            .traffic
            .total_words();
        minimum += found_minimum(&l.layer, mem).traffic.total_words();
    }
    let rel = ours as f64 / minimum as f64 - 1.0;
    assert!(
        (0.0..0.10).contains(&rel),
        "ours vs found minimum gap should be <10%, got {rel:.3}"
    );
}

#[test]
fn second_best_dataflows_are_clearly_worse() {
    // Paper: InR-A and WtR-A are the 2nd/3rd best dataflows with ~45% more
    // traffic than ours. Our exhaustive search is somewhat more generous to
    // the baselines than the paper's (see EXPERIMENTS.md), so we pin the
    // qualitative claim: both are clearly worse (>10%) and remain the two
    // closest runners-up.
    let ours = network_total(DataflowKind::Ours, 66.5).unwrap() as f64;
    let inr_a = network_total(DataflowKind::InRA, 66.5).unwrap() as f64;
    let wtr_a = network_total(DataflowKind::WtRA, 66.5).unwrap() as f64;
    assert!(
        inr_a > 1.10 * ours,
        "InR-A should be clearly worse than ours: {inr_a} vs {ours}"
    );
    assert!(
        wtr_a > 1.10 * ours,
        "WtR-A should be clearly worse than ours: {wtr_a} vs {ours}"
    );
    // Runner-up check: every other baseline is worse than both.
    for kind in [
        DataflowKind::OutRA,
        DataflowKind::OutRB,
        DataflowKind::WtRB,
        DataflowKind::InRC,
    ] {
        let q = network_total(kind, 66.5).unwrap() as f64;
        assert!(
            q > inr_a.min(wtr_a),
            "{kind:?} should be worse than the runners-up"
        );
    }
}

#[test]
fn outr_a_is_the_worst_dataflow() {
    let totals: Vec<(DataflowKind, u64)> = DataflowKind::ALL
        .iter()
        .filter_map(|&k| network_total(k, 66.5).map(|t| (k, t)))
        .collect();
    let worst = totals.iter().max_by_key(|(_, t)| *t).unwrap();
    assert_eq!(worst.0, DataflowKind::OutRA, "totals: {totals:?}");
}

#[test]
fn every_dataflow_beats_naive() {
    let net = workloads::vgg16(3);
    let naive: f64 = net
        .conv_layers()
        .map(|l| comm_bound::naive_dram_words(&l.layer))
        .sum();
    for kind in DataflowKind::ALL {
        if let Some(total) = network_total(kind, 66.5) {
            assert!((total as f64) < naive, "{kind:?} worse than naive: {total}");
        }
    }
}

#[test]
fn fig13_series_decrease_with_memory() {
    for kind in [DataflowKind::Ours, DataflowKind::InRA, DataflowKind::WtRA] {
        let mut prev = u64::MAX;
        for kib in [16.0, 64.0, 256.0] {
            let q = network_total(kind, kib).unwrap();
            assert!(q <= prev, "{kind:?} not monotone at {kib} KiB");
            prev = q;
        }
    }
}

#[test]
fn print_fig13_snapshot_at_66_5_kib() {
    // Not an assertion-heavy test: prints the Fig. 13 column for inspection
    // with --nocapture and pins the bound/ours relation.
    let bound = bound_total(66.5) * 2.0 / 1e9; // GB
    println!("Lower bound      {bound:>8.3} GB");
    for kind in DataflowKind::ALL {
        if let Some(words) = network_total(kind, 66.5) {
            let gb = words as f64 * 2.0 / 1e9;
            println!("{:<16} {gb:>8.3} GB", kind.name());
        }
    }
    let traffic: DramTraffic = workloads::vgg16(3)
        .conv_layers()
        .map(|l| {
            search_dataflow(DataflowKind::Ours, &l.layer, OnChipMemory::from_kib(66.5))
                .unwrap()
                .traffic
        })
        .sum();
    // Our dataflow balances input and weight reads (Section IV-A).
    let ratio = traffic.input_reads as f64 / traffic.weight_reads as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "input/weight reads should be balanced, got {ratio:.2}"
    );
}
