//! Exhaustive tiling search per dataflow, and the "found minimum" oracle.
//!
//! The paper removes the impact of improper tiling sizes by exhaustively
//! searching the tiling space of every dataflow (Section VI-A: "the tiling
//! sizes of all dataflows are obtained by exhaustive searches"). This module
//! reproduces that: each dataflow's free parameters are swept over a dense
//! candidate grid (all divisors plus a geometric ladder, a few thousand
//! points per layer), keeping the feasible choice with the least traffic.

use comm_bound::OnChipMemory;
use conv_model::ConvLayer;
use serde::{Deserialize, Serialize};

use crate::baselines::{
    inr_a_onchip, inr_a_traffic, inr_b_onchip, inr_b_traffic, inr_c_onchip, inr_c_traffic,
    outr_a_onchip, outr_a_traffic, outr_b_onchip, outr_b_traffic, wtr_a_onchip, wtr_a_traffic,
    wtr_b_onchip, wtr_b_traffic, BaselineParams,
};
use crate::tiling::{our_dataflow_traffic, paper_tiling, Tiling};
use crate::traffic::DramTraffic;
use crate::DataflowKind;

/// Result of a tiling search for one dataflow on one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataflowChoice {
    /// Which dataflow this is.
    pub kind: DataflowKind,
    /// Best output tiling (for [`DataflowKind::Ours`]) — `z`/`k`/`y`/`x`
    /// carry the baseline parameters otherwise (with `b` unused).
    pub tiling: Tiling,
    /// Input-channel tile for baselines that use one (`WtR-A`, `InR-A/B`).
    pub k: usize,
    /// The DRAM traffic of the best feasible tiling.
    pub traffic: DramTraffic,
}

/// Candidate tile sizes for a dimension: every divisor when the dimension is
/// small, otherwise all divisors plus a geometric ladder (≈25 points), always
/// including `1` and `dim`.
#[must_use]
pub fn candidates(dim: usize) -> Vec<usize> {
    let mut c: Vec<usize> = Vec::new();
    if dim <= 64 {
        c.extend(1..=dim);
    } else {
        c.extend((1..=dim).filter(|t| dim.is_multiple_of(*t)));
        let mut v = 1.0f64;
        while (v as usize) < dim {
            c.push(v as usize);
            v *= 1.35;
        }
        c.push(dim);
    }
    c.sort_unstable();
    c.dedup();
    c
}

fn better(best: &mut Option<(DramTraffic, Tiling, usize)>, t: DramTraffic, til: Tiling, k: usize) {
    match best {
        Some((bt, _, _)) if bt.total_words() <= t.total_words() => {}
        _ => *best = Some((t, til, k)),
    }
}

/// Exhaustively searches the paper's dataflow tiling `{b, z, y, x}` under
/// the `k = 1` on-chip constraint, seeded with the closed-form
/// [`paper_tiling`] so the result is never worse than the constructive
/// choice.
#[must_use]
pub fn search_ours(layer: &ConvLayer, mem: OnChipMemory) -> DataflowChoice {
    let mut best: Option<(DramTraffic, Tiling, usize)> = None;

    let seed = paper_tiling(layer, mem);
    if seed.fits(layer, mem) {
        better(&mut best, our_dataflow_traffic(layer, &seed), seed, 1);
    }

    let zs = candidates(layer.out_channels());
    let ys = candidates(layer.output_height());
    let xs = candidates(layer.output_width());
    for b in 1..=layer.batch() {
        for &z in &zs {
            for &y in &ys {
                for &x in &xs {
                    let t = Tiling { b, z, y, x };
                    if !t.fits(layer, mem) {
                        continue;
                    }
                    better(&mut best, our_dataflow_traffic(layer, &t), t, 1);
                }
            }
        }
    }
    let (traffic, tiling, k) = best.expect("the {1,1,1,1} tiling always fits any positive memory");
    DataflowChoice {
        kind: DataflowKind::Ours,
        tiling,
        k,
        traffic,
    }
}

fn baseline_tiling(layer: &ConvLayer, p: &BaselineParams) -> Tiling {
    Tiling {
        b: 1,
        z: p.z.clamp(1, layer.out_channels()),
        y: p.y.clamp(1, layer.output_height()),
        x: p.x.clamp(1, layer.output_width()),
    }
}

/// Exhaustively searches one baseline dataflow's parameters.
///
/// Returns `None` when no parameter choice fits (e.g. `InR-C` needs a full
/// `Ci·Wk·Hk` column resident, which can exceed small memories).
#[must_use]
pub fn search_baseline(
    kind: DataflowKind,
    layer: &ConvLayer,
    mem: OnChipMemory,
) -> Option<DataflowChoice> {
    type TrafficFn = fn(&ConvLayer, &BaselineParams) -> DramTraffic;
    type OnchipFn = fn(&ConvLayer, &BaselineParams) -> u64;

    let (traffic_fn, onchip_fn): (TrafficFn, OnchipFn) = match kind {
        DataflowKind::OutRA => (outr_a_traffic, outr_a_onchip),
        DataflowKind::OutRB => (outr_b_traffic, outr_b_onchip),
        DataflowKind::WtRA => (wtr_a_traffic, wtr_a_onchip),
        DataflowKind::WtRB => (wtr_b_traffic, wtr_b_onchip),
        DataflowKind::InRA => (inr_a_traffic, inr_a_onchip),
        DataflowKind::InRB => (inr_b_traffic, inr_b_onchip),
        DataflowKind::InRC => (inr_c_traffic, inr_c_onchip),
        DataflowKind::Ours => {
            let c = search_ours(layer, mem);
            return Some(c);
        }
    };

    // Which parameters each baseline actually sweeps.
    let (sweep_z, sweep_k, sweep_xy) = match kind {
        DataflowKind::OutRA | DataflowKind::OutRB | DataflowKind::InRC => (false, false, true),
        DataflowKind::WtRA => (true, true, false),
        DataflowKind::WtRB => (true, false, false),
        DataflowKind::InRA => (false, true, true),
        DataflowKind::InRB => (false, true, false),
        DataflowKind::Ours => unreachable!(),
    };

    let ones = vec![1usize];
    let zs = if sweep_z {
        candidates(layer.out_channels())
    } else {
        ones.clone()
    };
    let ks = if sweep_k {
        candidates(layer.in_channels())
    } else {
        ones.clone()
    };
    let ys = if sweep_xy {
        candidates(layer.output_height())
    } else {
        ones.clone()
    };
    let xs = if sweep_xy {
        candidates(layer.output_width())
    } else {
        ones
    };

    let mut best: Option<(DramTraffic, BaselineParams)> = None;
    for &z in &zs {
        for &k in &ks {
            for &y in &ys {
                for &x in &xs {
                    let p = BaselineParams { z, k, y, x };
                    if onchip_fn(layer, &p) as f64 > mem.words() {
                        continue;
                    }
                    let t = traffic_fn(layer, &p);
                    match &best {
                        Some((bt, _)) if bt.total_words() <= t.total_words() => {}
                        _ => best = Some((t, p)),
                    }
                }
            }
        }
    }
    best.map(|(traffic, p)| DataflowChoice {
        kind,
        tiling: baseline_tiling(layer, &p),
        k: p.k,
        traffic,
    })
}

/// Searches one dataflow (dispatching between [`search_ours`] and
/// [`search_baseline`]).
#[must_use]
pub fn search_dataflow(
    kind: DataflowKind,
    layer: &ConvLayer,
    mem: OnChipMemory,
) -> Option<DataflowChoice> {
    match kind {
        DataflowKind::Ours => Some(search_ours(layer, mem)),
        other => search_baseline(other, layer, mem),
    }
}

/// The paper's "found minimum": the best dataflow with the best tiling for
/// this layer (Section VI-A). Always succeeds because the paper's dataflow
/// is feasible for any positive memory.
#[must_use]
pub fn found_minimum(layer: &ConvLayer, mem: OnChipMemory) -> DataflowChoice {
    DataflowKind::ALL
        .iter()
        .filter_map(|&kind| search_dataflow(kind, layer, mem))
        .min_by_key(|c| c.traffic.total_words())
        .expect("Ours is always feasible")
}

/// Convenience: the best tiling for the paper's dataflow (exhaustive).
#[must_use]
pub fn plan_tiling(layer: &ConvLayer, mem: OnChipMemory) -> Tiling {
    search_ours(layer, mem).tiling
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    #[test]
    fn candidates_cover_bounds() {
        let c = candidates(56);
        assert!(c.contains(&1));
        assert!(c.contains(&56));
        let c = candidates(224);
        assert!(c.contains(&1));
        assert!(c.contains(&224));
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ours_beats_paper_heuristic_or_ties() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let heuristic = paper_tiling(&l, mem);
        let heuristic_q = our_dataflow_traffic(&l, &heuristic).total_words();
        let searched = search_ours(&l, mem);
        assert!(searched.traffic.total_words() <= heuristic_q);
    }

    #[test]
    fn ours_close_to_lower_bound() {
        // Paper: our dataflow is ~10% above the theoretical lower bound.
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let q = search_ours(&l, mem).traffic.total_words() as f64;
        let bound = comm_bound::dram_bound_words(&l, mem);
        let gap = q / bound - 1.0;
        assert!(
            (-0.02..0.30).contains(&gap),
            "ours should sit within ~30% above the bound, gap={gap}"
        );
    }

    #[test]
    fn found_minimum_not_worse_than_ours() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let ours = search_ours(&l, mem);
        let min = found_minimum(&l, mem);
        assert!(min.traffic.total_words() <= ours.traffic.total_words());
        // And the paper says the difference is small (<~5%).
        let rel = ours.traffic.total_words() as f64 / min.traffic.total_words() as f64;
        assert!(rel < 1.10, "ours within 10% of found minimum, got {rel}");
    }

    #[test]
    fn all_baselines_feasible_at_66_5_kib() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        for kind in DataflowKind::ALL {
            let c = search_dataflow(kind, &l, mem);
            assert!(c.is_some(), "{kind:?} infeasible at 66.5 KiB");
        }
    }

    #[test]
    fn ours_beats_every_baseline_on_vgg_middle_layer() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let ours = search_ours(&l, mem).traffic.total_words();
        for kind in [
            DataflowKind::OutRA,
            DataflowKind::OutRB,
            DataflowKind::WtRA,
            DataflowKind::WtRB,
            DataflowKind::InRA,
            DataflowKind::InRB,
            DataflowKind::InRC,
        ] {
            if let Some(c) = search_dataflow(kind, &l, mem) {
                assert!(
                    c.traffic.total_words() as f64 >= ours as f64 * 0.99,
                    "{kind:?} unexpectedly beats ours by >1%: {} vs {ours}",
                    c.traffic.total_words()
                );
            }
        }
    }

    #[test]
    fn searched_tilings_fit_memory() {
        let l = layer();
        for kib in [16.0, 66.5, 173.5] {
            let mem = OnChipMemory::from_kib(kib);
            let c = search_ours(&l, mem);
            assert!(c.tiling.fits(&l, mem));
        }
    }

    #[test]
    fn more_memory_never_hurts_ours() {
        let l = layer();
        let mut prev = u64::MAX;
        for kib in [16.0, 32.0, 64.0, 128.0, 256.0] {
            let q = search_ours(&l, OnChipMemory::from_kib(kib))
                .traffic
                .total_words();
            assert!(q <= prev);
            prev = q;
        }
    }
}
