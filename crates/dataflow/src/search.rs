//! Exhaustive tiling search per dataflow, and the "found minimum" oracle.
//!
//! The paper removes the impact of improper tiling sizes by exhaustively
//! searching the tiling space of every dataflow (Section VI-A: "the tiling
//! sizes of all dataflows are obtained by exhaustive searches"). The
//! functions here are thin, memoized entry points over the shared
//! [`engine`](crate::engine): axis-table evaluation, monotonicity pruning
//! and thread fan-out live there, together with the retained
//! [`naive`](crate::engine::naive) reference the engine is tested against.

use comm_bound::OnChipMemory;
use conv_model::ConvLayer;
use serde::{Deserialize, Serialize};

use crate::engine;
use crate::tiling::Tiling;
use crate::traffic::DramTraffic;
use crate::DataflowKind;

/// Result of a tiling search for one dataflow on one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataflowChoice {
    /// Which dataflow this is.
    pub kind: DataflowKind,
    /// Best output tiling (for [`DataflowKind::Ours`]) — `z`/`k`/`y`/`x`
    /// carry the baseline parameters otherwise (with `b` unused).
    pub tiling: Tiling,
    /// Input-channel tile for baselines that use one (`WtR-A`, `InR-A/B`).
    pub k: usize,
    /// The DRAM traffic of the best feasible tiling.
    pub traffic: DramTraffic,
}

/// Candidate tile sizes for a dimension: every divisor when the dimension is
/// small, otherwise all divisors plus a geometric ladder (≈25 points), always
/// including `1` and `dim`.
#[must_use]
pub fn candidates(dim: usize) -> Vec<usize> {
    let mut c: Vec<usize> = Vec::new();
    if dim <= 64 {
        c.extend(1..=dim);
    } else {
        c.extend((1..=dim).filter(|t| dim.is_multiple_of(*t)));
        let mut v = 1.0f64;
        while (v as usize) < dim {
            c.push(v as usize);
            v *= 1.35;
        }
        c.push(dim);
    }
    c.sort_unstable();
    c.dedup();
    c
}

/// [`candidates`] densified by one round of midpoint insertion for
/// dimensions above 64 — a strict superset, so a search over it can only
/// improve. Used by the `Ours` tiling sweeps ([`LayerTables`] hoists it),
/// where the staged DSE's bound stage made the finer grid affordable; it
/// tightens the worst-case relative gap between adjacent candidates from
/// ~35% to ~17%. Baseline dataflow sweeps keep the coarser [`candidates`]
/// grid that pins the paper's comparison figures.
///
/// [`LayerTables`]: crate::engine::LayerTables
#[must_use]
pub fn dense_candidates(dim: usize) -> Vec<usize> {
    let c = candidates(dim);
    if dim <= 64 {
        return c;
    }
    let mut dense = Vec::with_capacity(c.len() * 2);
    for w in c.windows(2) {
        dense.push(w[0]);
        let mid = w[0] + (w[1] - w[0]) / 2;
        if mid > w[0] && mid < w[1] {
            dense.push(mid);
        }
    }
    if let Some(&last) = c.last() {
        dense.push(last);
    }
    dense
}

/// Exhaustively searches the paper's dataflow tiling `{b, z, y, x}` under
/// the `k = 1` on-chip constraint, seeded with the closed-form
/// [`paper_tiling`](crate::paper_tiling) so the result is never worse than
/// the constructive choice. Memoized per `(layer shape, memory)`.
#[must_use]
pub fn search_ours(layer: &ConvLayer, mem: OnChipMemory) -> DataflowChoice {
    engine::search_dataflow(DataflowKind::Ours, layer, mem).expect("Ours is always feasible")
}

/// Exhaustively searches one baseline dataflow's parameters. Memoized per
/// `(kind, layer shape, memory)`.
///
/// Returns `None` when no parameter choice fits (e.g. `InR-C` needs a full
/// `Ci·Wk·Hk` column resident, which can exceed small memories).
#[must_use]
pub fn search_baseline(
    kind: DataflowKind,
    layer: &ConvLayer,
    mem: OnChipMemory,
) -> Option<DataflowChoice> {
    engine::search_dataflow(kind, layer, mem)
}

/// Searches one dataflow (dispatching between [`search_ours`] and
/// [`search_baseline`]).
#[must_use]
pub fn search_dataflow(
    kind: DataflowKind,
    layer: &ConvLayer,
    mem: OnChipMemory,
) -> Option<DataflowChoice> {
    engine::search_dataflow(kind, layer, mem)
}

/// The paper's "found minimum": the best dataflow with the best tiling for
/// this layer (Section VI-A). Always succeeds because the paper's dataflow
/// is feasible for any positive memory.
#[must_use]
pub fn found_minimum(layer: &ConvLayer, mem: OnChipMemory) -> DataflowChoice {
    engine::found_minimum(layer, mem)
}

/// Convenience: the best tiling for the paper's dataflow (exhaustive).
#[must_use]
pub fn plan_tiling(layer: &ConvLayer, mem: OnChipMemory) -> Tiling {
    search_ours(layer, mem).tiling
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::{our_dataflow_traffic, paper_tiling};
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    #[test]
    fn candidates_cover_bounds() {
        let c = candidates(56);
        assert!(c.contains(&1));
        assert!(c.contains(&56));
        let c = candidates(224);
        assert!(c.contains(&1));
        assert!(c.contains(&224));
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dense_candidates_are_a_strict_superset_with_halved_gaps() {
        // Small dims: identical (already exhaustive).
        assert_eq!(dense_candidates(56), candidates(56));
        for dim in [112usize, 224, 1000] {
            let coarse = candidates(dim);
            let dense = dense_candidates(dim);
            assert!(coarse.iter().all(|v| dense.contains(v)), "superset");
            assert!(dense.len() > coarse.len(), "strictly denser for dim {dim}");
            assert!(dense.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            // Midpoint insertion at least halves every gap: adjacent
            // candidates are consecutive integers or within ~25% (the
            // coarse ladder allows ~50% between small divisors).
            for w in dense.windows(2) {
                let rel = (w[1] - w[0]) as f64 / w[0] as f64;
                assert!(
                    w[1] - w[0] == 1 || rel <= 0.25,
                    "gap {}→{} too wide for dim {dim}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn ours_beats_paper_heuristic_or_ties() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let heuristic = paper_tiling(&l, mem);
        let heuristic_q = our_dataflow_traffic(&l, &heuristic).total_words();
        let searched = search_ours(&l, mem);
        assert!(searched.traffic.total_words() <= heuristic_q);
    }

    #[test]
    fn ours_close_to_lower_bound() {
        // Paper: our dataflow is ~10% above the theoretical lower bound.
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let q = search_ours(&l, mem).traffic.total_words() as f64;
        let bound = comm_bound::dram_bound_words(&l, mem);
        let gap = q / bound - 1.0;
        assert!(
            (-0.02..0.30).contains(&gap),
            "ours should sit within ~30% above the bound, gap={gap}"
        );
    }

    #[test]
    fn found_minimum_not_worse_than_ours() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let ours = search_ours(&l, mem);
        let min = found_minimum(&l, mem);
        assert!(min.traffic.total_words() <= ours.traffic.total_words());
        // And the paper says the difference is small (<~5%).
        let rel = ours.traffic.total_words() as f64 / min.traffic.total_words() as f64;
        assert!(rel < 1.10, "ours within 10% of found minimum, got {rel}");
    }

    #[test]
    fn all_baselines_feasible_at_66_5_kib() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        for kind in DataflowKind::ALL {
            let c = search_dataflow(kind, &l, mem);
            assert!(c.is_some(), "{kind:?} infeasible at 66.5 KiB");
        }
    }

    #[test]
    fn ours_beats_every_baseline_on_vgg_middle_layer() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let ours = search_ours(&l, mem).traffic.total_words();
        for kind in [
            DataflowKind::OutRA,
            DataflowKind::OutRB,
            DataflowKind::WtRA,
            DataflowKind::WtRB,
            DataflowKind::InRA,
            DataflowKind::InRB,
            DataflowKind::InRC,
        ] {
            if let Some(c) = search_dataflow(kind, &l, mem) {
                assert!(
                    c.traffic.total_words() as f64 >= ours as f64 * 0.99,
                    "{kind:?} unexpectedly beats ours by >1%: {} vs {ours}",
                    c.traffic.total_words()
                );
            }
        }
    }

    #[test]
    fn searched_tilings_fit_memory() {
        let l = layer();
        for kib in [16.0, 66.5, 173.5] {
            let mem = OnChipMemory::from_kib(kib);
            let c = search_ours(&l, mem);
            assert!(c.tiling.fits(&l, mem));
        }
    }

    #[test]
    fn more_memory_never_hurts_ours() {
        let l = layer();
        let mut prev = u64::MAX;
        for kib in [16.0, 32.0, 64.0, 128.0, 256.0] {
            let q = search_ours(&l, OnChipMemory::from_kib(kib))
                .traffic
                .total_words();
            assert!(q <= prev);
            prev = q;
        }
    }
}
