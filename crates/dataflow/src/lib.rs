//! Dataflow traffic models for convolution accelerators.
//!
//! Reproduces Section IV and the Fig. 12/13 comparison of the paper:
//!
//! * [`Tiling`] and [`our_dataflow_traffic`] — the paper's
//!   communication-optimal dataflow (output blocks of `b·z·y·x` partial sums
//!   resident on chip, inputs/weights streamed once, `k = 1`).
//! * [`baselines`] — the seven comparison dataflows (`OutR-A/B`, `WtR-A/B`,
//!   `InR-A/B/C`) with exact traffic formulas.
//! * [`search_dataflow`]/[`found_minimum`] — exhaustive tiling search per
//!   dataflow and the paper's "found minimum" oracle (Section VI-A).
//!
//! # Example
//!
//! ```
//! use comm_bound::OnChipMemory;
//! use conv_model::ConvLayer;
//! use dataflow::search_ours;
//!
//! let layer = ConvLayer::square(3, 256, 56, 128, 3, 1).unwrap();
//! let mem = OnChipMemory::from_kib(66.5);
//! let ours = search_ours(&layer, mem);
//! let bound = comm_bound::dram_bound_bytes(&layer, mem);
//! let achieved = ours.traffic.total_bytes() as f64;
//! assert!(achieved < 1.3 * bound, "dataflow stays near the bound");
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod baselines;
pub mod coalesce;
pub mod dse;
pub mod engine;
pub mod lru;
mod nest_counter;
mod search;
mod tiling;
mod traffic;

pub use coalesce::FlightMap;
pub use dse::{grid_points, GridError};
pub use engine::{
    cache_stats, clear_search_cache, set_search_cache_capacity, CacheStats, LayerTables,
    DEFAULT_SEARCH_CACHE_CAPACITY,
};
pub use lru::LruCache;
pub use nest_counter::count_by_execution;
pub use search::{
    candidates, found_minimum, plan_tiling, search_baseline, search_dataflow, search_ours,
    DataflowChoice,
};
pub use tiling::{our_dataflow_traffic, paper_tiling, Tiling};
pub use traffic::DramTraffic;

use serde::{Deserialize, Serialize};

/// The dataflows compared in Fig. 12/13 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataflowKind {
    /// The paper's communication-optimal dataflow (Section IV-A).
    Ours,
    /// Output-stationary, one channel plane resident (ShiDianNao-style).
    OutRA,
    /// Output-stationary, all channels of a spatial tile resident.
    OutRB,
    /// Weight-stationary over a `z×k` kernel block, Psums shuttled.
    WtRA,
    /// Weight-stationary over `z` full kernels.
    WtRB,
    /// Input-stationary over a `k·y·x` block, Psums shuttled.
    InRA,
    /// Input-stationary over `k` full channel planes, Psums shuttled.
    InRB,
    /// Input-stationary over an all-channel spatial block.
    InRC,
}

impl DataflowKind {
    /// All eight dataflows, ours first.
    pub const ALL: [DataflowKind; 8] = [
        DataflowKind::Ours,
        DataflowKind::OutRA,
        DataflowKind::OutRB,
        DataflowKind::WtRA,
        DataflowKind::WtRB,
        DataflowKind::InRA,
        DataflowKind::InRB,
        DataflowKind::InRC,
    ];

    /// The name used in the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DataflowKind::Ours => "Our dataflow",
            DataflowKind::OutRA => "OutR-A",
            DataflowKind::OutRB => "OutR-B",
            DataflowKind::WtRA => "WtR-A",
            DataflowKind::WtRB => "WtR-B",
            DataflowKind::InRA => "InR-A",
            DataflowKind::InRB => "InR-B",
            DataflowKind::InRC => "InR-C",
        }
    }
}

impl std::fmt::Display for DataflowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_unique() {
        let mut names: Vec<&str> = DataflowKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DataflowKind::WtRA.to_string(), "WtR-A");
    }
}
