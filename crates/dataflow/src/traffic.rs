use conv_model::BYTES_PER_WORD;
use serde::{Deserialize, Serialize};

/// Off-chip (DRAM) traffic of one layer under one dataflow, in 16-bit words.
///
/// The four streams match the paper's Fig. 14 breakdown: input reads, weight
/// reads, and output/Psum traffic. Dataflows that keep partial sums on chip
/// (`OutR`-style, including the paper's dataflow) have `output_reads == 0`
/// and write each output exactly once; dataflows that shuttle partial sums
/// off chip (`WtR-A`, `InR-A`, `InR-B`) pay `output_reads` as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DramTraffic {
    /// Input activation words read from DRAM.
    pub input_reads: u64,
    /// Weight words read from DRAM.
    pub weight_reads: u64,
    /// Partial-sum words read back from DRAM (re-fetched for accumulation).
    pub output_reads: u64,
    /// Output/partial-sum words written to DRAM.
    pub output_writes: u64,
}

impl DramTraffic {
    /// Total words moved in either direction.
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.input_reads + self.weight_reads + self.output_reads + self.output_writes
    }

    /// Total bytes moved (16-bit words).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_words() * BYTES_PER_WORD
    }

    /// Total megabytes moved, as plotted in Fig. 14–16 (1 MB = 2²⁰ B).
    #[must_use]
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Words read from DRAM (inputs + weights + Psum re-reads).
    #[must_use]
    pub fn read_words(&self) -> u64 {
        self.input_reads + self.weight_reads + self.output_reads
    }

    /// Words written to DRAM.
    #[must_use]
    pub fn write_words(&self) -> u64 {
        self.output_writes
    }

    /// Element-wise sum of two traffic records (e.g. layer totals).
    #[must_use]
    pub fn combined(&self, other: &DramTraffic) -> DramTraffic {
        DramTraffic {
            input_reads: self.input_reads + other.input_reads,
            weight_reads: self.weight_reads + other.weight_reads,
            output_reads: self.output_reads + other.output_reads,
            output_writes: self.output_writes + other.output_writes,
        }
    }
}

impl std::ops::Add for DramTraffic {
    type Output = DramTraffic;

    fn add(self, rhs: DramTraffic) -> DramTraffic {
        self.combined(&rhs)
    }
}

impl std::iter::Sum for DramTraffic {
    fn sum<I: Iterator<Item = DramTraffic>>(iter: I) -> DramTraffic {
        iter.fold(DramTraffic::default(), |acc, t| acc + t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let t = DramTraffic {
            input_reads: 10,
            weight_reads: 20,
            output_reads: 5,
            output_writes: 7,
        };
        assert_eq!(t.total_words(), 42);
        assert_eq!(t.total_bytes(), 84);
        assert_eq!(t.read_words(), 35);
        assert_eq!(t.write_words(), 7);
    }

    #[test]
    fn sum_of_traffic() {
        let a = DramTraffic {
            input_reads: 1,
            weight_reads: 2,
            output_reads: 3,
            output_writes: 4,
        };
        let total: DramTraffic = vec![a, a, a].into_iter().sum();
        assert_eq!(total.total_words(), 30);
    }

    #[test]
    fn mib_conversion() {
        let t = DramTraffic {
            input_reads: 512 * 1024, // 1 MiB at 2 B/word
            ..DramTraffic::default()
        };
        assert_eq!(t.total_mib(), 1.0);
    }
}
