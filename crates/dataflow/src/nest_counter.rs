//! A literal executor of the Fig. 7 loop nest that counts DRAM traffic
//! word-by-word.
//!
//! [`our_dataflow_traffic`](crate::our_dataflow_traffic) is a closed form
//! with separable sums; this module walks the actual nest — every block,
//! every `k = 1` channel iteration, every input/weight word loaded, every
//! output word written — and tallies the words one at a time. It is
//! `O(traffic)` and meant for small layers; the property tests use it to
//! certify the closed form.

use conv_model::ConvLayer;

use crate::tiling::Tiling;
use crate::traffic::DramTraffic;

/// Counts the DRAM traffic of the paper's dataflow by literally executing
/// the Fig. 7 loop nest on `layer` with `tiling`, one word at a time.
///
/// Padding words are never fetched (they are materialised as zeros on
/// chip), exactly as in the closed form.
#[must_use]
pub fn count_by_execution(layer: &ConvLayer, tiling: &Tiling) -> DramTraffic {
    let mut t = DramTraffic::default();
    let pad = layer.padding();
    let stride = layer.stride();
    let (kh, kw) = (layer.kernel_height(), layer.kernel_width());

    let mut i0 = 0;
    while i0 < layer.batch() {
        let b = tiling.b.min(layer.batch() - i0);
        let mut z0 = 0;
        while z0 < layer.out_channels() {
            let z = tiling.z.min(layer.out_channels() - z0);
            let mut y0 = 0;
            while y0 < layer.output_height() {
                let y = tiling.y.min(layer.output_height() - y0);
                let mut x0 = 0;
                while x0 < layer.output_width() {
                    let x = tiling.x.min(layer.output_width() - x0);

                    // Inner iterations over input channels, k = 1.
                    for _kz in 0..layer.in_channels() {
                        // Load the input slice: the window rows/cols this
                        // output block needs, clipped to the image.
                        let ylo = (y0 * stride) as isize - pad.vertical as isize;
                        let yhi = ((y0 + y - 1) * stride + kh - 1) as isize - pad.vertical as isize;
                        let xlo = (x0 * stride) as isize - pad.horizontal as isize;
                        let xhi =
                            ((x0 + x - 1) * stride + kw - 1) as isize - pad.horizontal as isize;
                        for _img in 0..b {
                            for iy in ylo..=yhi {
                                if iy < 0 || iy as usize >= layer.in_height() {
                                    continue;
                                }
                                for ix in xlo..=xhi {
                                    if ix < 0 || ix as usize >= layer.in_width() {
                                        continue;
                                    }
                                    t.input_reads += 1;
                                }
                            }
                        }
                        // Load the weight slice: one channel of z kernels.
                        t.weight_reads += (z * kh * kw) as u64;
                    }

                    // Write the finished output block.
                    t.output_writes += (b * z * y * x) as u64;

                    x0 += tiling.x;
                }
                y0 += tiling.y;
            }
            z0 += tiling.z;
        }
        i0 += tiling.b;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::our_dataflow_traffic;
    use conv_model::Padding;
    use proptest::prelude::*;

    fn check(layer: &ConvLayer, tiling: &Tiling) {
        let executed = count_by_execution(layer, tiling);
        let closed = our_dataflow_traffic(layer, tiling);
        assert_eq!(executed, closed, "layer {layer}, tiling {tiling}");
    }

    #[test]
    fn matches_closed_form_on_vgg_like_layer() {
        let layer = ConvLayer::square(2, 8, 14, 4, 3, 1).unwrap();
        for t in [
            Tiling::clamped(&layer, 1, 4, 7, 7),
            Tiling::clamped(&layer, 2, 8, 14, 14),
            Tiling::clamped(&layer, 1, 3, 5, 6),
            Tiling::clamped(&layer, 2, 1, 1, 1),
        ] {
            check(&layer, &t);
        }
    }

    #[test]
    fn matches_closed_form_with_stride_no_padding() {
        let layer = ConvLayer::builder()
            .batch(1)
            .out_channels(4)
            .in_channels(2)
            .input(11, 11)
            .kernel(3, 3)
            .stride(2)
            .padding(Padding::none())
            .build()
            .unwrap();
        for t in [
            Tiling::clamped(&layer, 1, 2, 2, 3),
            Tiling::clamped(&layer, 1, 4, 5, 5),
        ] {
            check(&layer, &t);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn closed_form_equals_literal_execution(
            b in 1usize..=2,
            co in 1usize..=5,
            size in 4usize..=9,
            ci in 1usize..=3,
            k in 1usize..=3,
            s in 1usize..=2,
            pad in prop::bool::ANY,
            tb in 1usize..=2,
            tz in 1usize..=5,
            ty in 1usize..=9,
            tx in 1usize..=9,
        ) {
            let padding = if pad { Padding::same(k) } else { Padding::none() };
            let layer = ConvLayer::builder()
                .batch(b)
                .out_channels(co)
                .in_channels(ci)
                .input(size, size)
                .kernel(k, k)
                .stride(s)
                .padding(padding)
                .build();
            prop_assume!(layer.is_ok());
            let layer = layer.unwrap();
            let tiling = Tiling::clamped(&layer, tb, tz, ty, tx);
            let executed = count_by_execution(&layer, &tiling);
            let closed = our_dataflow_traffic(&layer, &tiling);
            prop_assert_eq!(executed, closed);
        }
    }
}
