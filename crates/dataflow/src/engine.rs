//! The shared tiling-search engine: precomputed axis tables, monotonicity
//! pruning, thread fan-out and memoization behind every exhaustive search
//! in the workspace.
//!
//! The paper's evaluation rests on "the tiling sizes of all dataflows are
//! obtained by exhaustive searches" (Section VI-A). The seed implementation
//! did that with a serial quadruple-nested loop that recomputed the per-axis
//! halo sums from scratch at every grid point — and the same loop was
//! copy-pasted into `core::planner`. This module centralizes the search and
//! makes it fast without changing a single chosen tiling:
//!
//! * **Axis tables** ([`AxisTable`]/[`LayerTables`]): `summed_input_extent`
//!   and `tile_count` are functions of *one* axis's tile size only, so they
//!   are precomputed once per layer for every tile size `1..=dim`. The inner
//!   traffic evaluation then is a handful of u64 multiplies. The tables are
//!   dense (not just the candidate grid) so random-sampling DSE reuses them.
//! * **Pruning**: `onchip_words` of every dataflow is monotone
//!   nondecreasing in each of its parameters (`b/z/k/y/x`), so each sorted
//!   candidate loop breaks at the first infeasible point. On top of that the
//!   `Ours` sweep computes a per-subtree lower bound on traffic (both the
//!   weight term's `n_x` and the input term's `Σx''` are bounded below by
//!   their minima over the whole candidate list) and skips subtrees that
//!   cannot *strictly* beat the best feasible traffic found so far.
//! * **Parallelism**: the `(b, z)` outer product of the `Ours` sweep and
//!   the planner's structural search fan out across threads (`rayon`
//!   `par_map`); the shared best used for pruning is a relaxed `AtomicU64`,
//!   which only ever prunes strictly-worse subtrees, so the outcome is
//!   deterministic regardless of thread interleaving.
//! * **Memoization**: [`DataflowChoice`] results are cached keyed by
//!   `(DataflowKind, ConvLayer, memory-words bits)`. VGG/ResNet-style
//!   networks repeat layer shapes, and the figure benches re-analyze the
//!   same network at many memory sizes, so across a bench run most searches
//!   are cache hits. The cache is a bounded [`LruCache`] (default
//!   [`DEFAULT_SEARCH_CACHE_CAPACITY`], tunable with
//!   [`set_search_cache_capacity`]) so long-running servers embedding the
//!   engine cannot grow it without bound; concurrent identical misses
//!   coalesce onto one computation through a
//!   [`FlightMap`](crate::coalesce::FlightMap).
//!   [`cache_stats`]/[`clear_search_cache`] expose and reset the cache.
//!
//! # Determinism and tie-breaking
//!
//! All searches (including the retained [`naive`] reference) pick the
//! best candidate by the *canonical key* `(total traffic words, b, z, k, y,
//! x)`, a total order: equal-traffic tilings resolve to the smallest
//! parameter tuple. This makes the result independent of enumeration order,
//! which is what lets the engine prune, parallelize and still return
//! bit-identical [`DataflowChoice`]s to the naive quadruple loop — a
//! property the `engine_parity` integration tests pin across all eight
//! dataflow kinds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use comm_bound::OnChipMemory;
use conv_model::ConvLayer;

use crate::baselines::{
    inr_a_onchip, inr_b_onchip, inr_c_onchip, outr_a_onchip, outr_b_onchip, wtr_a_onchip,
    wtr_b_onchip, BaselineParams,
};
use crate::coalesce::FlightMap;
use crate::lru::LruCache;
use crate::search::{candidates, dense_candidates, DataflowChoice};
use crate::tiling::{paper_tiling, summed_input_extent, tile_count, Tiling};
use crate::traffic::DramTraffic;
use crate::DataflowKind;

// ---------------------------------------------------------------------------
// Canonical best tracking (the one helper that replaces the copy-pasted
// `better` closures of search.rs / dse.rs / planner.rs).
// ---------------------------------------------------------------------------

/// One evaluated search point: a tiling (plus input-channel tile `k` for the
/// baselines that sweep one) and its exact DRAM traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The evaluated tiling (baseline parameters are packed into `z/y/x`
    /// with `b = 1`, as in [`DataflowChoice`]).
    pub tiling: Tiling,
    /// Input-channel tile (1 when the dataflow does not sweep it).
    pub k: usize,
    /// Exact DRAM traffic of this point.
    pub traffic: DramTraffic,
}

impl Candidate {
    /// The canonical comparison key: traffic first, then the smallest
    /// parameter tuple. A total order over distinct search points.
    #[must_use]
    pub fn key(&self) -> (u64, usize, usize, usize, usize, usize) {
        (
            self.traffic.total_words(),
            self.tiling.b,
            self.tiling.z,
            self.k,
            self.tiling.y,
            self.tiling.x,
        )
    }
}

/// Tracks the canonically-best [`Candidate`] seen so far.
///
/// Replaces the per-module `match best { Some((bt, _)) if bt <= t => {} … }`
/// closures: every search site offers candidates and the tracker keeps the
/// one with the smallest [`Candidate::key`]. Because the key is a total
/// order, merging trackers from parallel workers is associative and the
/// final winner does not depend on enumeration or thread order.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestTracker {
    best: Option<Candidate>,
}

impl BestTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        BestTracker::default()
    }

    /// Offers one candidate; keeps it when it beats the current best.
    pub fn offer(&mut self, candidate: Candidate) {
        match &self.best {
            Some(b) if b.key() <= candidate.key() => {}
            _ => self.best = Some(candidate),
        }
    }

    /// Merges another tracker's best into this one.
    pub fn merge(&mut self, other: BestTracker) {
        if let Some(c) = other.best {
            self.offer(c);
        }
    }

    /// The best candidate, if any was feasible.
    #[must_use]
    pub fn into_best(self) -> Option<Candidate> {
        self.best
    }
}

// ---------------------------------------------------------------------------
// Precomputed per-axis lookup tables.
// ---------------------------------------------------------------------------

/// Per-axis lookup tables for one spatial axis of one layer: for every tile
/// size `t` in `1..=out_dim`, the summed clipped input extent `Σx''(t)`, the
/// tile count `⌈dim/t⌉` and the halo footprint `stride·(t−1) + kernel`.
///
/// Built in `O(dim · H(dim)) ≈ O(dim log dim)` and turning every inner-loop
/// traffic evaluation into table lookups plus multiplies.
#[derive(Debug, Clone)]
pub struct AxisTable {
    /// `Σ` of per-tile clipped input extents, indexed by `tile − 1`.
    sums: Vec<u64>,
    /// `⌈out_dim / tile⌉`, indexed by `tile − 1`.
    counts: Vec<u64>,
    /// Input footprint `stride·(tile−1) + kernel`, indexed by `tile − 1`.
    footprints: Vec<usize>,
    /// Minimum of `sums` over all tile sizes (for lower-bound pruning).
    min_sum: u64,
}

impl AxisTable {
    /// Builds the table for one axis.
    #[must_use]
    pub fn build(out_dim: usize, stride: usize, kernel: usize, pad: usize, in_dim: usize) -> Self {
        let mut sums = Vec::with_capacity(out_dim);
        let mut counts = Vec::with_capacity(out_dim);
        let mut footprints = Vec::with_capacity(out_dim);
        for tile in 1..=out_dim {
            sums.push(summed_input_extent(
                out_dim, tile, stride, kernel, pad, in_dim,
            ));
            counts.push(tile_count(out_dim, tile));
            footprints.push(stride * (tile - 1) + kernel);
        }
        let min_sum = sums.iter().copied().min().unwrap_or(0);
        AxisTable {
            sums,
            counts,
            footprints,
            min_sum,
        }
    }

    /// `Σ` of clipped input extents for tiles of size `tile`.
    #[must_use]
    pub fn sum(&self, tile: usize) -> u64 {
        self.sums[tile - 1]
    }

    /// `⌈out_dim / tile⌉`.
    #[must_use]
    pub fn count(&self, tile: usize) -> u64 {
        self.counts[tile - 1]
    }

    /// Input footprint (halo included) of a tile of size `tile`.
    #[must_use]
    pub fn footprint(&self, tile: usize) -> usize {
        self.footprints[tile - 1]
    }

    /// The smallest summed extent any tile size achieves on this axis.
    #[must_use]
    pub fn min_sum(&self) -> u64 {
        self.min_sum
    }
}

/// Both spatial axis tables of one layer plus the layer constants the
/// traffic formulas use, so evaluating one tiling is pure arithmetic —
/// and the [`candidates`] grids of every swept dimension, hoisted here so
/// each search over the same tables stops recomputing them.
#[derive(Debug, Clone)]
pub struct LayerTables {
    /// Output-width (x) axis table.
    pub x: AxisTable,
    /// Output-height (y) axis table.
    pub y: AxisTable,
    batch: usize,
    out_channels: usize,
    taps_ci: u64,
    ci: u64,
    kh: usize,
    kw: usize,
    output_words: u64,
    z_cands: Vec<usize>,
    k_cands: Vec<usize>,
    y_cands: Vec<usize>,
    x_cands: Vec<usize>,
    z_dense: Vec<usize>,
    y_dense: Vec<usize>,
    x_dense: Vec<usize>,
}

impl LayerTables {
    /// Builds the tables for `layer`.
    #[must_use]
    pub fn new(layer: &ConvLayer) -> Self {
        LayerTables {
            x: AxisTable::build(
                layer.output_width(),
                layer.stride(),
                layer.kernel_width(),
                layer.padding().horizontal,
                layer.in_width(),
            ),
            y: AxisTable::build(
                layer.output_height(),
                layer.stride(),
                layer.kernel_height(),
                layer.padding().vertical,
                layer.in_height(),
            ),
            batch: layer.batch(),
            out_channels: layer.out_channels(),
            taps_ci: layer.kernel_width() as u64
                * layer.kernel_height() as u64
                * layer.in_channels() as u64,
            ci: layer.in_channels() as u64,
            kh: layer.kernel_height(),
            kw: layer.kernel_width(),
            output_words: layer.output_words(),
            z_cands: candidates(layer.out_channels()),
            k_cands: candidates(layer.in_channels()),
            y_cands: candidates(layer.output_height()),
            x_cands: candidates(layer.output_width()),
            z_dense: dense_candidates(layer.out_channels()),
            y_dense: dense_candidates(layer.output_height()),
            x_dense: dense_candidates(layer.output_width()),
        }
    }

    /// The hoisted [`candidates`] grid for the output-channel (`z`) sweep.
    #[must_use]
    pub fn z_candidates(&self) -> &[usize] {
        &self.z_cands
    }

    /// The hoisted [`candidates`] grid for the input-channel (`k`) sweep.
    #[must_use]
    pub fn k_candidates(&self) -> &[usize] {
        &self.k_cands
    }

    /// The hoisted [`candidates`] grid for the output-height (`y`) sweep.
    #[must_use]
    pub fn y_candidates(&self) -> &[usize] {
        &self.y_cands
    }

    /// The hoisted [`candidates`] grid for the output-width (`x`) sweep.
    #[must_use]
    pub fn x_candidates(&self) -> &[usize] {
        &self.x_cands
    }

    /// The hoisted [`dense_candidates`] grid for the `Ours` output-channel
    /// sweep.
    #[must_use]
    pub fn z_candidates_dense(&self) -> &[usize] {
        &self.z_dense
    }

    /// The hoisted [`dense_candidates`] grid for the `Ours` output-height
    /// sweep.
    #[must_use]
    pub fn y_candidates_dense(&self) -> &[usize] {
        &self.y_dense
    }

    /// The hoisted [`dense_candidates`] grid for the `Ours` output-width
    /// sweep.
    #[must_use]
    pub fn x_candidates_dense(&self) -> &[usize] {
        &self.x_dense
    }

    /// Exact DRAM traffic of the paper's dataflow for `tiling` — the same
    /// integers [`our_dataflow_traffic`](crate::our_dataflow_traffic)
    /// computes, via table lookups instead of per-call halo loops.
    #[must_use]
    pub fn ours_traffic(&self, tiling: &Tiling) -> DramTraffic {
        let nb = tile_count(self.batch, tiling.b);
        let nz = tile_count(self.out_channels, tiling.z);
        let ny = self.y.count(tiling.y);
        let nx = self.x.count(tiling.x);
        // Σ of clamped batch-tile sizes is exactly the batch.
        let sum_b = self.batch as u64;
        DramTraffic {
            input_reads: sum_b * self.x.sum(tiling.x) * self.y.sum(tiling.y) * self.ci * nz,
            weight_reads: self.taps_ci * self.out_channels as u64 * nb * ny * nx,
            output_reads: 0,
            output_writes: self.output_words,
        }
    }

    /// On-chip words of the paper's dataflow at `k = 1` for `tiling` — the
    /// same integers as [`Tiling::onchip_words`], via footprint lookups.
    #[must_use]
    pub fn ours_onchip(&self, tiling: &Tiling) -> u64 {
        tiling.psum_words()
            + tiling.b as u64
                * self.x.footprint(tiling.x) as u64
                * self.y.footprint(tiling.y) as u64
            + tiling.z as u64 * self.kh as u64 * self.kw as u64
    }
}

// ---------------------------------------------------------------------------
// The pruned, parallel `Ours` sweep.
// ---------------------------------------------------------------------------

/// The shared orchestration of every `Ours`-dataflow sweep: `(b, z)` thread
/// fan-out, monotone loop breaks, atomic global-best lower-bound pruning and
/// canonical tie-breaking, parameterized over *what "feasible" means*.
///
/// Call sites supply two predicates:
///
/// * `monotone_fits` must be monotone nonincreasing in each of `b/z/y/x`
///   (growing any parameter can only turn `true` into `false`) — it drives
///   the sorted-candidate loop breaks. The abstract search uses the on-chip
///   working set against total memory `S`; the planner uses the WGBuf/IGBuf
///   structural capacities.
/// * `feasible` is the residual (possibly expensive, non-monotone) check,
///   run only for candidates that could still beat the best feasible
///   traffic found so far. The planner passes the PE-array `map_block`
///   test; the abstract search has no residual constraint.
///
/// `z_cap` (when given) truncates the `z` candidate list before fan-out —
/// a hard structural bound like the WGBuf entry count. `seed` (when it
/// passes both predicates) pre-loads the global best so pruning bites from
/// the very first subtree; the constructive `paper_tiling` is the usual
/// choice.
///
/// Returns the canonically-best feasible [`Candidate`], or `None` when
/// nothing (seed included) is feasible. Results are deterministic regardless
/// of thread count: equal-traffic tilings resolve by [`Candidate::key`], and
/// the shared best only ever prunes strictly-worse subtrees.
pub fn search_ours_with<M, F>(
    layer: &ConvLayer,
    tables: &LayerTables,
    seed: Option<Tiling>,
    z_cap: Option<usize>,
    monotone_fits: M,
    feasible: F,
) -> Option<Candidate>
where
    M: Fn(&Tiling) -> bool + Sync,
    F: Fn(&Tiling) -> bool + Sync,
{
    // The candidate grids are hoisted into `tables` (built once per layer),
    // so repeated searches over the same tables — the planner's structural
    // sweep, DSE candidate fan-outs — stop recomputing them. The `Ours`
    // sweep uses the midpoint-densified grids; baselines keep the coarser
    // [`candidates`] grid (see [`dense_candidates`]).
    let zs = tables.z_candidates_dense();
    let ys = tables.y_candidates_dense();
    let xs = tables.x_candidates_dense();

    // Outer fan-out: the (b, z) product gives enough chunks to balance
    // across threads while keeping each chunk's y/x sweep cache-friendly.
    let mut items: Vec<(usize, usize)> = Vec::with_capacity(layer.batch() * zs.len());
    for b in 1..=layer.batch() {
        for &z in zs {
            if z_cap.is_some_and(|cap| z > cap) {
                break; // candidates are sorted; larger z never fits
            }
            items.push((b, z));
        }
    }

    // Best feasible traffic seen by any worker, for lower-bound pruning.
    // Relaxed ordering is enough: the value only ever decreases, and a stale
    // read merely prunes less. Seeding it with the constructive paper
    // tiling makes the bound bite from the very first subtree.
    let global_best = AtomicU64::new(u64::MAX);
    let seed_candidate = seed.filter(|s| monotone_fits(s) && feasible(s)).map(|s| {
        let c = Candidate {
            tiling: s,
            k: 1,
            traffic: tables.ours_traffic(&s),
        };
        global_best.store(c.traffic.total_words(), Ordering::Relaxed);
        c
    });

    let trackers = rayon::par_map(&items, |&(b, z)| {
        let mut tracker = BestTracker::new();
        let unit = Tiling { b, z, y: 1, x: 1 };
        // The monotone constraint only tightens in y and x; if the smallest
        // y/x candidate (always 1) does not fit, nothing in this subtree
        // does.
        if !monotone_fits(&unit) {
            return tracker;
        }
        let nb = tile_count(layer.batch(), b);
        let nz = tile_count(layer.out_channels(), z);
        let weight_base = tables.taps_ci * layer.out_channels() as u64 * nb;
        let input_base = layer.batch() as u64 * tables.ci * nz;
        for &y in ys {
            if !monotone_fits(&Tiling { b, z, y, x: 1 }) {
                break; // larger y only grows the working set
            }
            // Lower bound over every x: n_x ≥ 1 and Σx'' ≥ its axis minimum.
            let lower_bound = weight_base * tables.y.count(y)
                + input_base * tables.y.sum(y) * tables.x.min_sum()
                + tables.output_words;
            if lower_bound > global_best.load(Ordering::Relaxed) {
                continue; // strictly worse than an achieved feasible point
            }
            for &x in xs {
                let tiling = Tiling { b, z, y, x };
                if !monotone_fits(&tiling) {
                    break;
                }
                let traffic = tables.ours_traffic(&tiling);
                // Strictly worse than an achieved feasible tiling: the
                // residual check cannot change the outcome, skip it.
                if traffic.total_words() > global_best.load(Ordering::Relaxed) {
                    continue;
                }
                if !feasible(&tiling) {
                    continue;
                }
                tracker.offer(Candidate {
                    tiling,
                    k: 1,
                    traffic,
                });
                global_best.fetch_min(traffic.total_words(), Ordering::Relaxed);
            }
        }
        tracker
    });

    let mut best = BestTracker::new();
    for t in trackers {
        best.merge(t);
    }
    if let Some(c) = seed_candidate {
        best.offer(c);
    }
    best.into_best()
}

/// Exhaustive search over the paper dataflow's `{b, z, y, x}` grid —
/// identical results to [`naive::search_ours`], orders of magnitude faster.
#[must_use]
pub fn search_ours(layer: &ConvLayer, mem: OnChipMemory) -> DataflowChoice {
    let tables = LayerTables::new(layer);
    let mem_words = mem.words();
    let c = search_ours_with(
        layer,
        &tables,
        Some(paper_tiling(layer, mem)),
        None,
        |t| tables.ours_onchip(t) as f64 <= mem_words,
        |_| true,
    )
    .expect("the {1,1,1,1} tiling always fits any positive memory");
    DataflowChoice {
        kind: DataflowKind::Ours,
        tiling: c.tiling,
        k: c.k,
        traffic: c.traffic,
    }
}

// ---------------------------------------------------------------------------
// Table-driven baseline sweeps.
// ---------------------------------------------------------------------------

/// Which parameters a baseline dataflow sweeps.
pub(crate) fn baseline_sweeps(kind: DataflowKind) -> (bool, bool, bool) {
    match kind {
        DataflowKind::OutRA | DataflowKind::OutRB | DataflowKind::InRC => (false, false, true),
        DataflowKind::WtRA => (true, true, false),
        DataflowKind::WtRB => (true, false, false),
        DataflowKind::InRA => (false, true, true),
        DataflowKind::InRB => (false, true, false),
        DataflowKind::Ours => unreachable!("Ours is not a baseline"),
    }
}

fn baseline_tiling(layer: &ConvLayer, p: &BaselineParams) -> Tiling {
    Tiling {
        b: 1,
        z: p.z.clamp(1, layer.out_channels()),
        y: p.y.clamp(1, layer.output_height()),
        x: p.x.clamp(1, layer.output_width()),
    }
}

/// Baseline traffic via table lookups — field-for-field identical to the
/// `baselines::*_traffic` formulas.
fn baseline_traffic(
    kind: DataflowKind,
    layer: &ConvLayer,
    tables: &LayerTables,
    p: &BaselineParams,
) -> DramTraffic {
    let b = layer.batch() as u64;
    let co = layer.out_channels() as u64;
    let ci = layer.in_channels() as u64;
    let taps = (layer.kernel_height() * layer.kernel_width()) as u64;
    let (ny, nx) = (tables.y.count(p.y), tables.x.count(p.x));
    let (sum_y, sum_x) = (tables.y.sum(p.y), tables.x.sum(p.x));
    let out = layer.output_words();
    match kind {
        DataflowKind::OutRA => DramTraffic {
            input_reads: b * co * sum_y * sum_x * ci,
            weight_reads: b * ny * nx * co * taps * ci,
            output_reads: 0,
            output_writes: out,
        },
        DataflowKind::OutRB | DataflowKind::InRC => DramTraffic {
            input_reads: b * sum_y * sum_x * ci,
            weight_reads: b * ny * nx * co * taps * ci,
            output_reads: 0,
            output_writes: out,
        },
        DataflowKind::WtRA => {
            let nz = tile_count(layer.out_channels(), p.z);
            let nk = tile_count(layer.in_channels(), p.k);
            DramTraffic {
                input_reads: nz * layer.input_words(),
                weight_reads: layer.weight_words(),
                output_reads: (nk - 1) * out,
                output_writes: nk * out,
            }
        }
        DataflowKind::WtRB => {
            let nz = tile_count(layer.out_channels(), p.z);
            DramTraffic {
                input_reads: nz * layer.input_words(),
                weight_reads: layer.weight_words(),
                output_reads: 0,
                output_writes: out,
            }
        }
        DataflowKind::InRA => {
            let nk = tile_count(layer.in_channels(), p.k);
            DramTraffic {
                input_reads: b * sum_y * sum_x * ci,
                weight_reads: b * ny * nx * co * taps * ci,
                output_reads: (nk - 1) * out,
                output_writes: nk * out,
            }
        }
        DataflowKind::InRB => {
            let nk = tile_count(layer.in_channels(), p.k);
            DramTraffic {
                input_reads: layer.input_words(),
                weight_reads: b * layer.weight_words(),
                output_reads: (nk - 1) * out,
                output_writes: nk * out,
            }
        }
        DataflowKind::Ours => unreachable!("Ours is not a baseline"),
    }
}

fn baseline_onchip(kind: DataflowKind, layer: &ConvLayer, p: &BaselineParams) -> u64 {
    match kind {
        DataflowKind::OutRA => outr_a_onchip(layer, p),
        DataflowKind::OutRB => outr_b_onchip(layer, p),
        DataflowKind::WtRA => wtr_a_onchip(layer, p),
        DataflowKind::WtRB => wtr_b_onchip(layer, p),
        DataflowKind::InRA => inr_a_onchip(layer, p),
        DataflowKind::InRB => inr_b_onchip(layer, p),
        DataflowKind::InRC => inr_c_onchip(layer, p),
        DataflowKind::Ours => unreachable!("Ours is not a baseline"),
    }
}

/// Sweeps one baseline dataflow's parameters with table-driven evaluation
/// and monotone feasibility breaks — identical results to
/// [`naive::search_baseline`].
#[must_use]
pub fn search_baseline(
    kind: DataflowKind,
    layer: &ConvLayer,
    mem: OnChipMemory,
) -> Option<DataflowChoice> {
    if kind == DataflowKind::Ours {
        return Some(search_ours(layer, mem));
    }
    let tables = LayerTables::new(layer);
    let mem_words = mem.words();
    let (sweep_z, sweep_k, sweep_xy) = baseline_sweeps(kind);
    let ones = [1usize];
    let zs = if sweep_z {
        tables.z_candidates()
    } else {
        &ones[..]
    };
    let ks = if sweep_k {
        tables.k_candidates()
    } else {
        &ones[..]
    };
    let ys = if sweep_xy {
        tables.y_candidates()
    } else {
        &ones[..]
    };
    let xs = if sweep_xy {
        tables.x_candidates()
    } else {
        &ones[..]
    };

    // Every baseline's onchip model is monotone nondecreasing in each swept
    // parameter (z/k linear terms, y/x through the halo footprint), so each
    // sorted loop breaks at the first infeasible point; the checks fix the
    // inner parameters at their minimum candidate, which is always 1.
    let fits = |z: usize, k: usize, y: usize, x: usize| {
        baseline_onchip(kind, layer, &BaselineParams { z, k, y, x }) as f64 <= mem_words
    };
    let mut tracker = BestTracker::new();
    'z: for &z in zs {
        if !fits(z, 1, 1, 1) {
            break 'z;
        }
        'k: for &k in ks {
            if !fits(z, k, 1, 1) {
                break 'k;
            }
            'y: for &y in ys {
                if !fits(z, k, y, 1) {
                    break 'y;
                }
                for &x in xs {
                    let p = BaselineParams { z, k, y, x };
                    if baseline_onchip(kind, layer, &p) as f64 > mem_words {
                        break;
                    }
                    tracker.offer(Candidate {
                        tiling: baseline_tiling(layer, &p),
                        k: p.k,
                        traffic: baseline_traffic(kind, layer, &tables, &p),
                    });
                }
            }
        }
    }
    tracker.into_best().map(|c| DataflowChoice {
        kind,
        tiling: c.tiling,
        k: c.k,
        traffic: c.traffic,
    })
}

// ---------------------------------------------------------------------------
// Memoization.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    kind: DataflowKind,
    /// The normalized layer shape: [`ConvLayer`] is exactly its geometry
    /// (dims, stride, padding), so identical shapes hash identically no
    /// matter which named network layer they came from.
    layer: ConvLayer,
    /// Effective memory in words, keyed by bit pattern so distinct
    /// fractional-KiB configurations (e.g. 66.5 KiB) stay distinct.
    mem_bits: u64,
}

/// Default bound on the memo cache. Generous — a full figure-bench run
/// creates a few thousand entries and each entry is ~100 bytes — but finite,
/// so a long-running server embedding the engine cannot grow without bound.
pub const DEFAULT_SEARCH_CACHE_CAPACITY: usize = 65_536;

static CACHE: OnceLock<Mutex<LruCache<CacheKey, Option<DataflowChoice>>>> = OnceLock::new();
static FLIGHTS: OnceLock<FlightMap<CacheKey, Option<DataflowChoice>>> = OnceLock::new();
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<LruCache<CacheKey, Option<DataflowChoice>>> {
    CACHE.get_or_init(|| Mutex::new(LruCache::new(DEFAULT_SEARCH_CACHE_CAPACITY)))
}

fn flights() -> &'static FlightMap<CacheKey, Option<DataflowChoice>> {
    FLIGHTS.get_or_init(FlightMap::new)
}

/// Search-cache counters (process-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Searches answered from the cache.
    pub hits: u64,
    /// Searches that ran and populated the cache.
    pub misses: u64,
    /// Searches answered by coalescing onto a concurrent identical miss
    /// (neither a hit nor a computed miss: the caller shared a leader's
    /// in-flight result).
    pub coalesced: u64,
    /// Entries dropped by LRU eviction since the last
    /// [`clear_search_cache`].
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// The LRU bound ([`set_search_cache_capacity`]).
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Current search-cache statistics.
#[must_use]
pub fn cache_stats() -> CacheStats {
    let (entries, evictions, capacity) = cache()
        .lock()
        .map(|c| (c.len(), c.evictions(), c.capacity()))
        .unwrap_or((0, 0, 0));
    CacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
        coalesced: flights().coalesced(),
        evictions,
        entries,
        capacity,
    }
}

/// Empties the search cache and resets the hit/miss/coalesced/eviction
/// counters (used by benchmarks that need cold-cache timings). The LRU
/// capacity is kept.
pub fn clear_search_cache() {
    if let Ok(mut c) = cache().lock() {
        c.clear();
    }
    flights().reset_stats();
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
}

/// Bounds the memo cache to `capacity` entries (clamped to ≥ 1), evicting
/// least-recently-used entries immediately if it is already over. Long-lived
/// embedders (the analysis service) call this at startup; the default is
/// [`DEFAULT_SEARCH_CACHE_CAPACITY`].
pub fn set_search_cache_capacity(capacity: usize) {
    if let Ok(mut c) = cache().lock() {
        c.set_capacity(capacity);
    }
}

/// Memoized, coalescing dispatch: one search per `(kind, layer shape,
/// memory)` per process. The search itself runs outside the cache lock, so
/// concurrent callers never serialize on a search; concurrent *identical*
/// cache misses coalesce onto one computation through a [`FlightMap`], so a
/// thundering herd of the same query runs the sweep once, not N times. This
/// is the entry point long-running services should call.
#[must_use]
pub fn search_dataflow(
    kind: DataflowKind,
    layer: &ConvLayer,
    mem: OnChipMemory,
) -> Option<DataflowChoice> {
    let key = CacheKey {
        kind,
        layer: *layer,
        mem_bits: mem.words().to_bits(),
    };
    if let Ok(mut c) = cache().lock() {
        if let Some(hit) = c.get(&key) {
            CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
    }
    let (result, _coalesced) = flights().run(key, || {
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let result = match kind {
            DataflowKind::Ours => Some(search_ours(layer, mem)),
            other => search_baseline(other, layer, mem),
        };
        if let Ok(mut c) = cache().lock() {
            c.insert(key, result);
        }
        result
    });
    result
}

/// The paper's "found minimum" oracle: best dataflow × best tiling, all
/// eight kinds memoized. Ties between dataflows resolve to the first kind
/// in [`DataflowKind::ALL`], matching the naive reference.
#[must_use]
pub fn found_minimum(layer: &ConvLayer, mem: OnChipMemory) -> DataflowChoice {
    DataflowKind::ALL
        .iter()
        .filter_map(|&kind| search_dataflow(kind, layer, mem))
        .min_by_key(|c| c.traffic.total_words())
        .expect("Ours is always feasible")
}

// ---------------------------------------------------------------------------
// The retained naive reference.
// ---------------------------------------------------------------------------

/// The unpruned, serial, table-free reference searches.
///
/// These reproduce the seed implementation's quadruple-nested loops
/// verbatim (full candidate grid, per-point `summed_input_extent`
/// recomputation, no caching) — only the best-candidate selection goes
/// through the same canonical [`BestTracker`] as the engine, so the two
/// implementations are comparable point-for-point. The `engine_parity`
/// tests and the `search_hotpath` bench keep the engine honest against
/// this reference.
pub mod naive {
    use super::{
        baseline_onchip, baseline_sweeps, baseline_tiling, candidates, dense_candidates,
        BestTracker, Candidate, ConvLayer, DataflowChoice, DataflowKind, OnChipMemory, Tiling,
    };
    use crate::baselines::{
        inr_a_traffic, inr_b_traffic, inr_c_traffic, outr_a_traffic, outr_b_traffic, wtr_a_traffic,
        wtr_b_traffic, BaselineParams,
    };
    use crate::tiling::{our_dataflow_traffic, paper_tiling};

    /// Reference exhaustive search of the paper dataflow's `{b, z, y, x}`.
    #[must_use]
    pub fn search_ours(layer: &ConvLayer, mem: OnChipMemory) -> DataflowChoice {
        let mut tracker = BestTracker::new();
        let seed = paper_tiling(layer, mem);
        if seed.fits(layer, mem) {
            tracker.offer(Candidate {
                tiling: seed,
                k: 1,
                traffic: our_dataflow_traffic(layer, &seed),
            });
        }
        // Same densified `Ours` grid as the engine (see `dense_candidates`),
        // so parity tests compare identical search spaces.
        let zs = dense_candidates(layer.out_channels());
        let ys = dense_candidates(layer.output_height());
        let xs = dense_candidates(layer.output_width());
        for b in 1..=layer.batch() {
            for &z in &zs {
                for &y in &ys {
                    for &x in &xs {
                        let tiling = Tiling { b, z, y, x };
                        if !tiling.fits(layer, mem) {
                            continue;
                        }
                        tracker.offer(Candidate {
                            tiling,
                            k: 1,
                            traffic: our_dataflow_traffic(layer, &tiling),
                        });
                    }
                }
            }
        }
        let c = tracker
            .into_best()
            .expect("the {1,1,1,1} tiling always fits any positive memory");
        DataflowChoice {
            kind: DataflowKind::Ours,
            tiling: c.tiling,
            k: c.k,
            traffic: c.traffic,
        }
    }

    /// Reference exhaustive sweep of one baseline dataflow.
    #[must_use]
    pub fn search_baseline(
        kind: DataflowKind,
        layer: &ConvLayer,
        mem: OnChipMemory,
    ) -> Option<DataflowChoice> {
        if kind == DataflowKind::Ours {
            return Some(search_ours(layer, mem));
        }
        let traffic_fn = match kind {
            DataflowKind::OutRA => outr_a_traffic,
            DataflowKind::OutRB => outr_b_traffic,
            DataflowKind::WtRA => wtr_a_traffic,
            DataflowKind::WtRB => wtr_b_traffic,
            DataflowKind::InRA => inr_a_traffic,
            DataflowKind::InRB => inr_b_traffic,
            DataflowKind::InRC => inr_c_traffic,
            DataflowKind::Ours => unreachable!(),
        };
        let (sweep_z, sweep_k, sweep_xy) = baseline_sweeps(kind);
        let ones = vec![1usize];
        let zs = if sweep_z {
            candidates(layer.out_channels())
        } else {
            ones.clone()
        };
        let ks = if sweep_k {
            candidates(layer.in_channels())
        } else {
            ones.clone()
        };
        let ys = if sweep_xy {
            candidates(layer.output_height())
        } else {
            ones.clone()
        };
        let xs = if sweep_xy {
            candidates(layer.output_width())
        } else {
            ones
        };
        let mut tracker = BestTracker::new();
        for &z in &zs {
            for &k in &ks {
                for &y in &ys {
                    for &x in &xs {
                        let p = BaselineParams { z, k, y, x };
                        if baseline_onchip(kind, layer, &p) as f64 > mem.words() {
                            continue;
                        }
                        tracker.offer(Candidate {
                            tiling: baseline_tiling(layer, &p),
                            k: p.k,
                            traffic: traffic_fn(layer, &p),
                        });
                    }
                }
            }
        }
        tracker.into_best().map(|c| DataflowChoice {
            kind,
            tiling: c.tiling,
            k: c.k,
            traffic: c.traffic,
        })
    }

    /// Reference dispatch between [`search_ours`] and [`search_baseline`].
    #[must_use]
    pub fn search_dataflow(
        kind: DataflowKind,
        layer: &ConvLayer,
        mem: OnChipMemory,
    ) -> Option<DataflowChoice> {
        match kind {
            DataflowKind::Ours => Some(search_ours(layer, mem)),
            other => search_baseline(other, layer, mem),
        }
    }

    /// Reference "found minimum" over all eight dataflows.
    #[must_use]
    pub fn found_minimum(layer: &ConvLayer, mem: OnChipMemory) -> DataflowChoice {
        DataflowKind::ALL
            .iter()
            .filter_map(|&kind| search_dataflow(kind, layer, mem))
            .min_by_key(|c| c.traffic.total_words())
            .expect("Ours is always feasible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    #[test]
    fn tables_match_direct_evaluation() {
        let l = layer();
        let tables = LayerTables::new(&l);
        for (b, z, y, x) in [(1, 1, 1, 1), (2, 16, 8, 8), (3, 256, 56, 56), (1, 7, 3, 11)] {
            let t = Tiling { b, z, y, x };
            assert_eq!(tables.ours_traffic(&t), crate::our_dataflow_traffic(&l, &t));
            assert_eq!(tables.ours_onchip(&t), t.onchip_words(&l));
        }
    }

    #[test]
    fn tables_match_on_strided_padded_layer() {
        let l = ConvLayer::square(2, 96, 31, 3, 7, 3).unwrap();
        let tables = LayerTables::new(&l);
        for y in 1..=l.output_height() {
            for x in 1..=l.output_width() {
                let t = Tiling { b: 1, z: 8, y, x };
                assert_eq!(
                    tables.ours_traffic(&t),
                    crate::our_dataflow_traffic(&l, &t),
                    "mismatch at y={y} x={x}"
                );
            }
        }
    }

    #[test]
    fn engine_matches_naive_on_vgg_layer() {
        let l = layer();
        for kib in [16.0, 66.5, 173.5] {
            let mem = OnChipMemory::from_kib(kib);
            assert_eq!(search_ours(&l, mem), naive::search_ours(&l, mem));
        }
    }

    #[test]
    fn baseline_engine_matches_naive() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        for kind in DataflowKind::ALL {
            assert_eq!(
                search_baseline(kind, &l, mem),
                naive::search_baseline(kind, &l, mem),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn tracker_breaks_ties_canonically() {
        let traffic = DramTraffic {
            input_reads: 10,
            ..DramTraffic::default()
        };
        let big = Candidate {
            tiling: Tiling {
                b: 1,
                z: 2,
                y: 1,
                x: 1,
            },
            k: 1,
            traffic,
        };
        let small = Candidate {
            tiling: Tiling {
                b: 1,
                z: 1,
                y: 9,
                x: 9,
            },
            k: 1,
            traffic,
        };
        let mut a = BestTracker::new();
        a.offer(big);
        a.offer(small);
        let mut b = BestTracker::new();
        b.offer(small);
        b.offer(big);
        assert_eq!(a.into_best(), Some(small));
        assert_eq!(b.into_best(), Some(small));
    }

    #[test]
    fn generic_sweep_matches_specialized_search() {
        // `search_ours_with` with the memory predicate and no residual
        // check must reproduce `search_ours` exactly.
        let l = layer();
        let tables = LayerTables::new(&l);
        for kib in [16.0, 66.5] {
            let mem = OnChipMemory::from_kib(kib);
            let mem_words = mem.words();
            let c = search_ours_with(
                &l,
                &tables,
                Some(paper_tiling(&l, mem)),
                None,
                |t| tables.ours_onchip(t) as f64 <= mem_words,
                |_| true,
            )
            .unwrap();
            let direct = search_ours(&l, mem);
            assert_eq!(
                (c.tiling, c.k, c.traffic),
                (direct.tiling, direct.k, direct.traffic)
            );
        }
    }

    #[test]
    fn generic_sweep_honors_residual_feasibility() {
        // A residual predicate that rejects everything leaves only `None`;
        // one that rejects the winner changes the choice to the runner-up,
        // never to an infeasible point.
        let l = ConvLayer::square(1, 16, 14, 8, 3, 1).unwrap();
        let tables = LayerTables::new(&l);
        let mem = OnChipMemory::from_kib(24.0);
        let mem_words = mem.words();
        let monotone = |t: &Tiling| tables.ours_onchip(t) as f64 <= mem_words;
        assert!(search_ours_with(&l, &tables, None, None, monotone, |_| false).is_none());
        let unrestricted = search_ours_with(&l, &tables, None, None, monotone, |_| true).unwrap();
        let banned = unrestricted.tiling;
        let second = search_ours_with(&l, &tables, None, None, monotone, |t| *t != banned).unwrap();
        assert_ne!(second.tiling, banned);
        assert!(second.key() > unrestricted.key());
    }

    #[test]
    fn generic_sweep_z_cap_limits_candidates() {
        let l = ConvLayer::square(1, 16, 14, 8, 3, 1).unwrap();
        let tables = LayerTables::new(&l);
        let mem_words = OnChipMemory::from_kib(64.0).words();
        let monotone = |t: &Tiling| tables.ours_onchip(t) as f64 <= mem_words;
        let c = search_ours_with(&l, &tables, None, Some(3), monotone, |_| true).unwrap();
        assert!(c.tiling.z <= 3);
    }

    /// Serializes the tests that resize or clear the process-wide cache, so
    /// their assertions cannot race each other. Tests that merely *use* the
    /// cache are unaffected (they only assert monotone/delta properties).
    static CACHE_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn lru_bound_evicts_and_counts() {
        // Shrink the cache far below the number of distinct searches and
        // confirm it stays bounded and counts evictions; then restore the
        // default so other tests keep their hit-rate assumptions.
        let _guard = CACHE_TEST_LOCK.lock().unwrap();
        clear_search_cache();
        set_search_cache_capacity(4);
        let mem = OnChipMemory::from_kib(9.75);
        for co in 1..=12 {
            let l = ConvLayer::square(1, co, 9, 5, 3, 1).unwrap();
            let _ = search_dataflow(DataflowKind::OutRB, &l, mem);
        }
        let stats = cache_stats();
        assert!(stats.entries <= 4, "cache must respect its bound");
        assert_eq!(stats.capacity, 4);
        assert!(
            stats.evictions >= 8,
            "12 distinct searches through 4 slots must evict, got {}",
            stats.evictions
        );
        set_search_cache_capacity(DEFAULT_SEARCH_CACHE_CAPACITY);
        clear_search_cache();
    }

    #[test]
    fn concurrent_identical_queries_are_deterministic() {
        // Fire the same fresh query from many threads: every caller gets a
        // bit-identical answer (the coalescing/caching layers must never
        // change results), and afterwards the entries are resident, so one
        // more call is answered from cache. Sweep-sharing mechanics are
        // pinned in `coalesce::tests`; global counters are too noisy to
        // assert exact sharing here (other tests search concurrently).
        let _guard = CACHE_TEST_LOCK.lock().unwrap();
        let l = ConvLayer::square(2, 37, 23, 5, 3, 1).unwrap();
        let mem = OnChipMemory::from_kib(31.5);
        let results: Vec<DataflowChoice> = {
            let mut out = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..8)
                    .map(|_| scope.spawn(|| found_minimum(&l, mem)))
                    .collect();
                for h in handles {
                    out.push(h.join().unwrap());
                }
            });
            out
        };
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let hits_before = cache_stats().hits;
        assert_eq!(found_minimum(&l, mem), results[0]);
        assert!(cache_stats().hits >= hits_before + 8);
    }

    #[test]
    fn cache_hits_on_repeat_searches() {
        let _guard = CACHE_TEST_LOCK.lock().unwrap();
        // The cache and its counters are process-wide and other unit tests
        // search concurrently, so only monotone/delta properties are
        // asserted — never absolute counter values. A layer shape no other
        // test uses keeps the second call answerable purely from cache.
        let l = ConvLayer::square(2, 44, 19, 7, 3, 1).unwrap();
        let mem = OnChipMemory::from_kib(47.25);
        let first = found_minimum(&l, mem);
        let hits_before = cache_stats().hits;
        let second = found_minimum(&l, mem);
        let stats = cache_stats();
        assert_eq!(first, second);
        assert!(
            stats.hits >= hits_before + 8,
            "second run must hit all 8 per-kind entries"
        );
        assert!(stats.entries >= 8);
        assert!(stats.hit_rate() > 0.0);
    }
}
