//! The seven baseline dataflows of Fig. 12, with exact DRAM-traffic models.
//!
//! Each baseline pins one data structure on chip (the coloured block in
//! Fig. 12) and streams the rest from DRAM whenever needed. These cover the
//! popular dataflows from the literature (e.g. ShiDianNao uses `OutR-A`).
//! Every model here accounts for boundary tiles, halos, stride and padding
//! exactly, mirroring [`our_dataflow_traffic`](crate::our_dataflow_traffic).
//!
//! The traffic formulas share a vocabulary:
//! `n_d = ⌈dim/tile⌉` tile counts, `Σx''`/`Σy''` summed halo extents (inputs
//! fetched per spatial tile, clipped to the image), and partial-sum
//! round-trips `(n_k − 1)` reads + `n_k` writes when accumulation over input
//! channels is interrupted.

use conv_model::ConvLayer;
use serde::{Deserialize, Serialize};

use crate::tiling::{summed_input_extent, tile_count};
use crate::traffic::DramTraffic;

/// Tile parameters of a baseline dataflow (a subset is used by each kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BaselineParams {
    /// Output-channel tile `z` (kernels resident / accumulated together).
    pub z: usize,
    /// Input-channel tile `k`.
    pub k: usize,
    /// Output-row tile `y`.
    pub y: usize,
    /// Output-column tile `x`.
    pub x: usize,
}

impl BaselineParams {
    /// All-ones parameters (the degenerate minimum-footprint tiling).
    #[must_use]
    pub fn unit() -> Self {
        BaselineParams {
            z: 1,
            k: 1,
            y: 1,
            x: 1,
        }
    }
}

impl std::fmt::Display for BaselineParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{{z={}, k={}, y={}, x={}}}",
            self.z, self.k, self.y, self.x
        )
    }
}

fn spatial_sums(layer: &ConvLayer, y: usize, x: usize) -> (u64, u64, u64, u64) {
    let ny = tile_count(layer.output_height(), y);
    let nx = tile_count(layer.output_width(), x);
    let sum_y = summed_input_extent(
        layer.output_height(),
        y,
        layer.stride(),
        layer.kernel_height(),
        layer.padding().vertical,
        layer.in_height(),
    );
    let sum_x = summed_input_extent(
        layer.output_width(),
        x,
        layer.stride(),
        layer.kernel_width(),
        layer.padding().horizontal,
        layer.in_width(),
    );
    (ny, nx, sum_y, sum_x)
}

/// `OutR-A` (Fig. 12): an `x×y` plane of partial sums for **one** output
/// channel of one image is resident; inputs and weights stream per tile.
/// This is the ShiDianNao-style dataflow.
///
/// On-chip working set: `x·y` Psums + one channel's `x'·y'` input slice +
/// one kernel slice.
#[must_use]
pub fn outr_a_traffic(layer: &ConvLayer, p: &BaselineParams) -> DramTraffic {
    let (ny, nx, sum_y, sum_x) = spatial_sums(layer, p.y, p.x);
    let b = layer.batch() as u64;
    let co = layer.out_channels() as u64;
    let ci = layer.in_channels() as u64;
    let taps = (layer.kernel_height() * layer.kernel_width()) as u64;
    DramTraffic {
        // every (image, out-channel, spatial tile) streams its input window
        input_reads: b * co * sum_y * sum_x * ci,
        // and its full kernel
        weight_reads: b * ny * nx * co * taps * ci,
        output_reads: 0,
        output_writes: layer.output_words(),
    }
}

/// On-chip words `OutR-A` needs for its parameters.
#[must_use]
pub fn outr_a_onchip(layer: &ConvLayer, p: &BaselineParams) -> u64 {
    let (xp, yp) = layer.input_footprint(p.x, p.y);
    (p.x * p.y) as u64 + (xp * yp) as u64 + (layer.kernel_height() * layer.kernel_width()) as u64
}

/// `OutR-B` (Fig. 12): all `Co` partial sums of an `x×y` spatial tile are
/// resident (a `Co`-deep output column block); inputs stream once per tile
/// but **all** weights stream per tile.
#[must_use]
pub fn outr_b_traffic(layer: &ConvLayer, p: &BaselineParams) -> DramTraffic {
    let (ny, nx, sum_y, sum_x) = spatial_sums(layer, p.y, p.x);
    let b = layer.batch() as u64;
    let co = layer.out_channels() as u64;
    let ci = layer.in_channels() as u64;
    let taps = (layer.kernel_height() * layer.kernel_width()) as u64;
    DramTraffic {
        input_reads: b * sum_y * sum_x * ci,
        weight_reads: b * ny * nx * co * taps * ci,
        output_reads: 0,
        output_writes: layer.output_words(),
    }
}

/// On-chip words `OutR-B` needs.
#[must_use]
pub fn outr_b_onchip(layer: &ConvLayer, p: &BaselineParams) -> u64 {
    let (xp, yp) = layer.input_footprint(p.x, p.y);
    (p.x * p.y * layer.out_channels()) as u64
        + (xp * yp) as u64
        + (layer.out_channels() * layer.kernel_height() * layer.kernel_width()) as u64
}

/// `WtR-A` (Fig. 12): `z·k·Wk·Hk` weights (z kernels × k input channels)
/// are resident; inputs stream once per kernel tile and partial sums are
/// shuttled to DRAM between input-channel tiles.
#[must_use]
pub fn wtr_a_traffic(layer: &ConvLayer, p: &BaselineParams) -> DramTraffic {
    let nz = tile_count(layer.out_channels(), p.z);
    let nk = tile_count(layer.in_channels(), p.k);
    DramTraffic {
        input_reads: nz * layer.input_words(),
        weight_reads: layer.weight_words(),
        output_reads: (nk - 1) * layer.output_words(),
        output_writes: nk * layer.output_words(),
    }
}

/// On-chip words `WtR-A` needs: the weight block plus one input sliding
/// window over the resident `k` channels and a `z`-wide Psum slice.
#[must_use]
pub fn wtr_a_onchip(layer: &ConvLayer, p: &BaselineParams) -> u64 {
    let taps = layer.kernel_height() * layer.kernel_width();
    (p.z * p.k * taps) as u64 + (p.k * taps) as u64 + p.z as u64
}

/// `WtR-B` (Fig. 12): `z` **full** kernels (all `Ci` channels) are resident,
/// so outputs accumulate completely on the fly; inputs stream once per
/// kernel tile.
#[must_use]
pub fn wtr_b_traffic(layer: &ConvLayer, p: &BaselineParams) -> DramTraffic {
    let nz = tile_count(layer.out_channels(), p.z);
    DramTraffic {
        input_reads: nz * layer.input_words(),
        weight_reads: layer.weight_words(),
        output_reads: 0,
        output_writes: layer.output_words(),
    }
}

/// On-chip words `WtR-B` needs: the full kernels plus one sliding input
/// window and `z` in-flight Psums.
#[must_use]
pub fn wtr_b_onchip(layer: &ConvLayer, p: &BaselineParams) -> u64 {
    let taps = layer.kernel_height() * layer.kernel_width();
    (p.z * layer.in_channels() * taps) as u64 + (layer.in_channels() * taps) as u64 + p.z as u64
}

/// `InR-A` (Fig. 12): a `k·y·x` input block (k channels × the window needed
/// by an `x×y` output tile) is resident; weights stream per tile and partial
/// sums shuttle between input-channel tiles.
#[must_use]
pub fn inr_a_traffic(layer: &ConvLayer, p: &BaselineParams) -> DramTraffic {
    let (ny, nx, sum_y, sum_x) = spatial_sums(layer, p.y, p.x);
    let nk = tile_count(layer.in_channels(), p.k);
    let b = layer.batch() as u64;
    let co = layer.out_channels() as u64;
    let ci = layer.in_channels() as u64;
    let taps = (layer.kernel_height() * layer.kernel_width()) as u64;
    DramTraffic {
        input_reads: b * sum_y * sum_x * ci,
        weight_reads: b * ny * nx * co * taps * ci,
        output_reads: (nk - 1) * layer.output_words(),
        output_writes: nk * layer.output_words(),
    }
}

/// On-chip words `InR-A` needs.
#[must_use]
pub fn inr_a_onchip(layer: &ConvLayer, p: &BaselineParams) -> u64 {
    let (xp, yp) = layer.input_footprint(p.x, p.y);
    (xp * yp * p.k) as u64
        + (p.x * p.y) as u64
        + (layer.kernel_height() * layer.kernel_width() * p.k) as u64
}

/// `InR-B` (Fig. 12): `k` full input-channel planes of one image are
/// resident; inputs are read exactly once, weights re-stream per image and
/// partial sums shuttle between input-channel tiles.
#[must_use]
pub fn inr_b_traffic(layer: &ConvLayer, p: &BaselineParams) -> DramTraffic {
    let nk = tile_count(layer.in_channels(), p.k);
    DramTraffic {
        input_reads: layer.input_words(),
        weight_reads: layer.batch() as u64 * layer.weight_words(),
        output_reads: (nk - 1) * layer.output_words(),
        output_writes: nk * layer.output_words(),
    }
}

/// On-chip words `InR-B` needs: the `k` input planes plus per-kernel slices.
#[must_use]
pub fn inr_b_onchip(layer: &ConvLayer, p: &BaselineParams) -> u64 {
    (p.k * layer.in_height() * layer.in_width()) as u64
        + layer.out_channels() as u64
        + (layer.kernel_height() * layer.kernel_width() * p.k) as u64
}

/// `InR-C` (Fig. 12): a `Ci·y·x` input block (**all** channels of a spatial
/// window) is resident, so each output finishes on chip; weights stream per
/// spatial tile.
#[must_use]
pub fn inr_c_traffic(layer: &ConvLayer, p: &BaselineParams) -> DramTraffic {
    let (ny, nx, sum_y, sum_x) = spatial_sums(layer, p.y, p.x);
    let b = layer.batch() as u64;
    let co = layer.out_channels() as u64;
    let ci = layer.in_channels() as u64;
    let taps = (layer.kernel_height() * layer.kernel_width()) as u64;
    DramTraffic {
        input_reads: b * sum_y * sum_x * ci,
        weight_reads: b * ny * nx * co * taps * ci,
        output_reads: 0,
        output_writes: layer.output_words(),
    }
}

/// On-chip words `InR-C` needs.
#[must_use]
pub fn inr_c_onchip(layer: &ConvLayer, p: &BaselineParams) -> u64 {
    let (xp, yp) = layer.input_footprint(p.x, p.y);
    (xp * yp * layer.in_channels()) as u64
        + (p.x * p.y) as u64
        + (layer.kernel_height() * layer.kernel_width() * layer.in_channels()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    #[test]
    fn outr_a_whole_plane_still_restreams_weights_per_channel() {
        let l = layer();
        let p = BaselineParams {
            y: l.output_height(),
            x: l.output_width(),
            ..BaselineParams::unit()
        };
        let t = outr_a_traffic(&l, &p);
        // One spatial tile: weights read B times overall (once per image per
        // channel) = B * weight_words.
        assert_eq!(t.weight_reads, l.batch() as u64 * l.weight_words());
        // Inputs re-read for every output channel.
        assert_eq!(t.input_reads, l.out_channels() as u64 * l.input_words());
        assert_eq!(t.output_reads, 0);
    }

    #[test]
    fn outr_b_single_tile_reads_inputs_once() {
        let l = layer();
        let p = BaselineParams {
            y: l.output_height(),
            x: l.output_width(),
            ..BaselineParams::unit()
        };
        let t = outr_b_traffic(&l, &p);
        assert_eq!(t.input_reads, l.input_words());
        assert_eq!(t.weight_reads, l.batch() as u64 * l.weight_words());
    }

    #[test]
    fn wtr_a_full_channels_no_psum_shuttle() {
        let l = layer();
        let p = BaselineParams {
            z: 4,
            k: l.in_channels(),
            ..BaselineParams::unit()
        };
        let t = wtr_a_traffic(&l, &p);
        assert_eq!(t.output_reads, 0);
        assert_eq!(t.output_writes, l.output_words());
        assert_eq!(t.weight_reads, l.weight_words());
        assert_eq!(
            t.input_reads,
            (l.out_channels() as u64 / 4) * l.input_words()
        );
    }

    #[test]
    fn wtr_a_split_channels_shuttles_psums() {
        let l = layer();
        let p = BaselineParams {
            z: l.out_channels(),
            k: l.in_channels() / 4,
            ..BaselineParams::unit()
        };
        let t = wtr_a_traffic(&l, &p);
        assert_eq!(t.output_writes, 4 * l.output_words());
        assert_eq!(t.output_reads, 3 * l.output_words());
    }

    #[test]
    fn wtr_b_matches_wtr_a_with_full_k() {
        let l = layer();
        let pa = BaselineParams {
            z: 8,
            k: l.in_channels(),
            ..BaselineParams::unit()
        };
        let pb = BaselineParams {
            z: 8,
            ..BaselineParams::unit()
        };
        assert_eq!(wtr_a_traffic(&l, &pa), wtr_b_traffic(&l, &pb));
    }

    #[test]
    fn inr_b_reads_inputs_once() {
        let l = layer();
        let p = BaselineParams {
            k: 16,
            ..BaselineParams::unit()
        };
        let t = inr_b_traffic(&l, &p);
        assert_eq!(t.input_reads, l.input_words());
        assert_eq!(t.weight_reads, 3 * l.weight_words());
        let nk = (l.in_channels() as u64).div_ceil(16);
        assert_eq!(t.output_writes, nk * l.output_words());
    }

    #[test]
    fn inr_c_full_channel_residency_finishes_outputs() {
        let l = layer();
        let p = BaselineParams {
            y: 8,
            x: 8,
            ..BaselineParams::unit()
        };
        let t = inr_c_traffic(&l, &p);
        assert_eq!(t.output_reads, 0);
        assert_eq!(t.output_writes, l.output_words());
    }

    #[test]
    fn inr_a_tracks_inr_c_traffic_shape() {
        // With k = Ci, InR-A's traffic degenerates to InR-C's.
        let l = layer();
        let p = BaselineParams {
            k: l.in_channels(),
            y: 8,
            x: 8,
            ..BaselineParams::unit()
        };
        let a = inr_a_traffic(&l, &p);
        let c = inr_c_traffic(&l, &p);
        assert_eq!(a, c);
    }

    #[test]
    fn onchip_models_grow_with_params() {
        let l = layer();
        let small = BaselineParams {
            z: 2,
            k: 2,
            y: 4,
            x: 4,
        };
        let big = BaselineParams {
            z: 8,
            k: 8,
            y: 16,
            x: 16,
        };
        assert!(outr_a_onchip(&l, &small) < outr_a_onchip(&l, &big));
        assert!(outr_b_onchip(&l, &small) < outr_b_onchip(&l, &big));
        assert!(wtr_a_onchip(&l, &small) < wtr_a_onchip(&l, &big));
        assert!(wtr_b_onchip(&l, &small) < wtr_b_onchip(&l, &big));
        assert!(inr_a_onchip(&l, &small) < inr_a_onchip(&l, &big));
        assert!(inr_b_onchip(&l, &small) < inr_b_onchip(&l, &big));
        assert!(inr_c_onchip(&l, &small) < inr_c_onchip(&l, &big));
    }
}
