//! Design-space-exploration (DSE) substrate — the paper's motivation made
//! executable.
//!
//! Section II-B argues that exhaustive DSE over loop orders and tiling
//! sizes is intractable (≈7.2×10¹³ points for two loop levels of one layer,
//! citing ref. \[29\]) and that heuristics find sub-optimal points without
//! explaining *why* a dataflow is good. This module provides:
//!
//! * [`search_space_size`] — the size of the two-level loop-order × tiling
//!   space for a layer, reproducing the intractability argument;
//! * [`random_dse`] — a budgeted random-sampling DSE baseline over the same
//!   space the paper's dataflow occupies (output tilings), which the tests
//!   show converges to — never beats — the closed-form choice.

use comm_bound::OnChipMemory;
use conv_model::ConvLayer;

use crate::engine::{BestTracker, Candidate, LayerTables};
use crate::search::search_ours;
use crate::tiling::Tiling;
use crate::traffic::DramTraffic;

/// Number of distinct two-level tilings × loop orders for a layer: each of
/// the seven loops of Fig. 2 can be tiled at two levels (any divisor-free
/// size in `1..=dim` each) and the loops at each level permuted.
///
/// Returned as `f64` because the count overflows `u64` for real layers —
/// that is the point.
#[must_use]
pub fn search_space_size(layer: &ConvLayer) -> f64 {
    let dims = [
        layer.batch(),
        layer.out_channels(),
        layer.output_height(),
        layer.output_width(),
        layer.in_channels(),
        layer.kernel_height(),
        layer.kernel_width(),
    ];
    // Tiling choices: one inner tile size per dimension at each of the two
    // levels (sizes 1..=dim, inner <= outer): dim*(dim+1)/2 combinations.
    let tilings: f64 = dims
        .iter()
        .map(|&d| (d as f64) * (d as f64 + 1.0) / 2.0)
        .product();
    // Loop orders: 7! permutations at each level.
    let orders = 5040.0 * 5040.0;
    tilings * orders
}

/// Why a [`grid_points`] expansion was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridError {
    /// Axis `index` has no values, so the grid is empty by construction —
    /// almost always a caller bug, reported rather than silently yielding
    /// zero points.
    EmptyAxis(usize),
    /// The cross product has more than `cap` points. The cardinality is
    /// computed (in `u128`, overflow-free) *before* any point is
    /// materialized, so a hostile request cannot make the expansion itself
    /// allocate unboundedly.
    TooManyPoints {
        /// The would-be cardinality.
        points: u128,
        /// The refused cap.
        cap: usize,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::EmptyAxis(i) => write!(f, "grid axis #{i} has no values"),
            GridError::TooManyPoints { points, cap } => {
                write!(
                    f,
                    "grid expands to {points} points, more than the {cap} cap"
                )
            }
        }
    }
}

impl std::error::Error for GridError {}

/// Capped cartesian product: one point per combination of one value from
/// each axis, in lexicographic axis order.
///
/// This is the expansion primitive behind grid-style design-space sweeps
/// (e.g. the service's `/v1/dse` architecture grids): the caller provides
/// per-parameter value lists and a hard cap on the number of candidates it
/// is willing to evaluate.
///
/// # Errors
///
/// [`GridError::EmptyAxis`] when an axis has no values;
/// [`GridError::TooManyPoints`] when the (overflow-safe) cardinality
/// exceeds `cap` — checked before anything is materialized.
pub fn grid_points<T: Clone>(axes: &[Vec<T>], cap: usize) -> Result<Vec<Vec<T>>, GridError> {
    let mut cardinality: u128 = 1;
    for (i, axis) in axes.iter().enumerate() {
        if axis.is_empty() {
            return Err(GridError::EmptyAxis(i));
        }
        cardinality = cardinality.saturating_mul(axis.len() as u128);
    }
    if cardinality > cap as u128 {
        return Err(GridError::TooManyPoints {
            points: cardinality,
            cap,
        });
    }
    let mut points: Vec<Vec<T>> = vec![Vec::new()];
    for axis in axes {
        let mut next = Vec::with_capacity(points.len() * axis.len());
        for point in &points {
            for value in axis {
                let mut extended = point.clone();
                extended.push(value.clone());
                next.push(extended);
            }
        }
        points = next;
    }
    Ok(points)
}

/// The best point a [`random_dse`] run actually sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DseBest {
    /// The best feasible tiling sampled.
    pub tiling: Tiling,
    /// Its DRAM traffic.
    pub traffic: DramTraffic,
}

/// Result of a random-sampling DSE run.
///
/// `best` is `None` when **no** sample satisfied the memory constraint —
/// the run found nothing, and is reported as such rather than inventing a
/// fallback tiling that was never sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DseOutcome {
    /// Samples drawn.
    pub samples: u64,
    /// Samples that satisfied the on-chip memory constraint.
    pub feasible: u64,
    /// Best sampled point, if any sample was feasible.
    pub best: Option<DseBest>,
}

impl DseOutcome {
    /// Total DRAM words of the best sampled point, if any.
    #[must_use]
    pub fn best_words(&self) -> Option<u64> {
        self.best.map(|b| b.traffic.total_words())
    }
}

/// Budgeted random-sampling DSE over the output-tiling space of the paper's
/// dataflow, with a deterministic xorshift generator (`seed`).
///
/// This is the "heuristic search" a DSE tool would run when the space is too
/// large to enumerate. Compare its best against
/// [`search_ours`] / [`paper_tiling`](crate::paper_tiling):
/// with a small budget it is clearly worse; even with a large budget it can
/// only approach the theory-guided choice. Sample evaluation goes through
/// the engine's dense [`LayerTables`], so a 20 000-sample run costs
/// microseconds, not the halo-loop recomputation of the seed implementation.
#[must_use]
pub fn random_dse(layer: &ConvLayer, mem: OnChipMemory, samples: u64, seed: u64) -> DseOutcome {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move |bound: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 33) as usize % bound.max(1) + 1
    };

    let tables = LayerTables::new(layer);
    let mem_words = mem.words();
    let mut feasible = 0u64;
    let mut tracker = BestTracker::new();
    for _ in 0..samples {
        let t = Tiling {
            b: next(layer.batch()),
            z: next(layer.out_channels()),
            y: next(layer.output_height()),
            x: next(layer.output_width()),
        };
        if tables.ours_onchip(&t) as f64 > mem_words {
            continue;
        }
        feasible += 1;
        tracker.offer(Candidate {
            tiling: t,
            k: 1,
            traffic: tables.ours_traffic(&t),
        });
    }
    DseOutcome {
        samples,
        feasible,
        best: tracker.into_best().map(|c| DseBest {
            tiling: c.tiling,
            traffic: c.traffic,
        }),
    }
}

/// Convenience: the ratio `random-DSE best / theory-guided best` for a given
/// sample budget (≥ 1.0 by construction; → 1.0 as the budget grows).
/// [`f64::INFINITY`] when the DSE run found no feasible sample at all.
#[must_use]
pub fn dse_gap(layer: &ConvLayer, mem: OnChipMemory, samples: u64, seed: u64) -> f64 {
    let dse = random_dse(layer, mem, samples, seed);
    let ours = search_ours(layer, mem);
    match dse.best_words() {
        Some(words) => words as f64 / ours.traffic.total_words() as f64,
        None => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    #[test]
    fn search_space_is_astronomical() {
        // The paper quotes 7.2e13 for two loops of one layer; the full
        // seven-loop two-level space is far larger still.
        let size = search_space_size(&layer());
        assert!(size > 1e13, "search space {size:e} should be intractable");
    }

    #[test]
    fn search_space_grows_with_layer() {
        let small = ConvLayer::square(1, 8, 8, 4, 3, 1).unwrap();
        assert!(search_space_size(&small) < search_space_size(&layer()));
    }

    #[test]
    fn dse_never_beats_theory() {
        let mem = OnChipMemory::from_kib(66.5);
        for seed in [1u64, 7, 42] {
            let gap = dse_gap(&layer(), mem, 2_000, seed);
            assert!(gap >= 1.0 - 1e-12, "DSE beat the exhaustive search: {gap}");
        }
    }

    #[test]
    fn small_budget_dse_is_clearly_worse() {
        // With a handful of samples the random search lands far from the
        // optimum — the paper's point about heuristic DSE.
        let mem = OnChipMemory::from_kib(66.5);
        let gap = dse_gap(&layer(), mem, 10, 3);
        assert!(
            gap > 1.02,
            "tiny-budget DSE should be visibly worse, got {gap}"
        );
    }

    #[test]
    fn dse_converges_with_budget() {
        let mem = OnChipMemory::from_kib(66.5);
        let small = dse_gap(&layer(), mem, 50, 11);
        let large = dse_gap(&layer(), mem, 20_000, 11);
        assert!(large <= small + 1e-12);
        assert!(large < 1.25, "large-budget DSE should approach the optimum");
    }

    #[test]
    fn dse_deterministic_per_seed() {
        let mem = OnChipMemory::from_kib(66.5);
        let a = random_dse(&layer(), mem, 500, 9);
        let b = random_dse(&layer(), mem, 500, 9);
        assert_eq!(a, b);
        assert!(a.best.is_some());
    }

    #[test]
    fn zero_feasible_run_reports_none() {
        // A memory barely above the {1,1,1,1} working set (19 words for a
        // 3×3 kernel): only a handful of the 3·256·56·56 possible samples
        // are feasible, so this deterministic 200-sample run draws none.
        let l = layer();
        let mem = OnChipMemory::from_words(25.0);
        let out = random_dse(&l, mem, 200, 5);
        assert_eq!(out.feasible, 0);
        assert_eq!(out.best, None);
        assert_eq!(out.best_words(), None);
        assert_eq!(dse_gap(&l, mem, 200, 5), f64::INFINITY);
    }

    #[test]
    fn grid_points_expands_lexicographically() {
        let axes = vec![vec![1u64, 2], vec![10, 20, 30]];
        let points = grid_points(&axes, 6).unwrap();
        assert_eq!(
            points,
            vec![
                vec![1, 10],
                vec![1, 20],
                vec![1, 30],
                vec![2, 10],
                vec![2, 20],
                vec![2, 30]
            ]
        );
    }

    #[test]
    fn grid_points_refuses_over_cap_before_materializing() {
        // 10^10 points: the cardinality check must trip without allocating.
        let axis: Vec<u64> = (0..10).collect();
        let axes: Vec<Vec<u64>> = (0..10).map(|_| axis.clone()).collect();
        assert_eq!(
            grid_points(&axes, 256),
            Err(GridError::TooManyPoints {
                points: 10_000_000_000,
                cap: 256
            })
        );
        // Saturating cardinality survives astronomically wide grids.
        let wide: Vec<Vec<u64>> = (0..200).map(|_| axis.clone()).collect();
        assert!(matches!(
            grid_points(&wide, 256),
            Err(GridError::TooManyPoints { .. })
        ));
    }

    #[test]
    fn grid_points_rejects_empty_axes() {
        let axes: Vec<Vec<u64>> = vec![vec![1], vec![]];
        assert_eq!(grid_points(&axes, 16), Err(GridError::EmptyAxis(1)));
        assert_eq!(
            grid_points::<u64>(&[], 16).unwrap(),
            vec![Vec::<u64>::new()]
        );
    }

    #[test]
    fn dse_best_matches_direct_evaluation() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let out = random_dse(&l, mem, 1_000, 17);
        let best = out.best.expect("66.5 KiB admits many samples");
        assert_eq!(
            best.traffic,
            crate::our_dataflow_traffic(&l, &best.tiling),
            "table-evaluated traffic must equal the direct formula"
        );
        assert!(best.tiling.fits(&l, mem));
    }
}
